//! Property-based integration tests of the tuner layer against random
//! synthetic response curves (the whole strategy zoo must stay in-bounds
//! and deterministic, and GP-discontinuous must honour the bound filter).

use adaphet::eval::{run_faulted_session, FaultSessionConfig, PAPER_STRATEGIES};
use adaphet::runtime::FaultPlan;
use adaphet::scenarios::{Scale, Scenario};
use adaphet::tuner::{
    ActionSpace, GpDiscontinuous, History, ResiliencePolicy, Strategy, StrategyKind,
};
use proptest::prelude::*;

/// A random piecewise response curve with optional jump.
fn curve(work: f64, slope: f64, jump_at: usize, jump: f64) -> impl Fn(usize) -> f64 {
    move |n: usize| {
        let base = work / n as f64 + slope * n as f64;
        if n >= jump_at {
            base + jump
        } else {
            base
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every strategy proposes only valid actions for any curve.
    #[test]
    fn all_strategies_stay_in_bounds(
        n in 2usize..40,
        work in 10.0f64..200.0,
        slope in 0.1f64..2.0,
        seed in 0u64..50,
    ) {
        let lp: Vec<f64> = (1..=n).map(|k| work / k as f64).collect();
        let g1 = (n / 3).max(1);
        let g2 = (2 * n / 3).max(g1 + 1).min(n);
        let groups = if g2 < n {
            vec![(1, g1), (g1 + 1, g2), (g2 + 1, n)]
        } else if g1 < n {
            vec![(1, g1), (g1 + 1, n)]
        } else {
            vec![(1, n)]
        };
        let space = ActionSpace::new(n, groups, Some(lp));
        let f = curve(work, slope, 2 * n / 3 + 1, 5.0);
        for kind in PAPER_STRATEGIES {
            let mut s = kind.build(&space, seed, None).expect("paper strategy");
            let mut h = History::new();
            for _ in 0..30 {
                let a = s.propose(&space, &h);
                prop_assert!((1..=n).contains(&a), "{kind} proposed {a} (N = {n})");
                h.record(a, f(a));
            }
        }
    }

    /// The `Strategy::propose` range contract holds for *every* registered
    /// strategy even on adversarial histories the strategy did not build
    /// itself (arbitrary actions in arbitrary order, arbitrary durations)
    /// — callers such as `TunerDriver` and `replay` rely on this instead
    /// of clamping.
    #[test]
    fn every_strategy_stays_in_bounds_on_random_histories(
        n in 2usize..32,
        seed in 0u64..40,
        raw in collection::vec(0u64..1_000_000, 0..40),
    ) {
        let space = ActionSpace::unstructured(n);
        let mut h = History::new();
        for &x in &raw {
            let action = (x as usize % n) + 1;
            let duration = 0.5 + (x % 997) as f64 * 0.1;
            h.record(action, duration);
        }
        for kind in StrategyKind::all() {
            let mut s = kind
                .build(&space, seed, Some((seed as usize % n) + 1))
                .expect("every kind builds when an oracle best is supplied");
            for _ in 0..3 {
                let a = s.propose(&space, &h);
                prop_assert!(
                    (1..=n).contains(&a),
                    "{kind} proposed {a} outside 1..={n} on a random history of len {}",
                    h.len()
                );
                h.record(a, 1.0 + (a as f64));
            }
        }
    }

    /// Strategies are deterministic given identical seeds and histories.
    #[test]
    fn strategies_are_reproducible(n in 3usize..20, seed in 0u64..20) {
        let space = ActionSpace::unstructured(n);
        let f = curve(50.0, 0.8, n + 1, 0.0);
        for kind in PAPER_STRATEGIES {
            let run = || {
                let mut s = kind.build(&space, seed, None).expect("paper strategy");
                let mut h = History::new();
                let mut seq = Vec::new();
                for _ in 0..20 {
                    let a = s.propose(&space, &h);
                    seq.push(a);
                    h.record(a, f(a));
                }
                seq
            };
            prop_assert_eq!(run(), run(), "{} not reproducible", kind);
        }
    }

    /// After the forced first iteration, GP-discontinuous never proposes an
    /// action excluded by the LP bound mechanism.
    #[test]
    fn gp_disc_honours_bound_filter(
        n in 4usize..30,
        work in 20.0f64..150.0,
        slope in 0.2f64..1.5,
    ) {
        let lp: Vec<f64> = (1..=n).map(|k| work / k as f64).collect();
        let space = ActionSpace::new(n, vec![], Some(lp.clone()));
        let f = curve(work, slope, n + 1, 0.0);
        let mut s = GpDiscontinuous::new(&space);
        let mut h = History::new();
        let mut y_all = None;
        for _ in 0..25 {
            let a = s.propose(&space, &h);
            if let Some(y) = y_all {
                prop_assert!(
                    a == n || lp[a - 1] < y,
                    "proposed {a} with LP {} >= y(N) {}",
                    lp[a - 1],
                    y
                );
            }
            let y = f(a);
            h.record(a, y);
            if a == n && y_all.is_none() {
                y_all = Some(y);
            }
        }
    }

    /// On noiseless convex curves, GP-discontinuous's final choice is near
    /// the true optimum.
    #[test]
    fn gp_disc_finds_convex_optimum(
        n in 6usize..25,
        work in 30.0f64..120.0,
        slope in 0.4f64..1.6,
    ) {
        let lp: Vec<f64> = (1..=n).map(|k| work / k as f64).collect();
        let space = ActionSpace::new(n, vec![], Some(lp));
        let f = curve(work, slope, n + 1, 0.0);
        let best = (1..=n)
            .min_by(|&a, &b| f(a).partial_cmp(&f(b)).unwrap())
            .unwrap();
        let mut s = GpDiscontinuous::new(&space);
        let mut h = History::new();
        for _ in 0..50 {
            let a = s.propose(&space, &h);
            h.record(a, f(a));
        }
        let last = h.records().last().unwrap().0;
        // Either the bound already proves the optimum region, or the GP
        // found it; accept a +-2 neighbourhood (plateaus near the optimum
        // of a discrete convex curve are common).
        prop_assert!(
            (last as i64 - best as i64).abs() <= 2 || f(last) <= f(best) * 1.03,
            "settled at {last}, optimum {best} (N = {n})"
        );
    }

    /// Under a random fault plan the live space shrinks mid-run (node
    /// deaths) and past observations may be quarantined — every strategy
    /// must still propose inside the *live* space at every step.
    #[test]
    fn strategies_stay_inside_a_shrinking_live_space(
        n in 4usize..32,
        seed in 0u64..40,
        plan_seed in 0u64..200,
    ) {
        let plan = FaultPlan::sample(plan_seed, n, 30);
        for kind in StrategyKind::all() {
            let space = ActionSpace::unstructured(n);
            let mut live = space.clone();
            let mut s = kind
                .build(&space, seed, Some((seed as usize % n) + 1))
                .expect("every kind builds when an oracle best is supplied");
            let mut h = History::new();
            for it in 0..30 {
                for rank in plan.deaths_at(it) {
                    if live.max_nodes > 1 && rank <= live.max_nodes {
                        live = ActionSpace::unstructured(live.max_nodes - 1);
                        // Quarantine: drop observations of dead counts.
                        let max = live.max_nodes;
                        h.retain_actions(|a| a <= max);
                    }
                }
                let a = s.propose(&live, &h);
                prop_assert!(
                    (1..=live.max_nodes).contains(&a),
                    "{kind} proposed {a} with live space 1..={} at iteration {it}",
                    live.max_nodes
                );
                h.record(a, 1.0 + a as f64 + plan.outlier_factor(it));
            }
        }
    }

    /// The same seed and fault plan replay bit-identically through the
    /// full live-simulation fault harness.
    #[test]
    fn faulted_sessions_replay_bit_identically(
        seed in 0u64..6,
        plan_seed in 0u64..30,
    ) {
        let scen = Scenario::by_id('a').expect("scenario a exists");
        let plan = FaultPlan::sample(plan_seed, scen.n_nodes(), 8);
        let run = || {
            let cfg = FaultSessionConfig {
                kind: StrategyKind::GpDiscontinuous,
                iters: 8,
                seed,
                policy: ResiliencePolicy::standard(),
            };
            run_faulted_session(&scen, Scale::Test, &plan, cfg, Vec::new())
                .expect("valid sampled plan")
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.history, b.history, "histories diverged");
        prop_assert_eq!(a.deaths, b.deaths);
        prop_assert_eq!(a.final_space.max_nodes, b.final_space.max_nodes);
        prop_assert_eq!(a.faults_injected, b.faults_injected);
    }
}
