//! Cross-crate integration tests: the full pipeline from platform to
//! tuned application, at test scale.

use adaphet::eval::{build_response, replay_many, space_of, StrategyKind};
use adaphet::geostat::{GeoSimApp, IterationChoice, Workload};
use adaphet::runtime::{NetworkSpec, NodeSpec, Platform, SimConfig};
use adaphet::scenarios::{Scale, Scenario};
use adaphet::tuner::{MemorySink, Observation, PhaseSlice, TunerDriver};

fn toy_platform(n_gpu: usize, n_cpu: usize) -> Platform {
    let gpu = NodeSpec {
        name: "L".into(),
        cpu_cores: 8,
        gpus: 2,
        cpu_gflops_per_core: 20.0,
        gpu_gflops: 2000.0,
        nic_gbps: 10.0,
    };
    let cpu = NodeSpec { name: "S".into(), gpus: 0, gpu_gflops: 0.0, ..gpu.clone() };
    let mut nodes = vec![gpu; n_gpu];
    nodes.extend(std::iter::repeat_n(cpu, n_cpu));
    Platform::new_sorted(nodes, NetworkSpec { backbone_gbps: 100.0, latency_s: 1e-5 })
}

#[test]
fn online_tuning_beats_all_nodes_on_a_heterogeneous_cluster() {
    // Live tuning against the simulator (not a replay): the TunerDriver
    // runs GP-discontinuous over the application and must end up cheaper
    // per iteration than the all-nodes default. Telemetry (with per-phase
    // breakdowns from the runtime) is collected along the way and must
    // stay consistent with the recorded history.
    let mut app = GeoSimApp::new(toy_platform(2, 6), Workload::new(16, 512), SimConfig::default());
    let n = app.n_nodes();
    let groups = app.runtime().platform().homogeneous_groups();
    let lp: Vec<f64> = (1..=n).map(|k| app.lp_bound(IterationChoice::fact_only(n, k))).collect();
    let space = adaphet::tuner::ActionSpace::new(n, groups, Some(lp));
    let strat = StrategyKind::GpDiscontinuous.build(&space, 1, None).expect("no oracle needed");
    let sink = MemorySink::new();
    let mut driver = TunerDriver::builder(&space)
        .strategy(strat)
        .sink(Box::new(sink.clone()))
        .build()
        .expect("a strategy was provided");
    for _ in 0..20 {
        driver.step(|k| {
            let report = app.run_iteration(IterationChoice::fact_only(n, k));
            let phases = app
                .phase_breakdown(&report)
                .into_iter()
                .map(|(name, secs)| PhaseSlice::new(name, secs))
                .collect();
            Observation::with_phases(report.duration(), phases)
        });
    }
    let hist = driver.into_history();
    // Telemetry invariant: one event per executed iteration, and the
    // events carry the runtime's phase breakdown.
    assert_eq!(sink.len(), hist.len(), "one IterationEvent per iteration");
    let events = sink.events();
    assert!(
        events.iter().all(|e| !e.phases.is_empty()),
        "every live-tuning event should carry a phase breakdown"
    );
    assert!(
        events[0].phases.iter().any(|p| p.name == "factorization"),
        "factorization dominates a geostatistics iteration: {:?}",
        events[0].phases
    );
    let all_nodes = hist.first_for(n).expect("first iteration uses all nodes");
    let late: f64 = hist.records()[15..].iter().map(|r| r.1).sum::<f64>() / 5.0;
    assert!(
        late <= all_nodes * 1.02,
        "late iterations ({late:.3}s) should not be worse than all-nodes ({all_nodes:.3}s)"
    );
}

#[test]
fn replay_pipeline_ranks_gp_disc_at_or_near_the_top() {
    // Scenario (a) at test scale. The paper's claim is *robustness*: a
    // lucky heuristic (e.g. DC on a clean convex curve) may edge it out on
    // one scenario, but GP-discontinuous must stay close to the best and
    // clearly beat the all-nodes baseline.
    let scen = Scenario::by_id('a').unwrap();
    let table = build_response(&scen, Scale::Test, 20, 9);
    let mut totals = Vec::new();
    for kind in adaphet::eval::PAPER_STRATEGIES {
        let s = replay_many(kind, &table, 80, 10, 9);
        totals.push((kind, s.mean_total));
    }
    let best = totals.iter().map(|&(_, t)| t).fold(f64::INFINITY, f64::min);
    let gp = totals
        .iter()
        .find(|&&(k, _)| k == StrategyKind::GpDiscontinuous)
        .expect("GP-discontinuous present")
        .1;
    let all_nodes = replay_many(StrategyKind::AllNodes, &table, 80, 10, 9).mean_total;
    assert!(gp <= best * 1.15, "GP-discontinuous at {gp:.2} vs best {best:.2}: {totals:?}");
    assert!(gp < all_nodes, "GP-discontinuous ({gp:.2}) must beat all-nodes ({all_nodes:.2})");
}

#[test]
fn bound_mechanism_respects_lp_semantics_end_to_end() {
    // The LP curve built by the scenario must lower-bound the simulated
    // response everywhere (the premise of the bound mechanism).
    let scen = Scenario::by_id('b').unwrap();
    let table = build_response(&scen, Scale::Test, 6, 4);
    for n in 1..=table.n_actions() {
        let sim_min = table.sim_base[n - 1].iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            table.lp[n - 1] <= sim_min + 1e-9,
            "LP({n}) = {} above simulated {}",
            table.lp[n - 1],
            sim_min
        );
    }
    // And the induced action space prunes only provably-bad points.
    let space = space_of(&table);
    let y_all = table.mean(table.n_actions());
    for a in space.bounded_actions(y_all) {
        assert!(a == table.n_actions() || table.lp[a - 1] < y_all);
    }
}

#[test]
fn scenario_labels_cover_both_sites_and_workloads() {
    let all = Scenario::all16();
    assert!(all.iter().any(|s| s.label().contains("G5K")));
    assert!(all.iter().any(|s| s.label().contains("SD")));
    assert!(all.iter().any(|s| s.label().contains("101")));
    assert!(all.iter().any(|s| s.label().contains("128")));
    assert_eq!(all.iter().filter(|s| s.real).count(), 6, "six (Real) scenarios in the paper");
}

#[test]
fn iteration_durations_scale_down_with_more_useful_nodes() {
    // Compute-bound regime: a single node must be slower than four.
    let mut app1 = GeoSimApp::new(toy_platform(0, 1), Workload::new(12, 640), SimConfig::default());
    let d1 = app1.run_iteration(IterationChoice::all(1)).duration();
    let mut app4 = GeoSimApp::new(toy_platform(0, 4), Workload::new(12, 640), SimConfig::default());
    let d4 = app4.run_iteration(IterationChoice::all(4)).duration();
    assert!(d4 < d1, "4 nodes ({d4:.3}s) should beat 1 node ({d1:.3}s)");
}
