//! End-to-end checks of the trace-analysis subsystem: critical-path and
//! idle-bubble extraction stay consistent across a node death, and the
//! `report` pipeline turns a real telemetry file into a self-contained
//! HTML document whose diagnosis matches the simulated run.

use adaphet::analysis::{render_html, CriticalPath, IdleBreakdown};
use adaphet::eval::{
    build_report, diagnose, run_faulted_session, FaultSessionConfig, ReportArgs, StrategyKind,
};
use adaphet::geostat::{GeoSimApp, IterationChoice};
use adaphet::runtime::{FaultPlan, SimConfig};
use adaphet::scenarios::{Scale, Scenario};
use adaphet::tuner::{JsonlSink, ResiliencePolicy};
use std::io::BufWriter;
use std::path::PathBuf;

/// Diagnosis invariants that must hold for any traced iteration: the
/// critical path spans the window within 1% of the recorded makespan, and
/// idle classification accounts for every worker-second.
fn assert_consistent(trace: &adaphet::runtime::Trace, t0: f64, t1: f64) {
    let cp = CriticalPath::extract(trace).expect("traced run has events");
    let makespan = t1 - t0;
    assert!(
        (cp.total() - makespan).abs() <= 0.01 * makespan,
        "critical path {} vs makespan {makespan}",
        cp.total()
    );
    assert!(
        (cp.exec_time + cp.wait_time - cp.total()).abs() < 1e-9 * cp.total().max(1.0),
        "path must telescope"
    );
    let idle = IdleBreakdown::classify(trace, t0, t1);
    let expect = idle.workers as f64 * (t1 - t0);
    assert!(
        (idle.total_s() - expect).abs() < 1e-6 * expect.max(1.0),
        "idle accounting covered {} of {expect}",
        idle.total_s()
    );
}

#[test]
fn diagnosis_stays_consistent_when_a_node_dies() {
    let scen = Scenario::by_id('a').unwrap();
    let workload = scen.workload(Scale::Test);
    let n = scen.n_nodes();

    // Healthy run over the full platform.
    let mut app = scen.app(Scale::Test, 11);
    let report = app.run_iteration(IterationChoice::fact_only(n, n));
    assert_consistent(app.runtime().trace(), report.start, report.end);
    let healthy_makespan = report.duration();

    // Rank 1 (a fast chifflot node) dies; the fault harness rebuilds the
    // application over the survivors, exactly as `run_faulted_session`
    // does between the death and the next proposal.
    let survivors = scen.platform().without_rank(1);
    assert_eq!(survivors.nodes.len(), n - 1);
    let mut app =
        GeoSimApp::new(survivors, workload, SimConfig { seed: 11, task_jitter: None, trace: true });
    let report = app.run_iteration(IterationChoice::fact_only(n - 1, n - 1));
    let trace = app.runtime().trace();

    // No event may be attributed to the dead rank: survivors renumber to
    // 0..n-1, so every traced node index stays below the survivor count.
    assert!(!trace.events().is_empty());
    for e in trace.events() {
        assert!(e.node.0 < n - 1, "event on node index {} but only {} survivors", e.node.0, n - 1);
    }
    // The extractors hold the same invariants on the degraded platform.
    assert_consistent(trace, report.start, report.end);
    // Losing a fast node cannot make the same workload finish faster.
    assert!(
        report.duration() > 0.9 * healthy_makespan,
        "degraded run {} vs healthy {healthy_makespan}",
        report.duration()
    );
}

#[test]
fn report_pipeline_renders_a_real_faulted_session() {
    let scen = Scenario::by_id('a').unwrap();
    let n = scen.n_nodes();
    let dir = std::env::temp_dir();
    let jsonl: PathBuf = dir.join(format!("adaphet-trace-analysis-{}.jsonl", std::process::id()));
    let html_path: PathBuf =
        dir.join(format!("adaphet-trace-analysis-{}.html", std::process::id()));

    // A real tuning session against the live simulator, with a node death
    // mid-session, streamed to JSONL exactly as `fig6 --telemetry` and the
    // CI fault-smoke job do.
    {
        let f = std::fs::File::create(&jsonl).unwrap();
        let out = run_faulted_session(
            &scen,
            Scale::Test,
            &FaultPlan::new(0).death(3, n),
            FaultSessionConfig {
                kind: StrategyKind::GpDiscontinuous,
                iters: 10,
                seed: 7,
                policy: ResiliencePolicy::standard(),
            },
            vec![Box::new(JsonlSink::new(BufWriter::new(f)))],
        )
        .unwrap();
        assert_eq!(out.deaths, vec![(3, n)]);
    }

    let args = ReportArgs {
        input: jsonl.clone(),
        out: Some(html_path.clone()),
        scenario: 'a',
        scale: Scale::Test,
        seed: 7,
        ..Default::default()
    };
    let report = build_report(&args).unwrap();

    // Telemetry round-tripped: one strategy, ten iterations, the death
    // annotation preserved.
    assert_eq!(report.telemetry.runs.len(), 1);
    assert_eq!(report.telemetry.len(), 10);
    assert!(report.telemetry.runs[0]
        .records
        .iter()
        .any(|r| r.fault.as_deref().is_some_and(|f| f.contains("node-death"))));

    // The re-simulated diagnosis satisfies the acceptance bound: the
    // critical path accounts for the makespan within 1%.
    let sim = report.sim.as_ref().expect("diagnosis runs by default");
    let cp = &sim.critical_path;
    assert!(
        (cp.total() - sim.makespan).abs() <= 0.01 * sim.makespan,
        "critical path {} vs makespan {}",
        cp.total(),
        sim.makespan
    );

    // The rendered document is one self-contained file: no scripts, no
    // external fetches (the SVG namespace URI is the only URL-shaped
    // string), and all major sections present.
    let html = render_html(&report);
    assert!(html.starts_with("<!doctype html>"));
    assert!(!html.contains("<script"));
    assert!(!html.contains("https://"));
    assert_eq!(html.matches("http://").count(), html.matches("http://www.w3.org/2000/svg").count());
    for section in [
        "Strategy summary",
        "Iteration durations",
        "Gantt",
        "Critical path",
        "Idle-bubble classification",
    ] {
        assert!(html.contains(section), "missing report section {section:?}");
    }

    // The binary-level entry point writes the same document to disk.
    let msg = adaphet::eval::run_report(&args).unwrap();
    assert!(msg.contains(html_path.display().to_string().as_str()));
    let on_disk = std::fs::read_to_string(&html_path).unwrap();
    assert_eq!(on_disk, html);

    std::fs::remove_file(&jsonl).ok();
    std::fs::remove_file(&html_path).ok();
}

#[test]
fn diagnose_matches_direct_simulation() {
    // `diagnose` must describe the same deterministic iteration a direct
    // simulation produces: same makespan, same group structure.
    let scen = Scenario::by_id('e').unwrap(); // (Simul): fully deterministic
    let d = diagnose(&scen, Scale::Test, 42, 6);
    let mut app = scen.app(Scale::Test, 42);
    let n = app.n_nodes();
    let report = app.run_iteration(IterationChoice::fact_only(n, 6));
    assert!((d.makespan - report.duration()).abs() < 1e-12);
    assert_eq!(d.groups.len(), scen.groups().len());
    assert_eq!(d.group_idle.len(), d.groups.len());
    // Group idle sums to the whole-platform breakdown.
    let busy_sum: f64 = d.group_idle.iter().map(|b| b.busy_s).sum();
    assert!((busy_sum - d.idle.busy_s).abs() < 1e-6 * d.idle.busy_s.max(1.0));
}
