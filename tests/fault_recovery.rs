//! Recovery from a mid-run node death (the ISSUE 4 acceptance scenario).
//!
//! A fig6-style live tuning session runs GP-discontinuous on scenario
//! (b) — G5K 2L-6M-6S — for 50 iterations while a seeded [`FaultPlan`]
//! kills one Medium (Chifflet) node at iteration 15. Under
//! [`ResiliencePolicy::standard`] the driver must quarantine the stale
//! observations, re-baseline its bound by probing the surviving
//! platform's full size, and converge so that the post-fault regret
//! against the surviving-platform oracle stays within 10%. Everything is
//! seeded, so the run (and this test) is deterministic.

use adaphet::eval::{run_faulted_session, FaultSessionConfig};
use adaphet::geostat::{GeoSimApp, IterationChoice};
use adaphet::runtime::{FaultPlan, SimConfig};
use adaphet::scenarios::{Scale, Scenario};
use adaphet::tuner::{MemorySink, ResiliencePolicy, StrategyKind};

const SEED: u64 = 42;
const ITERS: usize = 50;
const DEATH_ITER: usize = 15;
/// Ranks 3–8 are the Chifflet (Medium) group in scenario (b).
const DEAD_RANK: usize = 5;

/// One clean simulated measurement of every node count on the surviving
/// platform — the oracle the recovered tuner is judged against. Uses the
/// same simulator seed the harness switches to after the death.
fn survivor_oracle(scen: &Scenario, scale: Scale) -> Vec<f64> {
    let survivor = scen.platform().without_rank(DEAD_RANK);
    let workload = scen.workload(scale);
    let jitter = if scen.real { Some(0.03) } else { None };
    let n = survivor.nodes.len();
    (1..=n)
        .map(|k| {
            let sim = SimConfig {
                seed: SEED.wrapping_add(DEATH_ITER as u64),
                task_jitter: jitter,
                trace: true,
            };
            let mut app = GeoSimApp::new(survivor.clone(), workload, sim);
            app.run_iteration(IterationChoice::fact_only(n, k)).duration()
        })
        .collect()
}

#[test]
fn medium_node_death_rebaselines_and_recovers() {
    let scen = Scenario::by_id('b').expect("scenario b exists");
    let plan = FaultPlan::new(SEED).death(DEATH_ITER, DEAD_RANK);
    let sink = MemorySink::new();
    let cfg = FaultSessionConfig {
        kind: StrategyKind::GpDiscontinuous,
        iters: ITERS,
        seed: SEED,
        policy: ResiliencePolicy::standard(),
    };
    let out = run_faulted_session(&scen, Scale::Test, &plan, cfg, vec![Box::new(sink.clone())])
        .expect("valid plan");

    // The death fired exactly once and shrank the live space.
    assert_eq!(out.deaths, vec![(DEATH_ITER, DEAD_RANK)]);
    assert_eq!(out.final_space.max_nodes, scen.n_nodes() - 1);
    assert!(out.history.records().iter().all(|&(a, _)| a < scen.n_nodes()));

    // The death annotation, the quarantine of stale observations and the
    // forced re-baseline all surface on the iteration-15 event.
    let events = sink.events();
    assert_eq!(events.len(), ITERS);
    let death_evt = &events[DEATH_ITER];
    let note = death_evt.fault.as_deref().expect("iteration 15 carries a fault note");
    assert!(note.contains("node-death:rank=5"), "note: {note}");
    assert!(note.contains("quarantine"), "note: {note}");
    assert!(note.contains("rebaseline"), "note: {note}");
    assert_eq!(
        death_evt.action,
        scen.n_nodes() - 1,
        "the re-baseline probes the surviving platform's full size"
    );
    assert!(events[..DEATH_ITER].iter().all(|e| e.fault.is_none() && e.retries == 0));

    // Post-fault regret vs. the surviving-platform oracle: the action the
    // tuner settles on (most played over the last 10 iterations) must be
    // within 10% of the survivor's best.
    let oracle = survivor_oracle(&scen, Scale::Test);
    let best = oracle.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut plays = vec![0usize; scen.n_nodes() + 1];
    for e in &events[ITERS - 10..] {
        plays[e.action] += 1;
    }
    let settled =
        (1..plays.len()).max_by_key(|&a| (plays[a], a)).expect("at least one action played");
    let regret = oracle[settled - 1] / best;
    assert!(
        regret <= 1.10,
        "settled on {settled} nodes at {:.4}s vs oracle best {best:.4}s (regret {regret:.3}); \
         oracle curve: {oracle:?}",
        oracle[settled - 1],
    );
}

#[test]
fn same_seed_and_plan_replay_identically() {
    let scen = Scenario::by_id('b').expect("scenario b exists");
    let plan = FaultPlan::new(SEED).death(DEATH_ITER, DEAD_RANK);
    let run = || {
        let cfg = FaultSessionConfig {
            kind: StrategyKind::GpDiscontinuous,
            iters: ITERS,
            seed: SEED,
            policy: ResiliencePolicy::standard(),
        };
        run_faulted_session(&scen, Scale::Test, &plan, cfg, Vec::new()).expect("valid plan")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.history.records(), b.history.records());
    assert_eq!(a.deaths, b.deaths);
    assert_eq!(a.faults_injected, b.faults_injected);
}
