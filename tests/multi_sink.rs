//! Multi-sink driver integration: several telemetry sinks attached to one
//! [`TunerDriver`] must observe identical event streams, a failing writer
//! must surface an error instead of silently dropping iterations, and a
//! driver carrying sinks must move across threads (sinks are `Send`).

use adaphet::eval::ChromeTraceSink;
use adaphet::tuner::{
    ActionSpace, IterationEvent, JsonlSink, MemorySink, Observation, StrategyKind, TelemetrySink,
    TunerDriver,
};
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// A `Write` target shared with the test (JsonlSink wants ownership).
#[derive(Clone, Default)]
struct Shared(Arc<Mutex<Vec<u8>>>);

impl Write for Shared {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn driver_with(space: &ActionSpace, sinks: Vec<Box<dyn TelemetrySink>>) -> TunerDriver {
    let strat = StrategyKind::GpDiscontinuous.build(space, 11, None).expect("no oracle needed");
    let mut d =
        TunerDriver::builder(space).strategy(strat).build().expect("a strategy was provided");
    for s in sinks {
        d.add_sink(s);
    }
    d
}

#[test]
fn three_sinks_observe_identical_event_streams() {
    let space = ActionSpace::unstructured(6);
    let buf = Shared::default();
    let memory = MemorySink::new();
    let chrome = ChromeTraceSink::new();
    let mut driver = driver_with(
        &space,
        vec![
            Box::new(JsonlSink::new(buf.clone())),
            Box::new(memory.clone()),
            Box::new(chrome.clone()),
        ],
    );
    let iters = 9;
    driver.run(iters, |n| Observation::of(30.0 / n as f64 + n as f64));
    driver.finish().expect("all sinks flush");

    let events: Vec<IterationEvent> = memory.events();
    assert_eq!(events.len(), iters);

    // The JSONL stream is exactly the memory events' serialization.
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), iters);
    for (line, event) in lines.iter().zip(&events) {
        assert_eq!(*line, event.to_json());
    }

    // The chrome sink saw the same iterations: one instant + one counter
    // event each, with matching action values.
    let chrome_events = chrome.tuner_events();
    assert_eq!(chrome_events.len(), 2 * iters);
    for (i, event) in events.iter().enumerate() {
        assert!(
            chrome_events[2 * i].contains(&format!("\"action\":{}", event.action)),
            "iteration {i}: {}",
            chrome_events[2 * i]
        );
    }
}

/// A writer that accepts nothing: every write fails.
struct BrokenPipe;

impl Write for BrokenPipe {
    fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
        Err(io::Error::new(io::ErrorKind::BrokenPipe, "nope"))
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn failing_writer_surfaces_an_error_and_other_sinks_keep_their_events() {
    let space = ActionSpace::unstructured(4);
    let memory = MemorySink::new();
    let mut driver =
        driver_with(&space, vec![Box::new(JsonlSink::new(BrokenPipe)), Box::new(memory.clone())]);
    driver.run(5, |n| Observation::of(8.0 / n as f64));
    // The healthy sink kept the full stream despite its broken peer...
    assert_eq!(memory.events().len(), 5);
    // ...and the failure is reported, not silently dropped.
    let err = driver.finish().expect_err("broken writer must surface");
    assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
}

#[test]
fn driver_with_all_sink_kinds_moves_across_threads() {
    let space = ActionSpace::unstructured(5);
    let memory = MemorySink::new();
    let mut driver = driver_with(
        &space,
        vec![
            Box::new(JsonlSink::new(io::sink())),
            Box::new(memory.clone()),
            Box::new(ChromeTraceSink::new()),
        ],
    );
    let handle = std::thread::spawn(move || {
        driver.run(4, |n| Observation::of(10.0 / n as f64));
        driver.finish().expect("sinks flush");
        driver.into_history().len()
    });
    assert_eq!(handle.join().expect("worker thread"), 4);
    assert_eq!(memory.events().len(), 4);
}
