//! Golden tests pinning the JSONL telemetry schema.
//!
//! `IterationEvent::to_json` is consumed by external tooling (plotting
//! scripts, trace viewers); its field names, ordering and null-handling
//! are a contract. These tests fail on any schema drift — bump them
//! deliberately, never incidentally.

use adaphet::tuner::{
    ActionDiagnostic, ActionSpace, DecisionTrace, GroupUtilization, IterationEvent, JsonlSink,
    MemorySink, Observation, PhaseBreakdown, PhaseSlice, PosteriorPoint, PosteriorSnapshot,
    StrategyKind, TunerDriver,
};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// The pinned key order of one JSONL event line.
const KEYS: [&str; 15] = [
    "\"iteration\":",
    "\"strategy\":",
    "\"action\":",
    "\"duration\":",
    "\"cumulative_time\":",
    "\"best_known\":",
    "\"regret\":",
    "\"phases\":",
    "\"posterior\":",
    "\"excluded\":",
    "\"note\":",
    "\"phase_breakdown\":",
    "\"retries\":",
    "\"fault\":",
    "\"snapshot\":",
];

#[test]
fn golden_fully_populated_event() {
    let e = IterationEvent {
        iteration: 3,
        strategy: "GP-discontinuous".into(),
        action: 7,
        duration: 1.5,
        cumulative_time: 12.25,
        best_known: Some(1.25),
        regret: Some(0.25),
        phases: vec![PhaseSlice::new("factorization", 1.0), PhaseSlice::new("solve", 0.5)],
        trace: Some(DecisionTrace {
            diagnostics: vec![ActionDiagnostic {
                action: 7,
                mean: 1.5,
                sd: 0.125,
                acquisition: 1.25,
            }],
            excluded: vec![1, 2],
            note: "gp-lcb".into(),
        }),
        phase_breakdown: Some(PhaseBreakdown {
            phases: vec![PhaseSlice::new("generation", 0.25), PhaseSlice::new("solve", 1.25)],
            groups: vec![GroupUtilization {
                name: "chifflot:1-2".into(),
                busy_s: 3.0,
                idle_s: 1.0,
            }],
        }),
        retries: 1,
        fault: Some("node-death:rank=5;rebaseline".into()),
        snapshot: Some(PosteriorSnapshot {
            points: vec![
                PosteriorPoint {
                    action: 1,
                    mean: 8.5,
                    sd: 0.5,
                    lp_bound: Some(10.0),
                    excluded: true,
                },
                PosteriorPoint { action: 7, mean: 1.5, sd: 0.125, lp_bound: None, excluded: false },
            ],
        }),
    };
    assert_eq!(
        e.to_json(),
        "{\"iteration\":3,\"strategy\":\"GP-discontinuous\",\"action\":7,\
         \"duration\":1.5,\"cumulative_time\":12.25,\"best_known\":1.25,\
         \"regret\":0.25,\"phases\":[{\"name\":\"factorization\",\"seconds\":1},\
         {\"name\":\"solve\",\"seconds\":0.5}],\"posterior\":[{\"action\":7,\
         \"mean\":1.5,\"sd\":0.125,\"acquisition\":1.25}],\"excluded\":[1,2],\
         \"note\":\"gp-lcb\",\"phase_breakdown\":{\"phases\":[\
         {\"name\":\"generation\",\"seconds\":0.25},{\"name\":\"solve\",\"seconds\":1.25}],\
         \"groups\":[{\"name\":\"chifflot:1-2\",\"busy_s\":3,\"idle_s\":1,\
         \"utilization\":0.75}]},\"retries\":1,\
         \"fault\":\"node-death:rank=5;rebaseline\",\
         \"snapshot\":{\"points\":[\
         {\"action\":1,\"mean\":8.5,\"sd\":0.5,\"lp_bound\":10,\"excluded\":true},\
         {\"action\":7,\"mean\":1.5,\"sd\":0.125,\"lp_bound\":null,\"excluded\":false}]}}"
    );
}

#[test]
fn golden_minimal_event_keeps_every_key() {
    let e = IterationEvent {
        iteration: 0,
        strategy: "UCB".into(),
        action: 1,
        duration: 2.5,
        cumulative_time: 2.5,
        best_known: None,
        regret: None,
        phases: vec![],
        trace: None,
        phase_breakdown: None,
        retries: 0,
        fault: None,
        snapshot: None,
    };
    assert_eq!(
        e.to_json(),
        "{\"iteration\":0,\"strategy\":\"UCB\",\"action\":1,\"duration\":2.5,\
         \"cumulative_time\":2.5,\"best_known\":null,\"regret\":null,\
         \"phases\":[],\"posterior\":[],\"excluded\":[],\"note\":\"\",\
         \"phase_breakdown\":null,\"retries\":0,\"fault\":null,\"snapshot\":null}"
    );
}

#[test]
fn non_finite_floats_serialize_as_null() {
    let e = IterationEvent {
        iteration: 1,
        strategy: "UCB".into(),
        action: 2,
        duration: f64::NAN,
        cumulative_time: f64::INFINITY,
        best_known: Some(f64::NEG_INFINITY),
        regret: None,
        phases: vec![],
        trace: None,
        phase_breakdown: None,
        retries: 0,
        fault: None,
        snapshot: None,
    };
    let json = e.to_json();
    assert!(json.contains("\"duration\":null"), "{json}");
    assert!(json.contains("\"cumulative_time\":null"), "{json}");
    assert!(json.contains("\"best_known\":null"), "{json}");
}

/// `Write` handle sharing a buffer with the test (the driver owns the sink).
#[derive(Clone, Default)]
struct Shared(Arc<Mutex<Vec<u8>>>);

impl Write for Shared {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn driver_emits_one_ordered_json_line_per_iteration() {
    let n = 8usize;
    let lp: Vec<f64> = (1..=n).map(|k| 50.0 / k as f64).collect();
    let space = ActionSpace::new(n, vec![], Some(lp));
    let strat = StrategyKind::GpDiscontinuous.build(&space, 5, None).unwrap();
    let buf = Shared::default();
    let memory = MemorySink::new();
    let mut driver = TunerDriver::builder(&space)
        .strategy(strat)
        .sink(Box::new(JsonlSink::new(buf.clone())))
        .sink(Box::new(memory.clone()))
        .build()
        .unwrap();
    let iters = 12;
    driver.run(iters, |k| Observation::of(50.0 / k as f64 + k as f64));
    let hist = driver.into_history();
    assert_eq!(memory.len(), hist.len(), "one event per recorded iteration");

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("telemetry is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), iters, "one JSONL line per iteration");
    for (i, line) in lines.iter().enumerate() {
        assert!(line.starts_with('{') && line.ends_with('}'), "line {i}: {line}");
        // Keys appear exactly in the pinned order.
        let mut from = 0usize;
        for key in KEYS {
            let at = line[from..]
                .find(key)
                .unwrap_or_else(|| panic!("line {i} missing/misordered {key}: {line}"));
            from += at + key.len();
        }
        assert!(line.contains(&format!("\"iteration\":{i},")));
        assert!(line.contains("\"strategy\":\"GP-discontinuous\""));
    }
    // Once the GP is fit, events must expose the posterior and the
    // LP-bound exclusions (action 1 has LP = 50 ≥ any observed duration).
    let last = lines.last().unwrap();
    assert!(
        last.contains("\"posterior\":[{\"action\":"),
        "expected a populated posterior late in the run: {last}"
    );
    assert!(last.contains("\"excluded\":[1"), "expected action 1 excluded by the LP bound: {last}");
    // And the full-space posterior snapshot rides along, one point per
    // action with the pinned sub-schema key order.
    assert!(
        last.contains("\"snapshot\":{\"points\":[{\"action\":1,\"mean\":"),
        "expected a populated snapshot late in the run: {last}"
    );
    let snap_at = last.find("\"snapshot\":").unwrap();
    let snap = &last[snap_at..];
    for key in ["\"action\":", "\"mean\":", "\"sd\":", "\"lp_bound\":", "\"excluded\":"] {
        assert!(snap.contains(key), "snapshot point missing {key}: {snap}");
    }
    assert_eq!(snap.matches("\"action\":").count(), n, "one snapshot point per action: {snap}");
    // The memory sink sees the same snapshot structurally.
    let events = memory.events();
    let last_snap = events.last().unwrap().snapshot.as_ref().expect("snapshot in memory sink");
    assert_eq!(last_snap.points.len(), n);
    assert!(last_snap.points[0].excluded, "action 1 is bounded out");
}

#[test]
fn golden_snapshot_point_sub_schema() {
    // Pins the serialized layout of one PosteriorPoint so downstream
    // report parsing can't silently drift: key order, null lp_bound,
    // bare booleans, non-finite floats as null.
    let e = IterationEvent {
        iteration: 0,
        strategy: "GP-UCB".into(),
        action: 3,
        duration: 1.0,
        cumulative_time: 1.0,
        best_known: None,
        regret: None,
        phases: vec![],
        trace: None,
        phase_breakdown: None,
        retries: 0,
        fault: None,
        snapshot: Some(PosteriorSnapshot {
            points: vec![PosteriorPoint {
                action: 3,
                mean: f64::NAN,
                sd: 0.25,
                lp_bound: None,
                excluded: false,
            }],
        }),
    };
    assert!(e.to_json().ends_with(
        "\"snapshot\":{\"points\":[\
         {\"action\":3,\"mean\":null,\"sd\":0.25,\"lp_bound\":null,\"excluded\":false}]}}"
    ));
}
