//! Exact critical-path extraction from an extended [`Trace`].
//!
//! The runtime records, for every submitted task, its STF-inferred
//! predecessor set and lifecycle timestamps ([`adaphet_runtime::TaskMeta`]).
//! Under STF semantics a task starts only after all its predecessors end,
//! so walking backward from the last-finishing task and always hopping to
//! the latest-ending predecessor yields the longest dependence chain — the
//! critical path that bounds the makespan. Dependence chains stay connected
//! through untraced pseudo-tasks (data migrations): the walker resolves
//! them transitively to the real tasks behind them.

use adaphet_runtime::{NodeId, TaskId, Trace, TraceEvent};
use std::collections::HashMap;

/// One task on the critical path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStep {
    /// The task.
    pub task: TaskId,
    /// Application phase tag of the task.
    pub phase: u32,
    /// Task class (index into the runtime's class table).
    pub class: usize,
    /// Node the task ran on.
    pub node: NodeId,
    /// Execution start (s).
    pub start: f64,
    /// Execution end (s).
    pub end: f64,
    /// Idle time on the path immediately before this task started:
    /// `start − predecessor.end` (scheduling + transfer wait), or
    /// `start − window_start` for the first step.
    pub wait_before: f64,
}

impl PathStep {
    /// Execution time of this step.
    pub fn exec(&self) -> f64 {
        self.end - self.start
    }
}

/// The longest dependence chain of a traced run.
///
/// By construction `exec_time + wait_time == total()` exactly (the chain
/// telescopes from `window_start` to `makespan`), so the path accounts
/// for the full makespan: whatever is not execution on the path is wait.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Chain in execution order (first submitted → last finished).
    pub steps: Vec<PathStep>,
    /// Earliest event start in the trace (the analysis window origin).
    pub window_start: f64,
    /// Latest event end in the trace.
    pub makespan: f64,
    /// Total execution time on the path.
    pub exec_time: f64,
    /// Total wait time on the path (gaps between chained tasks).
    pub wait_time: f64,
}

impl CriticalPath {
    /// Extract the critical path, or `None` for an empty trace.
    pub fn extract(trace: &Trace) -> Option<CriticalPath> {
        let events = trace.events();
        let by_task: HashMap<usize, &TraceEvent> = events.iter().map(|e| (e.task.0, e)).collect();
        let window_start = events.iter().map(|e| e.start).fold(f64::INFINITY, f64::min);
        let last = events
            .iter()
            .max_by(|a, b| a.end.partial_cmp(&b.end).unwrap_or(std::cmp::Ordering::Equal))?;

        let mut chain: Vec<&TraceEvent> = vec![last];
        let mut cur = last;
        loop {
            let preds = resolve_predecessors(trace, &by_task, cur.task);
            let Some(best) = preds
                .into_iter()
                // Guard against metadata for a different (cleared) run: a
                // predecessor always ends at or before its successor's start.
                .filter(|p| p.end <= cur.start + 1e-9)
                .max_by(|a, b| a.end.partial_cmp(&b.end).unwrap_or(std::cmp::Ordering::Equal))
            else {
                break;
            };
            chain.push(best);
            cur = best;
        }
        chain.reverse();

        let mut steps = Vec::with_capacity(chain.len());
        let mut prev_end = window_start;
        for e in chain {
            steps.push(PathStep {
                task: e.task,
                phase: e.phase,
                class: e.class.0,
                node: e.node,
                start: e.start,
                end: e.end,
                wait_before: (e.start - prev_end).max(0.0),
            });
            prev_end = e.end;
        }
        let exec_time: f64 = steps.iter().map(|s| s.exec()).sum();
        let wait_time: f64 = steps.iter().map(|s| s.wait_before).sum();
        Some(CriticalPath { steps, window_start, makespan: last.end, exec_time, wait_time })
    }

    /// Length of the analysis window the path spans: `makespan −
    /// window_start`. Equals `exec_time + wait_time` up to rounding.
    pub fn total(&self) -> f64 {
        self.makespan - self.window_start
    }

    /// Execution time on the path per phase tag, in first-seen order.
    pub fn per_phase(&self) -> Vec<(u32, f64)> {
        accumulate(self.steps.iter().map(|s| (s.phase, s.exec())))
    }

    /// Execution time on the path per task class, in first-seen order.
    pub fn per_class(&self) -> Vec<(usize, f64)> {
        accumulate(self.steps.iter().map(|s| (s.class, s.exec())))
    }

    /// Execution time on the path per node, in first-seen order.
    pub fn per_node(&self) -> Vec<(usize, f64)> {
        accumulate(self.steps.iter().map(|s| (s.node.0, s.exec())))
    }

    /// Which homogeneous node group bounds the run: the index into
    /// `groups` (1-based inclusive node-rank ranges, as returned by
    /// `Platform::homogeneous_groups`) holding the most execution time on
    /// the path. `None` when no step falls into any group.
    pub fn bounding_group(&self, groups: &[(usize, usize)]) -> Option<usize> {
        let mut exec = vec![0.0f64; groups.len()];
        for s in &self.steps {
            let rank = s.node.0 + 1;
            if let Some(gi) = groups.iter().position(|&(a, b)| (a..=b).contains(&rank)) {
                exec[gi] += s.exec();
            }
        }
        exec.iter()
            .enumerate()
            .filter(|&(_, &x)| x > 0.0)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
    }
}

/// The traced predecessors of `task`, hopping transitively through
/// untraced pseudo-tasks (migrations carry dependence but no event).
fn resolve_predecessors<'t>(
    trace: &Trace,
    by_task: &HashMap<usize, &'t TraceEvent>,
    task: TaskId,
) -> Vec<&'t TraceEvent> {
    let mut out = Vec::new();
    let mut stack: Vec<TaskId> = match trace.meta(task) {
        Some(m) => m.deps.clone(),
        None => return out,
    };
    let mut seen = std::collections::HashSet::new();
    while let Some(dep) = stack.pop() {
        if !seen.insert(dep.0) {
            continue;
        }
        match by_task.get(&dep.0) {
            Some(e) => out.push(*e),
            None => {
                // Pseudo-task: keep walking to its own predecessors.
                if let Some(m) = trace.meta(dep) {
                    stack.extend(m.deps.iter().copied());
                }
            }
        }
    }
    out
}

fn accumulate<K: PartialEq + Copy>(items: impl Iterator<Item = (K, f64)>) -> Vec<(K, f64)> {
    let mut out: Vec<(K, f64)> = Vec::new();
    for (k, v) in items {
        match out.iter_mut().find(|(ek, _)| *ek == k) {
            Some((_, ev)) => *ev += v,
            None => out.push((k, v)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaphet_runtime::{ClassId, ResourceKind, TraceEvent};

    fn ev(task: usize, node: usize, phase: u32, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            task: TaskId(task),
            class: ClassId(phase as usize),
            phase,
            node: NodeId(node),
            resource: ResourceKind::CpuCore(0),
            start,
            end,
        }
    }

    /// The acceptance-criteria DAG: A → {B, C} → D with C the slower
    /// middle task, so the exact longest chain is A, C, D.
    fn diamond() -> Trace {
        let mut t = Trace::new();
        t.push(ev(0, 0, 0, 0.0, 1.0)); // A
        t.push(ev(1, 0, 1, 1.0, 2.0)); // B (fast branch)
        t.push(ev(2, 1, 1, 1.0, 4.0)); // C (slow branch)
        t.push(ev(3, 0, 2, 4.0, 5.0)); // D joins both
        t.record_deps(TaskId(1), &[TaskId(0)]);
        t.record_deps(TaskId(2), &[TaskId(0)]);
        t.record_deps(TaskId(3), &[TaskId(1), TaskId(2)]);
        t
    }

    #[test]
    fn diamond_dag_yields_the_exact_longest_chain() {
        let t = diamond();
        let cp = CriticalPath::extract(&t).unwrap();
        let ids: Vec<usize> = cp.steps.iter().map(|s| s.task.0).collect();
        assert_eq!(ids, vec![0, 2, 3], "A → C → D is the longest chain");
        assert_eq!(cp.window_start, 0.0);
        assert_eq!(cp.makespan, 5.0);
        assert_eq!(cp.exec_time, 5.0, "the chain is gap-free");
        assert_eq!(cp.wait_time, 0.0);
        assert!((cp.exec_time + cp.wait_time - cp.total()).abs() < 1e-12);
    }

    #[test]
    fn waits_telescope_to_the_full_window() {
        let mut t = diamond();
        // D actually started late (scheduler gap after C ended at 4).
        t.clear();
        t.push(ev(0, 0, 0, 0.5, 1.0));
        t.push(ev(1, 1, 1, 1.25, 4.0));
        t.push(ev(2, 0, 2, 4.5, 6.0));
        t.record_deps(TaskId(1), &[TaskId(0)]);
        t.record_deps(TaskId(2), &[TaskId(1)]);
        let cp = CriticalPath::extract(&t).unwrap();
        assert_eq!(cp.steps.len(), 3);
        assert!((cp.steps[0].wait_before - 0.0).abs() < 1e-12, "first starts the window");
        assert!((cp.steps[1].wait_before - 0.25).abs() < 1e-12);
        assert!((cp.steps[2].wait_before - 0.5).abs() < 1e-12);
        // exec + wait == makespan − window_start exactly.
        assert!((cp.exec_time + cp.wait_time - cp.total()).abs() < 1e-12);
        assert!((cp.total() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn pseudo_tasks_keep_chains_connected() {
        // A → (migration, no event) → B: the walker hops through.
        let mut t = Trace::new();
        t.push(ev(0, 0, 0, 0.0, 1.0));
        t.push(ev(2, 1, 1, 2.0, 3.0));
        t.record_deps(TaskId(1), &[TaskId(0)]); // migration depends on A
        t.record_deps(TaskId(2), &[TaskId(1)]); // B depends on migration
        let cp = CriticalPath::extract(&t).unwrap();
        let ids: Vec<usize> = cp.steps.iter().map(|s| s.task.0).collect();
        assert_eq!(ids, vec![0, 2], "chain crosses the untraced migration");
        assert!((cp.steps[1].wait_before - 1.0).abs() < 1e-12, "migration time shows as wait");
    }

    #[test]
    fn breakdowns_and_bounding_group() {
        let cp = CriticalPath::extract(&diamond()).unwrap();
        assert_eq!(cp.per_phase(), vec![(0, 1.0), (1, 3.0), (2, 1.0)]);
        assert_eq!(cp.per_node(), vec![(0, 2.0), (1, 3.0)]);
        // Node ranks are 1-based in group ranges: node 0 → rank 1.
        let groups = [(1, 1), (2, 2)];
        assert_eq!(cp.bounding_group(&groups), Some(1), "node 1 carries 3 of 5 s");
        assert_eq!(cp.bounding_group(&[]), None);
    }

    #[test]
    fn empty_trace_has_no_path() {
        assert!(CriticalPath::extract(&Trace::new()).is_none());
    }
}
