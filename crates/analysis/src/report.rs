//! The assembled run-report data model shared by the HTML and ASCII
//! renderers.
//!
//! A [`Report`] always carries the parsed telemetry; the simulation-side
//! diagnosis ([`SimDiagnosis`]) is optional because it requires re-running
//! one profiled iteration at the chosen action to obtain an extended trace
//! — the `report` eval binary does that, library consumers may not.

use crate::critical_path::CriticalPath;
use crate::idle::IdleBreakdown;
use crate::jsonl::{Json, TelemetryRun};
use adaphet_runtime::Trace;

/// Diagnosis of one re-simulated iteration at a fixed action.
#[derive(Debug, Clone)]
pub struct SimDiagnosis {
    /// Scenario label (e.g. `"a"`).
    pub scenario: String,
    /// Action (node count) that was re-simulated.
    pub action: usize,
    /// Makespan of the re-simulated iteration (s).
    pub makespan: f64,
    /// Phase-tag → display-name table (index = phase id).
    pub phase_names: Vec<String>,
    /// Homogeneous node groups: `(label, first_rank, last_rank)`,
    /// 1-based inclusive, as derived from `Platform::homogeneous_groups`.
    pub groups: Vec<(String, usize, usize)>,
    /// The extended trace of the iteration.
    pub trace: Trace,
    /// Exact critical path through the trace.
    pub critical_path: CriticalPath,
    /// Whole-platform idle classification over the trace window.
    pub idle: IdleBreakdown,
    /// Per-group idle classification, aligned with `groups`.
    pub group_idle: Vec<IdleBreakdown>,
}

impl SimDiagnosis {
    /// Human-readable name of a phase tag.
    pub fn phase_name(&self, phase: u32) -> String {
        self.phase_names.get(phase as usize).cloned().unwrap_or_else(|| format!("phase-{phase}"))
    }

    /// Label of the group bounding the critical path, if any.
    pub fn bounding_group_label(&self) -> Option<&str> {
        let ranges: Vec<(usize, usize)> = self.groups.iter().map(|g| (g.1, g.2)).collect();
        self.critical_path
            .bounding_group(&ranges)
            .and_then(|gi| self.groups.get(gi))
            .map(|g| g.0.as_str())
    }
}

/// Everything a renderer needs to produce a run report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Report title.
    pub title: String,
    /// Where the telemetry came from (file path or description).
    pub source: String,
    /// Parsed telemetry, grouped per strategy.
    pub telemetry: TelemetryRun,
    /// Optional re-simulation diagnosis.
    pub sim: Option<SimDiagnosis>,
    /// Optional metrics-registry export (parsed JSON document).
    pub metrics: Option<Json>,
    /// Optional metric-history document, as served by the daemon's
    /// `GET /metrics/history` endpoint (the time-series store's JSON
    /// export: `{"series":[{"name":…,"points":[[t,v],…]},…]}`).
    pub history: Option<Json>,
}

impl Report {
    /// Flat `(label, value)` rows extracted from the metrics document:
    /// top-level scalars plus one level of nested objects, in document
    /// order. Arrays and deeper nesting are summarized by length.
    pub fn metrics_rows(&self) -> Vec<(String, String)> {
        let mut rows = Vec::new();
        let Some(Json::Obj(fields)) = &self.metrics else {
            return rows;
        };
        for (k, v) in fields {
            flatten_metric(k, v, &mut rows);
        }
        rows
    }
}

fn scalar(v: &Json) -> Option<String> {
    match v {
        Json::Null => Some("null".into()),
        Json::Bool(b) => Some(b.to_string()),
        Json::Num(x) => Some(format_num(*x)),
        Json::Str(s) => Some(s.clone()),
        _ => None,
    }
}

fn flatten_metric(key: &str, v: &Json, rows: &mut Vec<(String, String)>) {
    if let Some(s) = scalar(v) {
        rows.push((key.to_string(), s));
        return;
    }
    match v {
        Json::Obj(fields) => {
            for (k, inner) in fields {
                match scalar(inner) {
                    Some(s) => rows.push((format!("{key}.{k}"), s)),
                    None => {
                        rows.push((format!("{key}.{k}"), format!("({} entries)", json_len(inner))))
                    }
                }
            }
        }
        Json::Arr(items) => rows.push((key.to_string(), format!("({} entries)", items.len()))),
        _ => unreachable!("scalar() covers the remaining variants"),
    }
}

fn json_len(v: &Json) -> usize {
    match v {
        Json::Arr(a) => a.len(),
        Json::Obj(o) => o.len(),
        _ => 1,
    }
}

/// Compact human formatting for report numbers: integers stay integral,
/// everything else gets four significant-looking decimals.
pub fn format_num(x: f64) -> String {
    if !x.is_finite() {
        return x.to_string();
    }
    if x == x.trunc() && x.abs() < 1e12 {
        return format!("{}", x as i64);
    }
    let s = format!("{x:.4}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_rows_flatten_one_level() {
        let doc = Json::parse(
            r#"{"runs":3,"wall_s":1.25,"phase":{"fact":2.5,"deep":[1,2]},"hist":[1,2,3]}"#,
        )
        .unwrap();
        let r = Report {
            title: "t".into(),
            source: "s".into(),
            telemetry: TelemetryRun::default(),
            sim: None,
            metrics: Some(doc),
            history: None,
        };
        assert_eq!(
            r.metrics_rows(),
            vec![
                ("runs".to_string(), "3".to_string()),
                ("wall_s".to_string(), "1.25".to_string()),
                ("phase.fact".to_string(), "2.5".to_string()),
                ("phase.deep".to_string(), "(2 entries)".to_string()),
                ("hist".to_string(), "(3 entries)".to_string()),
            ]
        );
    }

    #[test]
    fn numbers_format_compactly() {
        assert_eq!(format_num(10.0), "10");
        assert_eq!(format_num(0.125), "0.125");
        assert_eq!(format_num(1.23456), "1.2346");
        assert_eq!(format_num(f64::NAN), "NaN");
    }
}
