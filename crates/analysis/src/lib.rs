//! # adaphet-analysis
//!
//! Post-hoc trace analysis and run explainability:
//!
//! * [`CriticalPath`] — exact longest dependence chain of a traced run,
//!   with per-phase / per-class / per-node time on the path and the node
//!   group that bounds the makespan;
//! * [`IdleBreakdown`] — classification of every worker idle second into
//!   dependency-wait, transfer-wait, or no-ready-work buckets that
//!   partition the window exactly;
//! * [`TelemetryRun`] — a hand-rolled parser for the JSONL telemetry the
//!   tuner driver emits (the schema pinned by `tests/telemetry_schema.rs`),
//!   including GP posterior snapshots;
//! * [`Report`] / [`render_html`] / [`render_ascii`] — a self-contained
//!   single-file HTML run report (inline SVG, no JavaScript, no external
//!   fetches) with an ASCII fallback for terminals.
//!
//! The crate deliberately depends only on `adaphet-runtime` (trace types)
//! and `adaphet-metrics` (string escaping): it consumes artifacts, it does
//! not drive simulations. The `report` eval binary wires it to live
//! scenarios.

pub mod ascii;
pub mod critical_path;
pub mod html;
pub mod idle;
pub mod jsonl;
pub mod report;

pub use ascii::render_ascii;
pub use critical_path::{CriticalPath, PathStep};
pub use html::{html_escape, render_html, STYLE};
pub use idle::{IdleBreakdown, IdleCause};
pub use jsonl::{IterationRecord, Json, SnapshotPoint, StrategyRun, TelemetryRun};
pub use report::{Report, SimDiagnosis};
