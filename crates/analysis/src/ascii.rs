//! Plain-text fallback for the run report (`report --ascii`).
//!
//! Renders the same sections as [`crate::html::render_html`] with Unicode
//! bar charts instead of SVG, suitable for terminals and CI logs.

use crate::report::{format_num, Report, SimDiagnosis};

const BAR_W: usize = 40;

fn bar(frac: f64, width: usize) -> String {
    let frac = frac.clamp(0.0, 1.0);
    let filled = (frac * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

fn rule(out: &mut String, title: &str) {
    out.push_str(&format!("\n== {title} "));
    for _ in title.len()..60 {
        out.push('=');
    }
    out.push('\n');
}

/// Render the full report as plain text.
pub fn render_ascii(report: &Report) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}\nsource: {}\n", report.title, report.source));

    if !report.telemetry.runs.is_empty() {
        rule(&mut out, "strategy summary");
        for run in &report.telemetry.runs {
            let best = run
                .records
                .iter()
                .map(|r| r.duration)
                .filter(|d| d.is_finite())
                .fold(f64::INFINITY, f64::min);
            let total = run.records.last().map_or(0.0, |r| r.cumulative_time);
            let retries: usize = run.records.iter().map(|r| r.retries).sum();
            let faults = run.records.iter().filter(|r| r.fault.is_some()).count();
            out.push_str(&format!(
                "  {:<24} iters={:<4} best={:<10} total={:<10} retries={retries} faults={faults}\n",
                run.name,
                run.records.len(),
                if best.is_finite() { format_num(best) } else { "-".into() },
                format_num(total),
            ));
        }
        if let Some((name, action, dur)) = report.telemetry.best_observed() {
            out.push_str(&format!(
                "  best observed: {name} at {action} nodes, {} s\n",
                format_num(dur)
            ));
        }

        rule(&mut out, "iteration durations");
        let max_dur = report
            .telemetry
            .runs
            .iter()
            .flat_map(|r| r.records.iter().map(|rec| rec.duration))
            .filter(|d| d.is_finite())
            .fold(0.0f64, f64::max);
        for run in &report.telemetry.runs {
            out.push_str(&format!("  [{}]\n", run.name));
            for rec in &run.records {
                let frac = if max_dur > 0.0 && rec.duration.is_finite() {
                    rec.duration / max_dur
                } else {
                    0.0
                };
                let mark = if rec.fault.is_some() {
                    " x FAULT"
                } else if rec.retries > 0 {
                    " ^ retry"
                } else {
                    ""
                };
                out.push_str(&format!(
                    "  {:>4}  n={:<3} {} {}{}{}\n",
                    rec.iteration,
                    rec.action,
                    bar(frac, BAR_W),
                    format_num(rec.duration),
                    if rec.snapshot.is_some() { " [gp]" } else { "" },
                    mark,
                ));
            }
        }
    }

    if let Some(sim) = &report.sim {
        sim_ascii(sim, &mut out);
    }

    let rows = report.metrics_rows();
    if !rows.is_empty() {
        rule(&mut out, "runtime metrics");
        for (k, v) in rows {
            out.push_str(&format!("  {k:<36} {v}\n"));
        }
    }
    out
}

fn sim_ascii(sim: &SimDiagnosis, out: &mut String) {
    rule(out, "run diagnosis");
    out.push_str(&format!(
        "  scenario {} at {} nodes, makespan {} s\n",
        sim.scenario,
        sim.action,
        format_num(sim.makespan)
    ));

    let cp = &sim.critical_path;
    let total = cp.total().max(f64::MIN_POSITIVE);
    out.push_str(&format!(
        "\n  critical path: {} tasks, {} s ({} exec / {} wait)\n",
        cp.steps.len(),
        format_num(cp.total()),
        format_num(cp.exec_time),
        format_num(cp.wait_time),
    ));
    if let Some(g) = sim.bounding_group_label() {
        out.push_str(&format!("  bounded by group: {g}\n"));
    }
    for (phase, secs) in cp.per_phase() {
        out.push_str(&format!(
            "    {:<20} {} {} s ({:.1}%)\n",
            sim.phase_name(phase),
            bar(secs / total, BAR_W / 2),
            format_num(secs),
            100.0 * secs / total,
        ));
    }

    out.push_str("\n  idle classification (busy/dep/transfer/no-work):\n");
    let mut rows: Vec<(String, &crate::idle::IdleBreakdown)> = vec![("all".to_string(), &sim.idle)];
    for ((name, _, _), b) in sim.groups.iter().zip(&sim.group_idle) {
        rows.push((name.clone(), b));
    }
    for (label, b) in rows {
        let t = b.total_s().max(f64::MIN_POSITIVE);
        out.push_str(&format!(
            "    {:<16} busy {:>5.1}% | dep {:>5.1}% | xfer {:>5.1}% | idle {:>5.1}%  ({} workers)\n",
            label,
            100.0 * b.busy_s / t,
            100.0 * b.dependency_s / t,
            100.0 * b.transfer_s / t,
            100.0 * b.no_ready_work_s / t,
            b.workers,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonl::TelemetryRun;

    #[test]
    fn ascii_report_renders_bars_and_markers() {
        let jsonl = "\
{\"iteration\":0,\"strategy\":\"UCB\",\"action\":4,\"duration\":3,\"cumulative_time\":3,\"retries\":0,\"fault\":null,\"snapshot\":null}\n\
{\"iteration\":1,\"strategy\":\"UCB\",\"action\":6,\"duration\":1.5,\"cumulative_time\":4.5,\"retries\":2,\"fault\":\"node-death:rank=1\",\"snapshot\":null}\n";
        let r = Report {
            title: "t".into(),
            source: "s".into(),
            telemetry: TelemetryRun::parse(jsonl).unwrap(),
            sim: None,
            metrics: None,
            history: None,
        };
        let text = render_ascii(&r);
        assert!(text.contains("strategy summary"));
        assert!(text.contains("UCB"));
        assert!(text.contains("x FAULT"));
        assert!(text.contains('#'), "bars rendered");
        assert!(text.contains("best observed: UCB at 6 nodes"));
    }

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(2.0, 4), "####");
        assert_eq!(bar(-1.0, 4), "....");
        assert_eq!(bar(0.5, 4), "##..");
    }
}
