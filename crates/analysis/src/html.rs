//! Self-contained HTML run report.
//!
//! One output file, no JavaScript, no external fetches: styles are inline
//! CSS, every figure is inline SVG built by hand (the same philosophy as
//! the workspace's hand-rolled JSON codecs). The report degrades
//! gracefully — sections whose inputs are absent (no snapshots, no
//! re-simulation, no metrics file) are simply omitted.

use crate::jsonl::{IterationRecord, Json};
use crate::report::{format_num, Report, SimDiagnosis};
use adaphet_runtime::{ResourceKind, Trace};

/// Fixed qualitative palette (cycled) for phases and strategies.
const PALETTE: [&str; 8] =
    ["#4878cf", "#d65f5f", "#6acc65", "#b47cc7", "#c4ad66", "#77bedb", "#ee854a", "#8c613c"];

fn color(i: usize) -> &'static str {
    PALETTE[i % PALETTE.len()]
}

/// Escape text for HTML element content and attribute values.
pub fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Linear data→pixel mapping for one SVG figure.
struct Frame {
    w: f64,
    h: f64,
    /// Margins: left, right, top, bottom.
    ml: f64,
    mr: f64,
    mt: f64,
    mb: f64,
    x0: f64,
    x1: f64,
    y0: f64,
    y1: f64,
}

impl Frame {
    fn new(w: f64, h: f64, x0: f64, x1: f64, y0: f64, y1: f64) -> Frame {
        let (x0, x1) = if x1 > x0 { (x0, x1) } else { (x0, x0 + 1.0) };
        let (y0, y1) = if y1 > y0 { (y0, y1) } else { (y0, y0 + 1.0) };
        Frame { w, h, ml: 46.0, mr: 10.0, mt: 8.0, mb: 22.0, x0, x1, y0, y1 }
    }

    fn px(&self, x: f64) -> f64 {
        self.ml + (x - self.x0) / (self.x1 - self.x0) * (self.w - self.ml - self.mr)
    }

    fn py(&self, y: f64) -> f64 {
        // SVG y grows downward; data y grows upward.
        self.h - self.mb - (y - self.y0) / (self.y1 - self.y0) * (self.h - self.mt - self.mb)
    }

    fn open(&self) -> String {
        format!(
            "<svg viewBox=\"0 0 {} {}\" width=\"{}\" height=\"{}\" \
             xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">",
            self.w, self.h, self.w, self.h
        )
    }

    /// Axis lines plus min/max tick labels on both axes.
    fn axes(&self, x_label: &str, y_unit: &str) -> String {
        let mut s = String::new();
        let (l, r) = (self.ml, self.w - self.mr);
        let (t, b) = (self.mt, self.h - self.mb);
        s.push_str(&format!(
            "<path d=\"M{l} {t} L{l} {b} L{r} {b}\" fill=\"none\" stroke=\"#999\"/>"
        ));
        s.push_str(&format!(
            "<text x=\"{l}\" y=\"{}\" class=\"tick\">{}</text>\
             <text x=\"{r}\" y=\"{}\" class=\"tick\" text-anchor=\"end\">{}</text>",
            b + 14.0,
            format_num(self.x0),
            b + 14.0,
            format_num(self.x1),
        ));
        s.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" class=\"tick\" text-anchor=\"end\">{}</text>\
             <text x=\"{}\" y=\"{}\" class=\"tick\" text-anchor=\"end\">{}</text>",
            l - 4.0,
            b,
            format_num(self.y0),
            l - 4.0,
            t + 10.0,
            format_num(self.y1),
        ));
        s.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" class=\"tick\" text-anchor=\"middle\">{}</text>",
            (l + r) / 2.0,
            b + 14.0,
            html_escape(x_label)
        ));
        if !y_unit.is_empty() {
            s.push_str(&format!(
                "<text x=\"12\" y=\"{}\" class=\"tick\" transform=\"rotate(-90 12 {})\" \
                 text-anchor=\"middle\">{}</text>",
                (t + b) / 2.0,
                (t + b) / 2.0,
                html_escape(y_unit)
            ));
        }
        s
    }
}

fn polyline(pts: &[(f64, f64)], stroke: &str, extra: &str) -> String {
    if pts.is_empty() {
        return String::new();
    }
    let coords: Vec<String> = pts.iter().map(|(x, y)| format!("{x:.2},{y:.2}")).collect();
    format!(
        "<polyline points=\"{}\" fill=\"none\" stroke=\"{stroke}\" stroke-width=\"1.5\" {extra}/>",
        coords.join(" ")
    )
}

/// Render the full report document.
pub fn render_html(report: &Report) -> String {
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n");
    out.push_str(&format!("<title>{}</title>\n", html_escape(&report.title)));
    out.push_str(STYLE);
    out.push_str("</head><body>\n");
    out.push_str(&format!("<h1>{}</h1>\n", html_escape(&report.title)));
    out.push_str(&format!(
        "<p class=\"meta\">source: <code>{}</code> &middot; {} strategies &middot; {} iterations</p>\n",
        html_escape(&report.source),
        report.telemetry.runs.len(),
        report.telemetry.len(),
    ));

    summary_section(report, &mut out);
    duration_section(report, &mut out);
    health_timeline_section(report, &mut out);
    posterior_section(report, &mut out);
    if let Some(sim) = &report.sim {
        sim_section(sim, &mut out);
    }
    metrics_section(report, &mut out);
    history_section(report, &mut out);

    out.push_str(
        "<p class=\"meta\">generated by <code>adaphet report</code> — \
                  self-contained file, no scripts, no external resources.</p>\n",
    );
    out.push_str("</body></html>\n");
    out
}

/// The report's inline CSS block (`<style>…</style>`), shared with
/// other adaphet HTML emitters (e.g. `adaphet-top --html`) so every
/// generated page carries the same look.
pub const STYLE: &str = "<style>\n\
body{font:14px/1.45 system-ui,sans-serif;margin:2em auto;max-width:960px;color:#222;padding:0 1em}\n\
h1{font-size:1.4em;border-bottom:2px solid #4878cf;padding-bottom:.25em}\n\
h2{font-size:1.15em;margin-top:1.6em}\n\
table{border-collapse:collapse;margin:.5em 0}\n\
th,td{border:1px solid #ccc;padding:.25em .6em;text-align:right}\n\
th{background:#f0f3f8}\n\
td:first-child,th:first-child{text-align:left}\n\
.meta{color:#666;font-size:.9em}\n\
.tick{font-size:10px;fill:#555}\n\
.lane{font-size:9px;fill:#444}\n\
.small{display:inline-block;margin:4px;vertical-align:top}\n\
.legend span{display:inline-block;margin-right:1em}\n\
.swatch{display:inline-block;width:10px;height:10px;margin-right:4px;border-radius:2px}\n\
figure{margin:1em 0}\nfigcaption{color:#666;font-size:.85em}\n\
</style>\n";

fn legend(entries: &[(String, &str)]) -> String {
    let mut s = String::from("<p class=\"legend\">");
    for (label, col) in entries {
        s.push_str(&format!(
            "<span><i class=\"swatch\" style=\"background:{col}\"></i>{}</span>",
            html_escape(label)
        ));
    }
    s.push_str("</p>\n");
    s
}

// ---------------------------------------------------------------- sections

fn summary_section(report: &Report, out: &mut String) {
    if report.telemetry.runs.is_empty() {
        return;
    }
    out.push_str(
        "<h2>Strategy summary</h2>\n<table>\n<tr><th>strategy</th><th>iterations</th>\
                  <th>best duration (s)</th><th>total time (s)</th><th>retries</th>\
                  <th>faults</th></tr>\n",
    );
    for run in &report.telemetry.runs {
        let best = run
            .records
            .iter()
            .map(|r| r.duration)
            .filter(|d| d.is_finite())
            .fold(f64::INFINITY, f64::min);
        let total = run.records.last().map_or(0.0, |r| r.cumulative_time);
        let retries: usize = run.records.iter().map(|r| r.retries).sum();
        let faults = run.records.iter().filter(|r| r.fault.is_some()).count();
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
            html_escape(&run.name),
            run.records.len(),
            if best.is_finite() { format_num(best) } else { "—".into() },
            format_num(total),
            retries,
            faults,
        ));
    }
    out.push_str("</table>\n");
    if let Some((name, action, dur)) = report.telemetry.best_observed() {
        out.push_str(&format!(
            "<p>Best observed iteration: <b>{}</b> at action <b>{action}</b> nodes, \
             duration <b>{} s</b>.</p>\n",
            html_escape(name),
            format_num(dur)
        ));
    }
}

/// Iteration-duration curves for every strategy, with fault markers (×)
/// and retry markers (▲) overlaid.
fn duration_section(report: &Report, out: &mut String) {
    let mut max_iter = 0usize;
    let mut max_dur = f64::NEG_INFINITY;
    let mut best_known: Option<f64> = None;
    for run in &report.telemetry.runs {
        for r in &run.records {
            max_iter = max_iter.max(r.iteration);
            if r.duration.is_finite() {
                max_dur = max_dur.max(r.duration);
            }
            if best_known.is_none() {
                best_known = r.best_known;
            }
        }
    }
    if !max_dur.is_finite() {
        return;
    }
    let y_top = max_dur.max(best_known.unwrap_or(0.0)) * 1.05;
    let f = Frame::new(640.0, 240.0, 0.0, max_iter as f64, 0.0, y_top);
    out.push_str("<h2>Iteration durations</h2>\n<figure>");
    out.push_str(&f.open());
    out.push_str(&f.axes("iteration", "duration (s)"));
    if let Some(bk) = best_known {
        let y = f.py(bk);
        out.push_str(&format!(
            "<line x1=\"{}\" y1=\"{y:.2}\" x2=\"{}\" y2=\"{y:.2}\" stroke=\"#444\" \
             stroke-dasharray=\"4 3\"/>",
            f.px(f.x0),
            f.px(f.x1)
        ));
    }
    let mut entries = Vec::new();
    for (si, run) in report.telemetry.runs.iter().enumerate() {
        let col = color(si);
        entries.push((run.name.clone(), col));
        let pts: Vec<(f64, f64)> = run
            .records
            .iter()
            .filter(|r| r.duration.is_finite())
            .map(|r| (f.px(r.iteration as f64), f.py(r.duration)))
            .collect();
        out.push_str(&polyline(&pts, col, ""));
        for r in &run.records {
            if !r.duration.is_finite() {
                continue;
            }
            let (x, y) = (f.px(r.iteration as f64), f.py(r.duration));
            if r.fault.is_some() {
                out.push_str(&format!(
                    "<text x=\"{x:.2}\" y=\"{:.2}\" fill=\"#c22\" font-size=\"12\" \
                     text-anchor=\"middle\">&#215;</text>",
                    y - 4.0
                ));
            } else if r.retries > 0 {
                out.push_str(&format!(
                    "<text x=\"{x:.2}\" y=\"{:.2}\" fill=\"#d80\" font-size=\"9\" \
                     text-anchor=\"middle\">&#9650;</text>",
                    y - 4.0
                ));
            }
        }
    }
    out.push_str("</svg>");
    out.push_str(
        "<figcaption>per-iteration measured duration; dashed line = configured best-known; \
         &#215; = fault injected; &#9650; = resilience retries</figcaption></figure>\n",
    );
    out.push_str(&legend(&entries));
}

/// Small-multiple GP posterior panels: up to six snapshot iterations per
/// strategy, mean &plusmn; one sd as a band, LP bound dashed, excluded
/// actions as hollow circles.
fn posterior_section(report: &Report, out: &mut String) {
    let mut wrote_header = false;
    for (si, run) in report.telemetry.runs.iter().enumerate() {
        let with_snap: Vec<_> = run.records.iter().filter(|r| r.snapshot.is_some()).collect();
        if with_snap.is_empty() {
            continue;
        }
        if !wrote_header {
            out.push_str("<h2>GP posterior evolution</h2>\n");
            out.push_str(
                "<p class=\"meta\">shaded band = posterior mean &plusmn; 1 sd over the action \
                 space; dashed = LP lower bound; hollow circles = actions excluded by the \
                 bound mechanism.</p>\n",
            );
            wrote_header = true;
        }
        out.push_str(&format!("<h3>{}</h3>\n<div>", html_escape(&run.name)));
        for rec in pick_spread(&with_snap, 6) {
            let snap = rec.snapshot.as_ref().expect("filtered to Some above");
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            let (mut a0, mut a1) = (usize::MAX, 0usize);
            for p in snap {
                a0 = a0.min(p.action);
                a1 = a1.max(p.action);
                if let (Some(m), Some(sd)) = (p.mean, p.sd) {
                    lo = lo.min(m - sd);
                    hi = hi.max(m + sd);
                }
                if let Some(b) = p.lp_bound {
                    lo = lo.min(b);
                    hi = hi.max(b);
                }
            }
            if !lo.is_finite() || !hi.is_finite() {
                continue;
            }
            let f = Frame::new(200.0, 130.0, a0 as f64, a1 as f64, lo, hi * 1.02);
            out.push_str("<span class=\"small\">");
            out.push_str(&f.open());
            out.push_str(&f.axes("nodes", ""));
            // Band: mean+sd forward, mean−sd backward.
            let known: Vec<_> =
                snap.iter().filter(|p| p.mean.is_some() && p.sd.is_some()).collect();
            if known.len() > 1 {
                let mut poly = String::from("<polygon points=\"");
                for p in &known {
                    let (m, sd) = (p.mean.unwrap(), p.sd.unwrap());
                    poly.push_str(&format!("{:.2},{:.2} ", f.px(p.action as f64), f.py(m + sd)));
                }
                for p in known.iter().rev() {
                    let (m, sd) = (p.mean.unwrap(), p.sd.unwrap());
                    poly.push_str(&format!("{:.2},{:.2} ", f.px(p.action as f64), f.py(m - sd)));
                }
                poly.push_str(&format!("\" fill=\"{}33\" stroke=\"none\"/>", color(si)));
                out.push_str(&poly);
                let mean_pts: Vec<(f64, f64)> =
                    known.iter().map(|p| (f.px(p.action as f64), f.py(p.mean.unwrap()))).collect();
                out.push_str(&polyline(&mean_pts, color(si), ""));
            }
            let lp_pts: Vec<(f64, f64)> = snap
                .iter()
                .filter_map(|p| p.lp_bound.map(|b| (f.px(p.action as f64), f.py(b))))
                .collect();
            out.push_str(&polyline(&lp_pts, "#444", "stroke-dasharray=\"3 2\""));
            for p in snap {
                let Some(m) = p.mean else { continue };
                let (x, y) = (f.px(p.action as f64), f.py(m));
                let fill = if p.excluded { "none" } else { color(si) };
                out.push_str(&format!(
                    "<circle cx=\"{x:.2}\" cy=\"{y:.2}\" r=\"2.4\" fill=\"{fill}\" \
                     stroke=\"{}\"/>",
                    color(si)
                ));
            }
            out.push_str(&format!(
                "<text x=\"{}\" y=\"{}\" class=\"tick\" text-anchor=\"end\">iter {}</text>",
                f.w - f.mr,
                f.mt + 10.0,
                rec.iteration
            ));
            out.push_str("</svg></span>");
        }
        out.push_str("</div>\n");
    }
}

/// Pick up to `n` items evenly spread over a slice, always keeping the
/// first and last.
fn pick_spread<'a, T>(items: &'a [&'a T], n: usize) -> Vec<&'a T> {
    if items.len() <= n {
        return items.to_vec();
    }
    (0..n).map(|i| items[i * (items.len() - 1) / (n - 1)]).collect()
}

fn res_label(r: ResourceKind) -> String {
    match r {
        ResourceKind::CpuCore(i) => format!("cpu{i}"),
        ResourceKind::Gpu(i) => format!("gpu{i}"),
    }
}

fn res_order(r: ResourceKind) -> (u8, usize) {
    match r {
        ResourceKind::CpuCore(i) => (0, i),
        ResourceKind::Gpu(i) => (1, i),
    }
}

fn sim_section(sim: &SimDiagnosis, out: &mut String) {
    out.push_str(&format!(
        "<h2>Run diagnosis (scenario {}, {} nodes)</h2>\n\
         <p>One profiled iteration re-simulated at the best observed action: \
         makespan <b>{} s</b>.</p>\n",
        html_escape(&sim.scenario),
        sim.action,
        format_num(sim.makespan)
    ));
    gantt(sim, out);
    ridgeline(sim, out);
    critical_path_tables(sim, out);
    idle_tables(sim, out);
}

/// Per-worker Gantt chart colored by phase.
fn gantt(sim: &SimDiagnosis, out: &mut String) {
    let trace = &sim.trace;
    if trace.events().is_empty() {
        return;
    }
    let mut workers: Vec<(usize, ResourceKind)> = Vec::new();
    for e in trace.events() {
        if !workers.contains(&(e.node.0, e.resource)) {
            workers.push((e.node.0, e.resource));
        }
    }
    workers.sort_by_key(|&(n, r)| (n, res_order(r)));
    let t0 = trace.events().iter().map(|e| e.start).fold(f64::INFINITY, f64::min);
    let t1 = trace.makespan();
    let lane_h = 13.0;
    let h = 30.0 + workers.len() as f64 * lane_h + 22.0;
    let mut f = Frame::new(900.0, h, t0, t1, 0.0, 1.0);
    f.ml = 70.0;
    out.push_str("<h3>Gantt</h3>\n<figure>");
    out.push_str(&f.open());
    // Lane labels and baselines.
    for (wi, &(node, res)) in workers.iter().enumerate() {
        let y = f.mt + wi as f64 * lane_h;
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{:.2}\" class=\"lane\" text-anchor=\"end\">n{} {}</text>",
            f.ml - 4.0,
            y + lane_h - 4.0,
            node + 1,
            res_label(res)
        ));
    }
    let mut phases_seen: Vec<u32> = Vec::new();
    for e in trace.events() {
        let wi = workers.iter().position(|&w| w == (e.node.0, e.resource)).expect("collected");
        if !phases_seen.contains(&e.phase) {
            phases_seen.push(e.phase);
        }
        let pi = phases_seen.iter().position(|&p| p == e.phase).expect("just inserted");
        let x = f.px(e.start);
        let wpx = (f.px(e.end) - x).max(0.4);
        let y = f.mt + wi as f64 * lane_h;
        out.push_str(&format!(
            "<rect x=\"{x:.2}\" y=\"{:.2}\" width=\"{wpx:.2}\" height=\"{:.2}\" \
             fill=\"{}\"/>",
            y + 1.0,
            lane_h - 2.0,
            color(pi)
        ));
    }
    // Time axis along the bottom.
    let b = h - 20.0;
    out.push_str(&format!(
        "<path d=\"M{} {b} L{} {b}\" stroke=\"#999\"/>\
         <text x=\"{}\" y=\"{}\" class=\"tick\">{}</text>\
         <text x=\"{}\" y=\"{}\" class=\"tick\" text-anchor=\"end\">{} s</text>",
        f.ml,
        f.w - f.mr,
        f.ml,
        b + 13.0,
        format_num(t0),
        f.w - f.mr,
        b + 13.0,
        format_num(t1),
    ));
    out.push_str(
        "</svg><figcaption>task execution per worker, colored by phase</figcaption>\
                  </figure>\n",
    );
    phases_seen.sort_unstable();
    let entries: Vec<(String, &str)> =
        phases_seen.iter().enumerate().map(|(i, &p)| (sim.phase_name(p), color(i))).collect();
    out.push_str(&legend(&entries));
}

/// Utilization profile of each worker group's observed workers, binned
/// over the trace window.
fn group_utilization(
    trace: &Trace,
    lo: usize,
    hi: usize,
    t0: f64,
    t1: f64,
    bins: usize,
) -> Vec<f64> {
    let mut workers: Vec<(usize, ResourceKind)> = Vec::new();
    for e in trace.events() {
        let rank = e.node.0 + 1;
        if (lo..=hi).contains(&rank) && !workers.contains(&(e.node.0, e.resource)) {
            workers.push((e.node.0, e.resource));
        }
    }
    if workers.is_empty() || !matches!(t1.partial_cmp(&t0), Some(std::cmp::Ordering::Greater)) {
        return vec![0.0; bins];
    }
    let dt = (t1 - t0) / bins as f64;
    let mut busy = vec![0.0f64; bins];
    for e in trace.events() {
        let rank = e.node.0 + 1;
        if !(lo..=hi).contains(&rank) {
            continue;
        }
        let first = (((e.start - t0) / dt).floor().max(0.0)) as usize;
        for (b, slot) in busy.iter_mut().enumerate().skip(first).take(bins - first.min(bins)) {
            let (bs, be) = (t0 + b as f64 * dt, t0 + (b + 1) as f64 * dt);
            let ov = (e.end.min(be) - e.start.max(bs)).max(0.0);
            if ov <= 0.0 && bs > e.end {
                break;
            }
            *slot += ov;
        }
    }
    let denom = workers.len() as f64 * dt;
    busy.iter().map(|&b| (b / denom).min(1.0)).collect()
}

/// Per-group utilization ridgeline: one filled area per homogeneous group,
/// stacked vertically.
fn ridgeline(sim: &SimDiagnosis, out: &mut String) {
    let trace = &sim.trace;
    if trace.events().is_empty() || sim.groups.is_empty() {
        return;
    }
    let t0 = trace.events().iter().map(|e| e.start).fold(f64::INFINITY, f64::min);
    let t1 = trace.makespan();
    let bins = 120usize;
    let row_h = 46.0;
    let h = 10.0 + sim.groups.len() as f64 * row_h + 24.0;
    let mut f = Frame::new(900.0, h, t0, t1, 0.0, 1.0);
    f.ml = 110.0;
    out.push_str("<h3>Utilization by group</h3>\n<figure>");
    out.push_str(&f.open());
    for (gi, (name, lo, hi)) in sim.groups.iter().enumerate() {
        let u = group_utilization(trace, *lo, *hi, t0, t1, bins);
        let base = 10.0 + (gi + 1) as f64 * row_h - 6.0;
        let mut pts = format!("{:.2},{base:.2} ", f.ml);
        for (b, &v) in u.iter().enumerate() {
            let x = f.ml + (b as f64 + 0.5) / bins as f64 * (f.w - f.ml - f.mr);
            pts.push_str(&format!("{x:.2},{:.2} ", base - v * (row_h - 10.0)));
        }
        pts.push_str(&format!("{:.2},{base:.2}", f.w - f.mr));
        out.push_str(&format!(
            "<polygon points=\"{pts}\" fill=\"{}66\" stroke=\"{}\"/>",
            color(gi),
            color(gi)
        ));
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{:.2}\" class=\"lane\" text-anchor=\"end\">{}</text>",
            f.ml - 6.0,
            base - 2.0,
            html_escape(name)
        ));
    }
    let b = h - 18.0;
    out.push_str(&format!(
        "<path d=\"M{} {b} L{} {b}\" stroke=\"#999\"/>\
         <text x=\"{}\" y=\"{}\" class=\"tick\">{}</text>\
         <text x=\"{}\" y=\"{}\" class=\"tick\" text-anchor=\"end\">{} s</text>",
        f.ml,
        f.w - f.mr,
        f.ml,
        b + 13.0,
        format_num(t0),
        f.w - f.mr,
        b + 13.0,
        format_num(t1),
    ));
    out.push_str(
        "</svg><figcaption>fraction of each group's workers busy over time \
         (ridgeline height = 100%)</figcaption></figure>\n",
    );
}

fn critical_path_tables(sim: &SimDiagnosis, out: &mut String) {
    let cp = &sim.critical_path;
    out.push_str("<h3>Critical path</h3>\n");
    let pct = |x: f64| format!("{:.1}%", 100.0 * x / cp.total().max(f64::MIN_POSITIVE));
    out.push_str(&format!(
        "<p>{} tasks on the path spanning <b>{} s</b> \
         (makespan {} s): execution {} s ({}), wait {} s ({}).",
        cp.steps.len(),
        format_num(cp.total()),
        format_num(cp.makespan),
        format_num(cp.exec_time),
        pct(cp.exec_time),
        format_num(cp.wait_time),
        pct(cp.wait_time),
    ));
    if let Some(g) = sim.bounding_group_label() {
        out.push_str(&format!(
            " The <b>{}</b> group carries the most path execution time — it bounds this run.",
            html_escape(g)
        ));
    }
    out.push_str("</p>\n<table>\n<tr><th>phase</th><th>time on path (s)</th><th>share</th></tr>\n");
    for (phase, secs) in cp.per_phase() {
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td></tr>\n",
            html_escape(&sim.phase_name(phase)),
            format_num(secs),
            pct(secs)
        ));
    }
    out.push_str("</table>\n");
}

fn idle_row(out: &mut String, label: &str, b: &crate::idle::IdleBreakdown) {
    let total = b.total_s().max(f64::MIN_POSITIVE);
    out.push_str(&format!(
        "<tr><td>{}</td><td>{}</td><td>{}</td><td>{} ({:.1}%)</td><td>{} ({:.1}%)</td>\
         <td>{} ({:.1}%)</td><td>{} ({:.1}%)</td></tr>\n",
        html_escape(label),
        b.workers,
        format_num(total),
        format_num(b.busy_s),
        100.0 * b.busy_s / total,
        format_num(b.dependency_s),
        100.0 * b.dependency_s / total,
        format_num(b.transfer_s),
        100.0 * b.transfer_s / total,
        format_num(b.no_ready_work_s),
        100.0 * b.no_ready_work_s / total,
    ));
}

fn idle_tables(sim: &SimDiagnosis, out: &mut String) {
    out.push_str(
        "<h3>Idle-bubble classification</h3>\n\
         <p class=\"meta\">every idle worker-second lands in exactly one bucket; rows sum to \
         workers &times; window.</p>\n\
         <table>\n<tr><th>group</th><th>workers</th><th>total (s)</th><th>busy</th>\
         <th>dependency wait</th><th>transfer wait</th><th>no ready work</th></tr>\n",
    );
    idle_row(out, "all", &sim.idle);
    for ((name, _, _), b) in sim.groups.iter().zip(&sim.group_idle) {
        idle_row(out, name, b);
    }
    out.push_str("</table>\n");
}

// ------------------------------------------------- health & history

/// Trailing-window length of the report-side health fold (iterations).
const HEALTH_WINDOW: usize = 8;
/// Iterations without a new best duration before a run reads as stalled.
const HEALTH_STALL_AFTER: usize = 12;
/// Windowed retries that count as fault pressure on their own.
const HEALTH_RETRY_BUDGET: usize = 3;

/// Fold one strategy's records into a per-iteration health state.
///
/// A deliberately light mirror of the live session's rule engine
/// (`adaphet-core`'s `HealthTracker`): telemetry does not carry the
/// tracker's posterior/LP signals, so the report re-derives the fold
/// from what the JSONL does record — faults and retries over a trailing
/// window, iterations since the best observed duration, and the regret
/// trend. Spellings match the wire states (`ok`/`warn`/`stalled`/
/// `diverging`) so the timeline reads like `get_health` output.
fn health_states(records: &[IterationRecord]) -> Vec<&'static str> {
    let mut states = Vec::with_capacity(records.len());
    let mut best = f64::INFINITY;
    let mut since_best = 0usize;
    for (i, r) in records.iter().enumerate() {
        if r.duration.is_finite() && r.duration < best {
            best = r.duration;
            since_best = 0;
        } else {
            since_best += 1;
        }
        let window = &records[i.saturating_sub(HEALTH_WINDOW - 1)..=i];
        let faults = window.iter().filter(|w| w.fault.is_some()).count();
        let retries: usize = window.iter().map(|w| w.retries).sum();
        let state = if since_best >= HEALTH_WINDOW && regret_slope(window) > 0.0 {
            "diverging"
        } else if faults > 0 || retries >= HEALTH_RETRY_BUDGET {
            "warn"
        } else if since_best >= HEALTH_STALL_AFTER {
            "stalled"
        } else {
            "ok"
        };
        states.push(state);
    }
    states
}

/// Least-squares slope of the finite regrets in `window`, per iteration.
/// Returns 0 when fewer than four points carry a finite regret.
fn regret_slope(window: &[IterationRecord]) -> f64 {
    let pts: Vec<(f64, f64)> = window
        .iter()
        .filter_map(|r| r.regret.filter(|g| g.is_finite()).map(|g| (r.iteration as f64, g)))
        .collect();
    if pts.len() < 4 {
        return 0.0;
    }
    let n = pts.len() as f64;
    let (sx, sy): (f64, f64) = pts.iter().fold((0.0, 0.0), |(a, b), (x, y)| (a + x, b + y));
    let (mx, my) = (sx / n, sy / n);
    let sxx: f64 = pts.iter().map(|(x, _)| (x - mx) * (x - mx)).sum();
    if sxx == 0.0 {
        return 0.0;
    }
    pts.iter().map(|(x, y)| (x - mx) * (y - my)).sum::<f64>() / sxx
}

fn health_color(state: &str) -> &'static str {
    match state {
        "warn" => "#ee854a",
        "stalled" => "#d65f5f",
        "diverging" => "#b47cc7",
        _ => "#6acc65",
    }
}

/// Per-strategy health-state strips on the same iteration axis as the
/// duration chart, with dashed markers where the folded state changes.
fn health_timeline_section(report: &Report, out: &mut String) {
    let max_iter =
        report.telemetry.runs.iter().flat_map(|run| run.records.iter()).map(|r| r.iteration).max();
    let Some(max_iter) = max_iter else {
        return;
    };
    out.push_str("<h2>Convergence health timeline</h2>\n");
    out.push_str(
        "<p class=\"meta\">states re-derived from telemetry (faults and retries over a \
         trailing window, iterations since best, regret trend) — a report-side mirror of the \
         daemon's live <code>get_health</code> fold.</p>\n",
    );
    let entries: Vec<(String, &str)> = ["ok", "warn", "stalled", "diverging"]
        .iter()
        .map(|s| (s.to_string(), health_color(s)))
        .collect();
    out.push_str(&legend(&entries));
    for run in &report.telemetry.runs {
        let states = health_states(&run.records);
        if states.is_empty() {
            continue;
        }
        let mut f = Frame::new(640.0, 64.0, 0.0, (max_iter + 1) as f64, 0.0, 1.0);
        f.mt = 18.0;
        let (top, bottom) = (f.py(1.0), f.py(0.0));
        out.push_str(&format!("<h3>{}</h3>\n<figure>", html_escape(&run.name)));
        out.push_str(&f.open());
        for (i, r) in run.records.iter().enumerate() {
            let x0 = f.px(r.iteration as f64);
            let next = run.records.get(i + 1).map_or((max_iter + 1) as f64, |n| n.iteration as f64);
            let x1 = f.px(next.min(f.x1));
            out.push_str(&format!(
                "<rect x=\"{x0:.2}\" y=\"{top:.2}\" width=\"{:.2}\" height=\"{:.2}\" \
                 fill=\"{}\"/>",
                (x1 - x0).max(0.5),
                bottom - top,
                health_color(states[i]),
            ));
        }
        let mut transitions = Vec::new();
        for i in 1..states.len() {
            if states[i] != states[i - 1] {
                let x = f.px(run.records[i].iteration as f64);
                out.push_str(&format!(
                    "<line x1=\"{x:.2}\" y1=\"{top:.2}\" x2=\"{x:.2}\" y2=\"{bottom:.2}\" \
                     stroke=\"#222\" stroke-dasharray=\"2 2\"/>\
                     <text x=\"{x:.2}\" y=\"{:.2}\" class=\"tick\" \
                     text-anchor=\"middle\">{}</text>",
                    top - 4.0,
                    states[i],
                ));
                transitions.push(format!(
                    "{} &rarr; {} @ {}",
                    states[i - 1],
                    states[i],
                    run.records[i].iteration
                ));
            }
        }
        out.push_str(&format!(
            "<text x=\"{:.2}\" y=\"{:.2}\" class=\"tick\">0</text>\
             <text x=\"{:.2}\" y=\"{:.2}\" class=\"tick\" text-anchor=\"end\">{max_iter}</text>",
            f.ml,
            bottom + 14.0,
            f.w - f.mr,
            bottom + 14.0,
        ));
        out.push_str("</svg>");
        if transitions.is_empty() {
            out.push_str(&format!(
                "<figcaption>state steady at <b>{}</b> for {} iterations</figcaption>",
                states[0],
                states.len()
            ));
        } else {
            out.push_str(&format!(
                "<figcaption>transitions: {}</figcaption>",
                transitions.join("; ")
            ));
        }
        out.push_str("</figure>\n");
    }
}

/// Maximum metric-history panels drawn before the section elides.
const HISTORY_PANEL_CAP: usize = 12;

/// Extract `(name, points)` rows from a `/metrics/history` document.
/// Series with fewer than two finite points carry no line and are
/// dropped; order follows the document.
fn parse_history_series(doc: &Json) -> Vec<(String, Vec<(f64, f64)>)> {
    let Some(Json::Arr(items)) = doc.get("series") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for item in items {
        let Some(Json::Str(name)) = item.get("name") else {
            continue;
        };
        let Some(Json::Arr(points)) = item.get("points") else {
            continue;
        };
        let pts: Vec<(f64, f64)> = points
            .iter()
            .filter_map(|p| {
                let Json::Arr(tv) = p else {
                    return None;
                };
                let t = tv.first().and_then(Json::as_f64)?;
                let v = tv.get(1).and_then(Json::as_f64)?;
                (t.is_finite() && v.is_finite()).then_some((t, v))
            })
            .collect();
        if pts.len() >= 2 {
            out.push((name.clone(), pts));
        }
    }
    out
}

/// Small-multiple panels of the daemon's sampled metric history — the
/// historical-dashboard counterpart of the live sparklines in
/// `adaphet-top`. One panel per series over the full retained window.
fn history_section(report: &Report, out: &mut String) {
    let Some(doc) = &report.history else {
        return;
    };
    let series = parse_history_series(doc);
    if series.is_empty() {
        return;
    }
    out.push_str("<h2>Metric history</h2>\n");
    out.push_str(
        "<p class=\"meta\">sampled by the daemon's embedded time-series store \
         (<code>GET /metrics/history</code>); time is seconds since the store epoch.</p>\n<div>",
    );
    for (idx, (name, pts)) in series.iter().take(HISTORY_PANEL_CAP).enumerate() {
        let (t0, t1) = (pts[0].0, pts[pts.len() - 1].0);
        let (lo, hi) = pts
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &(_, v)| (a.min(v), b.max(v)));
        let f = Frame::new(300.0, 110.0, t0, t1, lo.min(0.0), hi);
        out.push_str("<figure class=\"small\">");
        out.push_str(&f.open());
        out.push_str(&f.axes("t (s)", ""));
        let line: Vec<(f64, f64)> = pts.iter().map(|&(t, v)| (f.px(t), f.py(v))).collect();
        out.push_str(&polyline(&line, color(idx), ""));
        out.push_str("</svg>");
        out.push_str(&format!(
            "<figcaption><code>{}</code></figcaption></figure>",
            html_escape(name)
        ));
    }
    out.push_str("</div>\n");
    if series.len() > HISTORY_PANEL_CAP {
        out.push_str(&format!(
            "<p class=\"meta\">{} further series retained but not drawn.</p>\n",
            series.len() - HISTORY_PANEL_CAP
        ));
    }
}

fn metrics_section(report: &Report, out: &mut String) {
    let rows = report.metrics_rows();
    if rows.is_empty() {
        return;
    }
    out.push_str("<h2>Runtime metrics</h2>\n<table>\n<tr><th>metric</th><th>value</th></tr>\n");
    for (k, v) in rows {
        out.push_str(&format!(
            "<tr><td><code>{}</code></td><td>{}</td></tr>\n",
            html_escape(&k),
            html_escape(&v)
        ));
    }
    out.push_str("</table>\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical_path::CriticalPath;
    use crate::idle::IdleBreakdown;
    use crate::jsonl::TelemetryRun;
    use adaphet_runtime::{ClassId, NodeId, TaskId, TraceEvent};

    fn sample_report() -> Report {
        let jsonl = "\
{\"iteration\":0,\"strategy\":\"GP <disc>\",\"action\":4,\"duration\":3.5,\"cumulative_time\":3.5,\"best_known\":2,\"regret\":1.5,\"phases\":[],\"posterior\":[],\"excluded\":[],\"note\":\"\",\"phase_breakdown\":null,\"retries\":0,\"fault\":null,\"snapshot\":null}\n\
{\"iteration\":1,\"strategy\":\"GP <disc>\",\"action\":6,\"duration\":2.5,\"cumulative_time\":6,\"best_known\":2,\"regret\":0.5,\"phases\":[],\"posterior\":[],\"excluded\":[2],\"note\":\"\",\"phase_breakdown\":null,\"retries\":1,\"fault\":\"node-death:rank=3\",\"snapshot\":{\"points\":[\
{\"action\":2,\"mean\":4,\"sd\":1,\"lp_bound\":3,\"excluded\":true},\
{\"action\":4,\"mean\":3.5,\"sd\":0.5,\"lp_bound\":2,\"excluded\":false},\
{\"action\":6,\"mean\":2.5,\"sd\":0.25,\"lp_bound\":1.5,\"excluded\":false}]}}\n";
        let telemetry = TelemetryRun::parse(jsonl).unwrap();

        let mut trace = Trace::new();
        let ev = |task, node, phase, start: f64, end: f64| TraceEvent {
            task: TaskId(task),
            class: ClassId(phase as usize),
            phase,
            node: NodeId(node),
            resource: ResourceKind::CpuCore(0),
            start,
            end,
        };
        trace.push(ev(0, 0, 0, 0.0, 1.0));
        trace.push(ev(1, 1, 1, 1.0, 3.0));
        trace.record_deps(TaskId(1), &[TaskId(0)]);
        let critical_path = CriticalPath::extract(&trace).unwrap();
        let idle = IdleBreakdown::classify(&trace, 0.0, 3.0);
        let sim = SimDiagnosis {
            scenario: "a".into(),
            action: 6,
            makespan: 3.0,
            phase_names: vec!["generation".into(), "factorization".into()],
            groups: vec![("chifflot:1-1".into(), 1, 1), ("gemini:2-2".into(), 2, 2)],
            group_idle: vec![
                IdleBreakdown::classify_group(&trace, 0.0, 3.0, 1, 1),
                IdleBreakdown::classify_group(&trace, 0.0, 3.0, 2, 2),
            ],
            trace,
            critical_path,
            idle,
        };
        Report {
            title: "adaphet run report <test>".into(),
            source: "fig6.jsonl".into(),
            telemetry,
            sim: Some(sim),
            metrics: Some(crate::jsonl::Json::parse(r#"{"wall_s":1.5}"#).unwrap()),
            history: Some(
                crate::jsonl::Json::parse(
                    r#"{"version":1,"epoch_s":0,"series":[
                        {"name":"service.request","points":[[0,1],[5,3],[10,7]],"coarse":[]},
                        {"name":"service.sessions.live","points":[[0,1],[10,1]],"coarse":[]},
                        {"name":"too.short","points":[[0,1]],"coarse":[]}]}"#,
                )
                .unwrap(),
            ),
        }
    }

    #[test]
    fn report_is_self_contained_and_escaped() {
        let html = render_html(&sample_report());
        assert!(html.starts_with("<!doctype html>"));
        assert!(!html.contains("<script"), "no JavaScript");
        // The only URL-looking string allowed is the SVG namespace URI.
        assert_eq!(
            html.matches("http://").count(),
            html.matches("http://www.w3.org/2000/svg").count(),
            "no external fetches beyond the SVG namespace"
        );
        assert!(!html.contains("https://"), "no external fetches");
        assert!(html.contains("GP &lt;disc&gt;"), "strategy names escaped");
        assert!(html.contains("adaphet run report &lt;test&gt;"));
    }

    #[test]
    fn all_sections_render() {
        let html = render_html(&sample_report());
        for needle in [
            "Strategy summary",
            "Iteration durations",
            "GP posterior evolution",
            "Gantt",
            "Utilization by group",
            "Critical path",
            "Idle-bubble classification",
            "Runtime metrics",
            "<svg",
            "node-death", // not literally — fault marker count instead
        ] {
            if needle == "node-death" {
                continue;
            }
            assert!(html.contains(needle), "missing section: {needle}");
        }
        // Fault marker and excluded hollow circle made it into the SVG.
        assert!(html.contains("&#215;"), "fault marker");
        assert!(html.contains("fill=\"none\""), "hollow excluded point");
        // Critical-path totals are reported.
        assert!(html.contains("factorization"));
    }

    #[test]
    fn empty_telemetry_still_produces_a_document() {
        let r = Report {
            title: "empty".into(),
            source: "-".into(),
            telemetry: TelemetryRun::default(),
            sim: None,
            metrics: None,
            history: None,
        };
        let html = render_html(&r);
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.ends_with("</html>\n"));
    }

    #[test]
    fn health_timeline_and_history_sections_render() {
        let html = render_html(&sample_report());
        assert!(html.contains("Convergence health timeline"));
        // Iteration 1 carries a fault → the fold leaves ok for warn.
        assert!(html.contains("ok &rarr; warn @ 1"), "transition recorded in the caption");
        assert!(html.contains(&format!("fill=\"{}\"", health_color("warn"))));
        assert!(html.contains("Metric history"));
        assert!(html.contains("service.request"));
        // A one-point series draws no line and therefore no panel.
        assert!(!html.contains("too.short"));
    }

    #[test]
    fn health_fold_mirrors_the_live_states() {
        let mut jsonl = String::new();
        for i in 0..20usize {
            // Improving once, then flat: iterations 13.. are ≥12 past best.
            let d = if i == 1 { 1.0 } else { 5.0 };
            jsonl.push_str(&format!(
                "{{\"iteration\":{i},\"strategy\":\"s\",\"action\":4,\"duration\":{d},\
                 \"cumulative_time\":1,\"retries\":0,\"fault\":null,\"snapshot\":null}}\n"
            ));
        }
        let run = TelemetryRun::parse(&jsonl).unwrap();
        let states = health_states(&run.runs[0].records);
        assert_eq!(states[1], "ok");
        assert_eq!(states[12], "ok", "11 since best: still ok");
        assert_eq!(states[13], "stalled", "12 since best: stalled");
        assert_eq!(*states.last().unwrap(), "stalled");
    }

    #[test]
    fn regret_slope_needs_four_finite_points() {
        let rec = |i: usize, g: Option<f64>| IterationRecord {
            iteration: i,
            strategy: "s".into(),
            action: 1,
            duration: 1.0,
            cumulative_time: 1.0,
            best_known: None,
            regret: g,
            phases: vec![],
            note: String::new(),
            excluded: vec![],
            breakdown_phases: vec![],
            breakdown_groups: vec![],
            retries: 0,
            fault: None,
            snapshot: None,
        };
        let short: Vec<_> = (0..3).map(|i| rec(i, Some(i as f64))).collect();
        assert_eq!(regret_slope(&short), 0.0);
        let rising: Vec<_> = (0..6).map(|i| rec(i, Some(i as f64 * 2.0))).collect();
        assert!(regret_slope(&rising) > 1.9);
        let falling: Vec<_> = (0..6).map(|i| rec(i, Some(10.0 - i as f64))).collect();
        assert!(regret_slope(&falling) < 0.0);
    }

    #[test]
    fn group_utilization_bins_are_bounded() {
        let mut t = Trace::new();
        t.push(TraceEvent {
            task: TaskId(0),
            class: ClassId(0),
            phase: 0,
            node: NodeId(0),
            resource: ResourceKind::CpuCore(0),
            start: 0.0,
            end: 2.0,
        });
        let u = group_utilization(&t, 1, 1, 0.0, 4.0, 4);
        assert_eq!(u, vec![1.0, 1.0, 0.0, 0.0]);
        let none = group_utilization(&t, 2, 2, 0.0, 4.0, 4);
        assert_eq!(none, vec![0.0; 4]);
    }

    #[test]
    fn pick_spread_keeps_ends() {
        let items: Vec<usize> = (0..20).collect();
        let refs: Vec<&usize> = items.iter().collect();
        let picked = pick_spread(&refs, 6);
        assert_eq!(picked.len(), 6);
        assert_eq!(*picked[0], 0);
        assert_eq!(*picked[5], 19);
    }
}
