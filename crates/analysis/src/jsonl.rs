//! Minimal JSON/JSONL parsing for the telemetry schema.
//!
//! The workspace hand-rolls its JSON *emitters* (no serde in the offline
//! build), so the report side hand-rolls the matching *parser*: a small
//! recursive-descent JSON reader plus typed extraction of the
//! `IterationEvent` JSONL schema pinned by `tests/telemetry_schema.rs`.
//! Unknown keys are ignored, so the parser reads both the current 15-key
//! schema and the older 14-key prefix.

use std::collections::HashMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value (`None` for `null` and non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Numeric value truncated to usize.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_f64().map(|x| x as usize)
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the full UTF-8 character, not just one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// One posterior point of a telemetry `snapshot`.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotPoint {
    /// Action (node count).
    pub action: usize,
    /// Posterior mean (`None` when the emitter wrote `null` for NaN).
    pub mean: Option<f64>,
    /// Posterior standard deviation.
    pub sd: Option<f64>,
    /// LP lower bound at the action, if the space carries one.
    pub lp_bound: Option<f64>,
    /// Whether the bound mechanism excluded the action.
    pub excluded: bool,
}

/// One parsed `IterationEvent` JSONL line.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// 0-based iteration index.
    pub iteration: usize,
    /// Strategy name.
    pub strategy: String,
    /// Chosen action.
    pub action: usize,
    /// Measured duration (s); `NaN` when the emitter wrote `null`.
    pub duration: f64,
    /// Cumulative time (s).
    pub cumulative_time: f64,
    /// Best-known duration, when the driver was configured with one.
    pub best_known: Option<f64>,
    /// Instantaneous regret.
    pub regret: Option<f64>,
    /// Per-phase busy-time breakdown `(name, seconds)`.
    pub phases: Vec<(String, f64)>,
    /// Decision-trace note (empty when tracing was off).
    pub note: String,
    /// Actions excluded by the bound mechanism.
    pub excluded: Vec<usize>,
    /// Wall-clock phase slices from a profiled iteration.
    pub breakdown_phases: Vec<(String, f64)>,
    /// Per-group `(name, busy_s, idle_s)` from a profiled iteration.
    pub breakdown_groups: Vec<(String, f64, f64)>,
    /// Resilience retries this iteration.
    pub retries: usize,
    /// Fault annotation, if any.
    pub fault: Option<String>,
    /// Full posterior snapshot, if the strategy produced one.
    pub snapshot: Option<Vec<SnapshotPoint>>,
}

/// All iterations of one strategy in a telemetry file.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyRun {
    /// Strategy name as emitted.
    pub name: String,
    /// Records in file order.
    pub records: Vec<IterationRecord>,
}

/// A parsed telemetry file: one [`StrategyRun`] per strategy, in
/// first-appearance order (fig6 `--telemetry` appends every strategy's
/// replay into a single file).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryRun {
    /// Per-strategy runs.
    pub runs: Vec<StrategyRun>,
}

impl TelemetryRun {
    /// Parse a JSONL telemetry document (one event per non-empty line).
    pub fn parse(text: &str) -> Result<TelemetryRun, String> {
        let mut runs: Vec<StrategyRun> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = Json::parse(line).map_err(|e| format!("line {}: {e}", ln + 1))?;
            let rec = parse_record(&v).map_err(|e| format!("line {}: {e}", ln + 1))?;
            let at = *index.entry(rec.strategy.clone()).or_insert_with(|| {
                runs.push(StrategyRun { name: rec.strategy.clone(), records: Vec::new() });
                runs.len() - 1
            });
            runs[at].records.push(rec);
        }
        Ok(TelemetryRun { runs })
    }

    /// Total number of records across all strategies.
    pub fn len(&self) -> usize {
        self.runs.iter().map(|r| r.records.len()).sum()
    }

    /// Whether the file contained no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `(strategy, action, duration)` of the fastest iteration in the
    /// file — the natural choice to re-simulate for diagnosis.
    pub fn best_observed(&self) -> Option<(&str, usize, f64)> {
        self.runs
            .iter()
            .flat_map(|r| r.records.iter().map(move |rec| (r.name.as_str(), rec)))
            .filter(|(_, rec)| rec.duration.is_finite())
            .min_by(|a, b| {
                a.1.duration.partial_cmp(&b.1.duration).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(name, rec)| (name, rec.action, rec.duration))
    }
}

fn f64_or_nan(v: Option<&Json>) -> f64 {
    v.and_then(Json::as_f64).unwrap_or(f64::NAN)
}

fn opt_f64(v: Option<&Json>) -> Option<f64> {
    v.and_then(Json::as_f64)
}

fn named_seconds(v: Option<&Json>) -> Vec<(String, f64)> {
    v.and_then(Json::as_arr)
        .map(|items| {
            items
                .iter()
                .filter_map(|p| {
                    Some((
                        p.get("name")?.as_str()?.to_string(),
                        p.get("seconds").and_then(Json::as_f64)?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn parse_record(v: &Json) -> Result<IterationRecord, String> {
    let iteration = v.get("iteration").and_then(Json::as_usize).ok_or("missing 'iteration'")?;
    let strategy =
        v.get("strategy").and_then(Json::as_str).ok_or("missing 'strategy'")?.to_string();
    let action = v.get("action").and_then(Json::as_usize).ok_or("missing 'action'")?;
    let snapshot = match v.get("snapshot") {
        None | Some(Json::Null) => None,
        Some(snap) => Some(
            snap.get("points")
                .and_then(Json::as_arr)
                .ok_or("snapshot without 'points'")?
                .iter()
                .map(|p| {
                    Ok(SnapshotPoint {
                        action: p.get("action").and_then(Json::as_usize).ok_or("point action")?,
                        mean: opt_f64(p.get("mean")),
                        sd: opt_f64(p.get("sd")),
                        lp_bound: opt_f64(p.get("lp_bound")),
                        excluded: p.get("excluded").and_then(Json::as_bool).unwrap_or(false),
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
        ),
    };
    let breakdown = v.get("phase_breakdown");
    Ok(IterationRecord {
        iteration,
        strategy,
        action,
        duration: f64_or_nan(v.get("duration")),
        cumulative_time: f64_or_nan(v.get("cumulative_time")),
        best_known: opt_f64(v.get("best_known")),
        regret: opt_f64(v.get("regret")),
        phases: named_seconds(v.get("phases")),
        note: v.get("note").and_then(Json::as_str).unwrap_or("").to_string(),
        excluded: v
            .get("excluded")
            .and_then(Json::as_arr)
            .map(|a| a.iter().filter_map(Json::as_usize).collect())
            .unwrap_or_default(),
        breakdown_phases: named_seconds(breakdown.and_then(|b| b.get("phases"))),
        breakdown_groups: breakdown
            .and_then(|b| b.get("groups"))
            .and_then(Json::as_arr)
            .map(|items| {
                items
                    .iter()
                    .filter_map(|g| {
                        Some((
                            g.get("name")?.as_str()?.to_string(),
                            g.get("busy_s").and_then(Json::as_f64)?,
                            g.get("idle_s").and_then(Json::as_f64)?,
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default(),
        retries: v.get("retries").and_then(Json::as_usize).unwrap_or(0),
        fault: v.get("fault").and_then(Json::as_str).map(str::to_string),
        snapshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_strings_and_nesting() {
        let v = Json::parse(r#"{"a":1.5,"b":[true,null,"x\"y\\z"],"c":{"d":-2e3}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.5));
        let b = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(b[0].as_bool(), Some(true));
        assert_eq!(b[1], Json::Null);
        assert_eq!(b[2].as_str(), Some("x\"y\\z"));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(-2000.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}x").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Json::parse(r#""café""#).unwrap();
        assert_eq!(v.as_str(), Some("café"));
    }

    /// A line exactly as `IterationEvent::to_json` emits it (the golden
    /// schema of tests/telemetry_schema.rs).
    const LINE: &str = "{\"iteration\":3,\"strategy\":\"GP-discontinuous\",\"action\":7,\
        \"duration\":1.5,\"cumulative_time\":12.25,\"best_known\":1.25,\
        \"regret\":0.25,\"phases\":[{\"name\":\"factorization\",\"seconds\":1}],\
        \"posterior\":[{\"action\":7,\"mean\":1.5,\"sd\":0.125,\"acquisition\":1.25}],\
        \"excluded\":[1,2],\"note\":\"gp-lcb\",\"phase_breakdown\":{\"phases\":[\
        {\"name\":\"generation\",\"seconds\":0.25}],\"groups\":[{\"name\":\"chifflot:1-2\",\
        \"busy_s\":3,\"idle_s\":1,\"utilization\":0.75}]},\"retries\":1,\
        \"fault\":\"node-death:rank=5\",\"snapshot\":{\"points\":[\
        {\"action\":1,\"mean\":8.5,\"sd\":0.5,\"lp_bound\":10,\"excluded\":true}]}}";

    #[test]
    fn telemetry_records_round_trip_from_the_pinned_schema() {
        let run = TelemetryRun::parse(&format!("{LINE}\n")).unwrap();
        assert_eq!(run.runs.len(), 1);
        let rec = &run.runs[0].records[0];
        assert_eq!(rec.iteration, 3);
        assert_eq!(rec.action, 7);
        assert_eq!(rec.best_known, Some(1.25));
        assert_eq!(rec.phases, vec![("factorization".to_string(), 1.0)]);
        assert_eq!(rec.excluded, vec![1, 2]);
        assert_eq!(rec.note, "gp-lcb");
        assert_eq!(rec.breakdown_phases, vec![("generation".to_string(), 0.25)]);
        assert_eq!(rec.breakdown_groups, vec![("chifflot:1-2".to_string(), 3.0, 1.0)]);
        assert_eq!(rec.retries, 1);
        assert_eq!(rec.fault.as_deref(), Some("node-death:rank=5"));
        let snap = rec.snapshot.as_ref().unwrap();
        assert_eq!(
            snap[0],
            SnapshotPoint {
                action: 1,
                mean: Some(8.5),
                sd: Some(0.5),
                lp_bound: Some(10.0),
                excluded: true
            }
        );
    }

    #[test]
    fn strategies_group_in_first_appearance_order() {
        let a = LINE;
        let b = LINE.replace("GP-discontinuous", "UCB");
        let text = format!("{a}\n{b}\n{a}\n");
        let run = TelemetryRun::parse(&text).unwrap();
        assert_eq!(run.runs.len(), 2);
        assert_eq!(run.runs[0].name, "GP-discontinuous");
        assert_eq!(run.runs[0].records.len(), 2);
        assert_eq!(run.runs[1].name, "UCB");
        assert_eq!(run.len(), 3);
        let (name, action, dur) = run.best_observed().unwrap();
        assert_eq!((name, action, dur), ("GP-discontinuous", 7, 1.5));
    }

    #[test]
    fn null_snapshot_and_missing_fields_degrade_gracefully() {
        let line = "{\"iteration\":0,\"strategy\":\"UCB\",\"action\":1,\"duration\":null,\
             \"snapshot\":null}";
        let run = TelemetryRun::parse(line).unwrap();
        let rec = &run.runs[0].records[0];
        assert!(rec.duration.is_nan());
        assert!(rec.snapshot.is_none());
        assert!(rec.phases.is_empty());
        assert_eq!(rec.retries, 0);
    }
}
