//! Idle-bubble classification per worker gap (paper Fig. 1 discussion).
//!
//! Every second a worker spends idle inside the analysis window lands in
//! exactly one bucket:
//!
//! * **dependency** — some task destined for this node existed but its
//!   predecessors had not finished yet (`ready` lies in the future);
//! * **transfer** — a node-local task had all dependencies met but was
//!   still waiting for its inputs to arrive over the network (the
//!   `[ready, runnable)` window recorded by the runtime's flownet);
//! * **no-ready-work** — nothing was pending for this node at all: the
//!   DAG simply offers no concurrency here (tail of a phase, or a task
//!   that is runnable but committed to the node's *other* resource — the
//!   scheduler's choice, not a data stall).
//!
//! Gaps are split at the `ready`/`runnable` breakpoints of node-local
//! tasks and each sub-interval is classified by its midpoint, so the
//! buckets partition worker idle time by construction: `busy + dependency
//! + transfer + no_ready_work = workers × window` exactly.

use adaphet_runtime::{NodeId, ResourceKind, Trace};
use std::collections::HashMap;

/// Why a worker was idle during one classified interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleCause {
    /// Waiting for a predecessor task to finish.
    Dependency,
    /// Waiting for input data to cross the network.
    Transfer,
    /// No pending work for this node.
    NoReadyWork,
}

/// Aggregated busy/idle accounting of a set of workers over a window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IdleBreakdown {
    /// Seconds of task execution, summed over workers.
    pub busy_s: f64,
    /// Idle seconds classified as waiting on a dependency.
    pub dependency_s: f64,
    /// Idle seconds classified as waiting on a network transfer.
    pub transfer_s: f64,
    /// Idle seconds with no pending node-local work.
    pub no_ready_work_s: f64,
    /// Number of workers (distinct `(node, resource)` pairs) accounted.
    pub workers: usize,
}

impl IdleBreakdown {
    /// Total idle seconds across the three buckets.
    pub fn idle_s(&self) -> f64 {
        self.dependency_s + self.transfer_s + self.no_ready_work_s
    }

    /// Total accounted seconds: `busy + idle`. Equals `workers × window`
    /// up to floating-point rounding — the 100%-accounting invariant.
    pub fn total_s(&self) -> f64 {
        self.busy_s + self.idle_s()
    }

    /// Classify every worker gap of `trace` over `[t0, t1]`.
    ///
    /// Workers are the distinct `(node, resource)` pairs that executed at
    /// least one traced task — a worker that stayed empty the whole run
    /// never appears in the trace and is not accounted.
    pub fn classify(trace: &Trace, t0: f64, t1: f64) -> IdleBreakdown {
        Self::classify_nodes(trace, t0, t1, |_| true)
    }

    /// [`IdleBreakdown::classify`] restricted to nodes with 1-based rank
    /// in `lo..=hi` (the shape of `Platform::homogeneous_groups` ranges).
    pub fn classify_group(trace: &Trace, t0: f64, t1: f64, lo: usize, hi: usize) -> IdleBreakdown {
        Self::classify_nodes(trace, t0, t1, |node| (lo..=hi).contains(&(node.0 + 1)))
    }

    fn classify_nodes(
        trace: &Trace,
        t0: f64,
        t1: f64,
        keep: impl Fn(NodeId) -> bool,
    ) -> IdleBreakdown {
        let mut out = IdleBreakdown::default();
        // NaN-safe window check: anything but a strictly increasing
        // finite-ish window yields the empty breakdown.
        if !matches!(t1.partial_cmp(&t0), Some(std::cmp::Ordering::Greater)) {
            return out;
        }
        // Per-node lifecycle windows of every traced task: (ready,
        // runnable, start). Missing timestamps degrade conservatively
        // (ready defaults to the start: the task never shows as blocked).
        let mut node_tasks: HashMap<usize, Vec<(f64, f64, f64)>> = HashMap::new();
        for e in trace.events() {
            let (ready, runnable) = match trace.meta(e.task) {
                Some(m) => (m.ready.unwrap_or(e.start), m.runnable.unwrap_or(e.start)),
                None => (e.start, e.start),
            };
            node_tasks.entry(e.node.0).or_default().push((ready, runnable, e.start));
        }
        // Per-worker busy intervals.
        let mut workers: HashMap<(usize, ResourceKind), Vec<(f64, f64)>> = HashMap::new();
        for e in trace.events() {
            if !keep(e.node) {
                continue;
            }
            workers.entry((e.node.0, e.resource)).or_default().push((e.start, e.end));
        }
        out.workers = workers.len();
        let empty = Vec::new();
        for ((node, _), mut busy) in workers {
            busy.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let tasks = node_tasks.get(&node).unwrap_or(&empty);
            let mut cursor = t0;
            for &(s, e) in &busy {
                let (s, e) = (s.clamp(t0, t1), e.min(t1));
                if s > cursor {
                    classify_gap(tasks, cursor, s, &mut out);
                }
                if e > cursor.max(s) {
                    out.busy_s += e - cursor.max(s);
                }
                cursor = cursor.max(e);
            }
            if t1 > cursor {
                classify_gap(tasks, cursor, t1, &mut out);
            }
        }
        out
    }
}

/// Split `[lo, hi)` at the ready/runnable breakpoints of the node's tasks
/// and classify each piece by its midpoint.
fn classify_gap(tasks: &[(f64, f64, f64)], lo: f64, hi: f64, out: &mut IdleBreakdown) {
    let mut cuts: Vec<f64> = vec![lo, hi];
    for &(ready, runnable, _) in tasks {
        for t in [ready, runnable] {
            if t > lo && t < hi {
                cuts.push(t);
            }
        }
    }
    cuts.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b <= a {
            continue;
        }
        let m = 0.5 * (a + b);
        let dur = b - a;
        match classify_instant(tasks, m) {
            IdleCause::Transfer => out.transfer_s += dur,
            IdleCause::Dependency => out.dependency_s += dur,
            IdleCause::NoReadyWork => out.no_ready_work_s += dur,
        }
    }
}

/// What the node was waiting on at instant `m`.
fn classify_instant(tasks: &[(f64, f64, f64)], m: f64) -> IdleCause {
    // A node-local task whose dependencies are met but whose inputs are
    // still in flight: the gap is a transfer bubble.
    if tasks.iter().any(|&(ready, runnable, _)| ready <= m && m < runnable) {
        return IdleCause::Transfer;
    }
    // A node-local task that will only become ready later: the gap is a
    // dependency bubble (its predecessors are still running elsewhere).
    if tasks.iter().any(|&(ready, _, _)| ready > m) {
        return IdleCause::Dependency;
    }
    IdleCause::NoReadyWork
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaphet_runtime::{ClassId, TaskId, TraceEvent};

    fn ev(task: usize, node: usize, res: ResourceKind, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            task: TaskId(task),
            class: ClassId(0),
            phase: 0,
            node: NodeId(node),
            resource: res,
            start,
            end,
        }
    }

    #[test]
    fn gaps_are_classified_and_account_for_the_full_window() {
        let mut t = Trace::new();
        let cpu = ResourceKind::CpuCore(0);
        // Worker: task 0 at [0,1], task 1 at [3,4]; window [0,5].
        t.push(ev(0, 0, cpu, 0.0, 1.0));
        t.push(ev(1, 0, cpu, 3.0, 4.0));
        // Task 1 became ready at 2.0 (dependency wait 1→2) and runnable
        // at 3.0 (transfer wait 2→3).
        t.record_ready(TaskId(1), 2.0);
        t.record_runnable(TaskId(1), 3.0);
        let b = IdleBreakdown::classify(&t, 0.0, 5.0);
        assert_eq!(b.workers, 1);
        assert!((b.busy_s - 2.0).abs() < 1e-12);
        assert!((b.dependency_s - 1.0).abs() < 1e-12, "{b:?}");
        assert!((b.transfer_s - 1.0).abs() < 1e-12, "{b:?}");
        assert!((b.no_ready_work_s - 1.0).abs() < 1e-12, "tail 4→5 has no pending work: {b:?}");
        assert!((b.total_s() - 5.0).abs() < 1e-12, "100% accounting");
    }

    #[test]
    fn multiple_workers_partition_independently() {
        let mut t = Trace::new();
        t.push(ev(0, 0, ResourceKind::CpuCore(0), 0.0, 2.0));
        t.push(ev(1, 0, ResourceKind::Gpu(0), 1.0, 2.0));
        t.push(ev(2, 1, ResourceKind::CpuCore(0), 0.0, 1.0));
        // GPU task 1 was ready at 0 but its input only arrived at 1.
        t.record_ready(TaskId(1), 0.0);
        t.record_runnable(TaskId(1), 1.0);
        let b = IdleBreakdown::classify(&t, 0.0, 2.0);
        assert_eq!(b.workers, 3);
        assert!((b.busy_s - 4.0).abs() < 1e-12);
        // GPU idle [0,1) is a transfer bubble; node-1 CPU idle [1,2) has
        // no pending node-1 work.
        assert!((b.transfer_s - 1.0).abs() < 1e-12, "{b:?}");
        assert!((b.no_ready_work_s - 1.0).abs() < 1e-12, "{b:?}");
        assert!((b.total_s() - 3.0 * 2.0).abs() < 1e-12, "workers × window");
    }

    #[test]
    fn group_filter_selects_node_ranks() {
        let mut t = Trace::new();
        t.push(ev(0, 0, ResourceKind::CpuCore(0), 0.0, 1.0));
        t.push(ev(1, 1, ResourceKind::CpuCore(0), 0.0, 2.0));
        let g1 = IdleBreakdown::classify_group(&t, 0.0, 2.0, 1, 1); // rank 1 = node 0
        assert_eq!(g1.workers, 1);
        assert!((g1.busy_s - 1.0).abs() < 1e-12);
        let g2 = IdleBreakdown::classify_group(&t, 0.0, 2.0, 2, 2);
        assert!((g2.busy_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_window_is_empty() {
        let mut t = Trace::new();
        t.push(ev(0, 0, ResourceKind::CpuCore(0), 0.0, 1.0));
        assert_eq!(IdleBreakdown::classify(&t, 1.0, 1.0), IdleBreakdown::default());
        assert_eq!(IdleBreakdown::classify(&t, 2.0, 1.0), IdleBreakdown::default());
    }
}
