//! Offline drop-in replacement for the subset of `parking_lot` this
//! workspace uses: `Mutex` and `RwLock` whose lock methods return guards
//! directly (no poison `Result`), implemented over `std::sync`.

/// Read guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (recovers the value from a poisoned lock).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Reader-writer lock without lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new unlocked lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_updates() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!((*a, *b), (7, 7));
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
