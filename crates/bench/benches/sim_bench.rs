//! Simulator raw speed: flownet churn, steady iterations, runtime
//! construct/teardown, and the fig-suite response-table pass that every
//! figure binary pays before any strategy replays.
//!
//! Besides the criterion-style benches, `--quick` runs a short hand-rolled
//! pass and writes `BENCH_sim.json` (median ns per op plus the all16
//! fig-suite seconds) so CI can archive the trajectory next to
//! `BENCH_gp.json`:
//!
//! ```text
//! cargo bench -p adaphet-bench --bench sim_bench -- --quick
//! ```
//!
//! When a `BENCH_sim_baseline.json` (pre-optimization run of this same
//! bench, committed at the workspace root) is readable, quick mode also
//! emits a per-row `speedup_vs_baseline` map.

use adaphet_eval::build_response;
use adaphet_runtime::{FlowNet, LinkId};
use adaphet_scenarios::{Scale, Scenario};
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Star-topology flow churn: `pairs` node pairs behind a shared backbone.
/// Each wave starts one flow per pair, then advances until roughly half
/// the flows complete — so every start/completion triggers a rebalance
/// over a well-populated link set, the simulator's hot path.
fn flownet_churn(pairs: usize, waves: usize) -> f64 {
    let mut net = FlowNet::new();
    let bb = net.add_link(50e9);
    let nics: Vec<(LinkId, LinkId)> =
        (0..pairs).map(|_| (net.add_link(10e9), net.add_link(10e9))).collect();
    let mut lcg = 0x2545_f491_4f6c_dd1du64;
    for w in 0..waves {
        for p in 0..pairs {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let bytes = 1e6 + (lcg >> 40) as f64;
            let (up, _) = nics[p];
            let (_, down) = nics[(p + w + 1) % pairs];
            net.start_flow(&[up, bb, down], bytes);
        }
        while net.active_flows() > pairs / 2 {
            let Some(t) = net.next_completion() else { break };
            net.advance_to(t);
        }
    }
    net.advance_to(1e9);
    net.link_busy(bb)
}

/// One steady-state iteration of a scenario at Test scale: construct the
/// app (allocator churn across a tuning session), run two iterations,
/// return the second's duration — exactly what `build_response` measures
/// per (scenario, action) point.
fn steady_iteration(id: char, k_frac: f64) -> f64 {
    let scenario = Scenario::by_id(id).expect("known scenario");
    let mut app = scenario.app_untraced(Scale::Test, 42);
    let n = app.n_nodes();
    let k = ((n as f64 * k_frac) as usize).max(1);
    let choice = adaphet_geostat::IterationChoice::fact_only(n, k);
    app.run_iteration(choice);
    app.run_iteration(choice).duration()
}

/// The simulation cost of the whole figure suite: an uncached response
/// table for all 16 scenarios at Test scale. Returns a checksum so the
/// work cannot be optimized away.
fn fig_suite_all16() -> f64 {
    let mut acc = 0.0;
    for scenario in Scenario::all16() {
        let table = build_response(&scenario, Scale::Test, 2, 42);
        acc += table.durations.iter().flatten().sum::<f64>();
    }
    acc
}

fn bench_flownet(c: &mut Criterion) {
    let mut g = c.benchmark_group("flownet_churn");
    for &pairs in &[4usize, 16] {
        g.bench_with_input(BenchmarkId::new("pairs", pairs), &pairs, |b, &pairs| {
            b.iter(|| flownet_churn(black_box(pairs), 30));
        });
    }
    g.finish();
}

fn bench_steady_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_steady_iteration");
    g.sample_size(10);
    for &(id, label) in &[('a', "a_10n"), ('p', "p_128n")] {
        g.bench_with_input(BenchmarkId::new("scenario", label), &id, |b, &id| {
            b.iter(|| steady_iteration(black_box(id), 0.5));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_flownet, bench_steady_iteration);

/// Hand-rolled median-ns timer for `--quick` mode (same scheme as
/// `gp_bench`: batched samples, median of up to 120 within the budget).
fn median_ns<R>(budget: Duration, mut f: impl FnMut() -> R) -> f64 {
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed();
    let batch =
        (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as usize;
    let mut samples: Vec<f64> = Vec::new();
    let started = Instant::now();
    while (started.elapsed() < budget || samples.is_empty()) && samples.len() < 120 {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Pull `median_ns` for `name` out of a previously written quick-mode
/// JSON (shape is pinned by this bench, so string scanning suffices —
/// no JSON parser in the bench crate's dependency set).
fn baseline_lookup(json: &str, name: &str) -> Option<f64> {
    let needle = format!("{{\"name\": \"{name}\", \"median_ns\": ");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let end = rest.find('}')?;
    rest[..end].trim().parse().ok()
}

fn quick_main() {
    let budget = Duration::from_millis(200);
    let mut rows: Vec<(String, f64)> = vec![
        ("flownet_churn/4pairs".into(), median_ns(budget, || flownet_churn(4, 30))),
        ("flownet_churn/16pairs".into(), median_ns(budget, || flownet_churn(16, 30))),
        ("sim_steady_iteration/a_10n".into(), median_ns(budget, || steady_iteration('a', 0.5))),
        ("sim_steady_iteration/h_26n".into(), median_ns(budget, || steady_iteration('h', 0.5))),
        ("sim_steady_iteration/p_128n".into(), median_ns(budget, || steady_iteration('p', 0.5))),
    ];

    // The headline number: one full uncached all16 response pass (the
    // simulation side of fig6/fig7/table1), measured once — it dominates
    // the budget, a median over repeats would take minutes.
    let t0 = Instant::now();
    black_box(fig_suite_all16());
    let suite_s = t0.elapsed().as_secs_f64();
    rows.push(("fig_suite_all16_test".into(), suite_s * 1e9));

    // cargo runs benches with the package dir as CWD; the committed
    // baseline lives at the workspace root two levels up.
    let baseline = std::fs::read_to_string("BENCH_sim_baseline.json")
        .or_else(|_| std::fs::read_to_string("../../BENCH_sim_baseline.json"))
        .ok();
    let mut speedups: Vec<(String, f64)> = Vec::new();
    if let Some(base) = &baseline {
        for (name, ns) in &rows {
            if let Some(b) = baseline_lookup(base, name) {
                speedups.push((name.clone(), b / ns));
            }
        }
    }

    let mut json =
        String::from("{\n  \"bench\": \"sim\",\n  \"mode\": \"quick\",\n  \"results\": [\n");
    for (i, (name, ns)) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!("    {{\"name\": \"{name}\", \"median_ns\": {ns:.1}}}{sep}\n"));
        println!("{name:<44} {ns:>16.1} ns/op");
    }
    json.push_str(&format!("  ],\n  \"fig_suite_s\": {suite_s:.3},\n"));
    println!("fig_suite_all16_test: {suite_s:.2} s");
    json.push_str("  \"speedup_vs_baseline\": {");
    for (i, (name, s)) in speedups.iter().enumerate() {
        let sep = if i + 1 < speedups.len() { ", " } else { "" };
        json.push_str(&format!("\"{name}\": {s:.2}{sep}"));
        println!("speedup vs baseline {name}: {s:.2}x");
    }
    json.push_str("}\n}\n");
    std::fs::write("BENCH_sim.json", json).expect("write BENCH_sim.json");
    println!("wrote BENCH_sim.json");
}

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        quick_main();
    } else {
        benches();
    }
}
