//! Per-strategy proposal cost — the online overhead each tuner adds to an
//! application iteration (the paper's Fig. 7 reports 0.04-0.06 s for the
//! GP strategies against 10-30 s iterations).

use adaphet_bench::synthetic_table;
use adaphet_core::History;
use adaphet_eval::{replay, space_of, StrategyKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A history of `len` observations spread over the space.
fn history(len: usize, n: usize) -> History {
    let mut h = History::new();
    for i in 0..len {
        let a = (i * 7) % n + 1;
        h.record(a, 10.0 + (a as f64 - 5.0).abs() + 0.1 * (i % 3) as f64);
    }
    h
}

fn bench_propose(c: &mut Criterion) {
    let table = synthetic_table(36, 30);
    let space = space_of(&table);
    let mut g = c.benchmark_group("propose_cost_at_60_obs");
    for kind in adaphet_eval::PAPER_STRATEGIES {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            let h = history(60, 36);
            b.iter(|| {
                // Fresh strategy per call: proposal cost includes any
                // internal refit, exactly like the online setting.
                let mut s = kind.build(&space, 1, None).expect("paper strategy");
                black_box(s.propose(&space, &h))
            });
        });
    }
    g.finish();
}

fn bench_full_replay(c: &mut Criterion) {
    let table = synthetic_table(36, 30);
    let mut g = c.benchmark_group("replay_127_iters");
    g.sample_size(10);
    for kind in [StrategyKind::GpDiscontinuous, StrategyKind::GpUcb, StrategyKind::Ucb] {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            b.iter(|| replay(kind, &table, 127, 5).total_time);
        });
    }
    g.finish();
}

criterion_group!(benches, bench_propose, bench_full_replay);
criterion_main!(benches);
