//! End-to-end figure pipelines at test scale: one bench per paper
//! table/figure, exercising the same code paths the `adaphet-eval`
//! binaries use (`fig1`..`fig8`, `table1`, `table2`). The real figure
//! regeneration is `cargo run --release -p adaphet-eval --bin figN`; these
//! benches keep the pipelines' cost visible and their code exercised under
//! `cargo bench`.

use adaphet_core::{ActionSpace, GpDiscontinuous, GpUcb, History, Strategy};
use adaphet_eval::{
    build_response, build_response_2d, build_rigid_curve, replay_many, space_of, StrategyKind,
};
use adaphet_geostat::IterationChoice;
use adaphet_gp::{GpConfig, GpModel, Kernel, Trend};
use adaphet_scenarios::{Machine, Scale, Scenario};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn scen(id: char) -> Scenario {
    Scenario::by_id(id).expect("known scenario")
}

/// Fig. 1: traced three-iteration run with per-node utilization profiles.
fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig1_trace_pipeline", |b| {
        b.iter(|| {
            let s = scen('b');
            let mut app = s.app(Scale::Test, 0);
            let n = app.n_nodes();
            for choice in [
                IterationChoice { n_gen: 8, n_fact: 8 },
                IterationChoice::all(n),
                IterationChoice::fact_only(n, 8),
            ] {
                app.run_iteration(choice);
            }
            app.runtime().trace().events().len()
        });
    });
    g.finish();
}

/// Figs. 2 & 5: response table + rigid curve of one scenario.
fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig5_response_table_scenario_a", |b| {
        b.iter(|| {
            let s = scen('a');
            let t = build_response(&s, Scale::Test, 10, 1);
            let r = build_rigid_curve(&s, Scale::Test, 1);
            (t.best_action(), r.len())
        });
    });
    g.finish();
}

/// Fig. 3: the GP cos fit.
fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_gp_cos_fit", |b| {
        let xs: Vec<f64> = (0..8).map(|i| i as f64 * 1.6).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.cos()).collect();
        b.iter(|| {
            let gp = GpModel::fit(
                GpConfig {
                    kernel: Kernel::SquaredExponential { theta: 1.2 },
                    process_var: 1.0,
                    noise_var: 0.01,
                    trend: Trend::none(),
                },
                black_box(&xs),
                &ys,
            )
            .unwrap();
            (0..50).map(|i| gp.predict(i as f64 * 0.25).mean).sum::<f64>()
        });
    });
}

/// Fig. 4: stepwise surrogate dumps of both GP strategies.
fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig4_stepwise_surrogates", |b| {
        let table = adaphet_bench::synthetic_table(24, 10);
        let space = space_of(&table);
        b.iter(|| {
            let mut hist = History::new();
            let plain = GpUcb::new(&space);
            let mut disc = GpDiscontinuous::new(&space);
            for _ in 0..20 {
                let a = disc.propose(&space, &hist);
                hist.record(a, table.durations[a - 1][0]);
            }
            let curve = disc.surrogate_curve(&hist).map(|c| c.len()).unwrap_or(0);
            let plain_fit = plain.fit(&hist).is_some();
            (curve, plain_fit)
        });
    });
    g.finish();
}

/// Fig. 6: the full strategy-comparison replay on one scenario table.
fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig6_strategy_overview_synthetic", |b| {
        let table = adaphet_bench::synthetic_table(24, 30);
        b.iter(|| {
            let mut acc = 0.0;
            for kind in adaphet_eval::PAPER_STRATEGIES {
                acc += replay_many(kind, &table, 60, 5, 3).mean_total;
            }
            acc
        });
    });
    g.finish();
}

/// Fig. 7: the online tuner's per-iteration cost (fit + propose).
fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_online_tuner_step", |b| {
        let table = adaphet_bench::synthetic_table(14, 10);
        let space = space_of(&table);
        let mut hist = History::new();
        let mut warm = GpDiscontinuous::new(&space);
        for _ in 0..30 {
            let a = warm.propose(&space, &hist);
            hist.record(a, table.durations[a - 1][0]);
        }
        b.iter(|| {
            let mut s = GpDiscontinuous::new(&space);
            black_box(s.propose(&space, &hist))
        });
    });
}

/// Fig. 8: the 2D (generation x factorization) sweep.
fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig8_2d_sweep_scenario_a", |b| {
        b.iter(|| build_response_2d(&scen('a'), Scale::Test, 4, 1).len());
    });
    g.finish();
}

/// Table I: one strategy-property evaluation cell.
fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_property_cell", |b| {
        let lp: Vec<f64> = (1..=24).map(|n| 96.0 / n as f64).collect();
        let space = ActionSpace::new(24, vec![(1, 8), (9, 16), (17, 24)], Some(lp));
        b.iter(|| {
            let mut s =
                StrategyKind::GpDiscontinuous.build(&space, 1, None).expect("no oracle needed");
            let mut h = History::new();
            for _ in 0..40 {
                let a = s.propose(&space, &h);
                h.record(a, 96.0 / a as f64 + 0.9 * a as f64);
            }
            h.total_time()
        });
    });
}

/// Table II: platform construction from the catalogue.
fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_platform_catalogue", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for m in [
                Machine::Chetemi,
                Machine::Chifflet,
                Machine::Chifflot,
                Machine::SdCpu,
                Machine::SdK40x1,
                Machine::SdK40x2,
            ] {
                acc += m.spec().peak_gflops();
            }
            for s in Scenario::all16() {
                acc += s.platform().len() as f64;
            }
            acc
        });
    });
}

criterion_group!(
    benches,
    bench_fig1,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_table1,
    bench_table2
);
criterion_main!(benches);
