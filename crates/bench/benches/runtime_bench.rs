//! Simulator throughput: tasks-per-second of the discrete-event engine on
//! a full application iteration. The figure sweeps simulate hundreds of
//! iterations, so this is the wall-clock budget of the whole evaluation.

use adaphet_geostat::{GeoSimApp, IterationChoice, Workload};
use adaphet_runtime::{NetworkSpec, NodeSpec, Platform, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn platform(n_gpu: usize, n_cpu: usize) -> Platform {
    let gpu = NodeSpec {
        name: "L".into(),
        cpu_cores: 16,
        gpus: 2,
        cpu_gflops_per_core: 20.0,
        gpu_gflops: 2000.0,
        nic_gbps: 10.0,
    };
    let cpu = NodeSpec { name: "S".into(), gpus: 0, gpu_gflops: 0.0, ..gpu.clone() };
    let mut nodes = vec![gpu; n_gpu];
    nodes.extend(std::iter::repeat_n(cpu, n_cpu));
    Platform::new_sorted(nodes, NetworkSpec { backbone_gbps: 100.0, latency_s: 1e-5 })
}

fn bench_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_iteration");
    g.sample_size(10);
    for &nt in &[12usize, 24] {
        g.bench_with_input(BenchmarkId::new("nt", nt), &nt, |b, &nt| {
            b.iter(|| {
                let mut app =
                    GeoSimApp::new(platform(2, 6), Workload::new(nt, 256), SimConfig::default());
                app.set_trace_enabled(false);
                let n = app.n_nodes();
                app.run_iteration(IterationChoice::fact_only(n, 4)).duration()
            });
        });
    }
    g.finish();
}

fn bench_redistribution(c: &mut Criterion) {
    // Iterations that flip between node sets pay migration traffic.
    c.bench_function("sim_iteration_with_flipflop_redistribution", |b| {
        b.iter(|| {
            let mut app =
                GeoSimApp::new(platform(2, 6), Workload::new(12, 256), SimConfig::default());
            app.set_trace_enabled(false);
            let n = app.n_nodes();
            let mut total = 0.0;
            for k in [n, 2, n, 3] {
                total += app.run_iteration(IterationChoice::fact_only(n, k)).duration();
            }
            total
        });
    });
}

criterion_group!(benches, bench_iteration, bench_redistribution);
criterion_main!(benches);
