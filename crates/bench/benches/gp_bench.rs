//! GP substrate cost: fit and predict versus the number of observations —
//! the computational side of the paper's Fig. 7 overhead claim (the online
//! tuner refits a GP every iteration, so fit cost at 10-130 observations
//! must stay in the milliseconds).
//!
//! Besides the criterion-style benches, `--quick` runs a short hand-rolled
//! pass and writes `BENCH_gp.json` (median ns per op) so CI can archive the
//! scratch-vs-incremental numbers next to the figure artifacts:
//!
//! ```text
//! cargo bench -p adaphet-bench --bench gp_bench -- --quick
//! ```

use adaphet_core::{ActionSpace, GpDiscontinuous, History, Strategy};
use adaphet_gp::{fit_profile_likelihood, GpConfig, GpModel, Kernel, MleSearch, Trend};
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn data(n: usize) -> (Vec<f64>, Vec<f64>) {
    // Spread the samples over the whole [0, 37] span so every dummy-group
    // column of the trend has data regardless of n (a rank-deficient GLS
    // would error out of the fit).
    let xs: Vec<f64> = (0..n).map(|i| i as f64 * 37.0 / n as f64 + 0.013 * i as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 40.0 / (x + 1.0) + 0.5 * x).collect();
    (xs, ys)
}

fn config() -> GpConfig {
    GpConfig {
        kernel: Kernel::Exponential { theta: 1.0 },
        process_var: 10.0,
        noise_var: 0.25,
        trend: Trend::linear_with_group_dummies(&[(0, 12), (13, 24), (25, 40)]),
    }
}

/// A deterministic GP-discontinuous tuning run: 40 propose/record rounds
/// over a 40-action space with a grouped discontinuous response.
fn tuning_run() -> usize {
    let lp: Vec<f64> = (1..=40).map(|k| 240.0 / k as f64).collect();
    let space = ActionSpace::new(40, vec![(1, 13), (14, 27), (28, 40)], Some(lp));
    let mut g = GpDiscontinuous::new(&space);
    let mut h = History::new();
    for _ in 0..40 {
        let a = g.propose(&space, &h);
        let y = 240.0 / a as f64 + 0.6 * a as f64 + if a > 27 { 8.0 } else { 0.0 };
        h.record(a, y);
    }
    h.records().last().unwrap().0
}

fn bench_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("gp_fit");
    for n in [8usize, 32, 128] {
        let (xs, ys) = data(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| GpModel::fit(config(), black_box(&xs), black_box(&ys)).unwrap());
        });
    }
    g.finish();
}

fn bench_incremental(c: &mut Criterion) {
    // Clone an (n-1)-point base model and absorb the n-th observation:
    // clone is O(n²) memcpy, update is the O(n²) append path — together
    // still far below the O(n³) scratch fit they replace.
    let mut g = c.benchmark_group("gp_update_incremental");
    for n in [8usize, 32, 128] {
        let (xs, ys) = data(n);
        let base = GpModel::fit(config(), &xs[..n - 1], &ys[..n - 1]).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut m = base.clone();
                m.update(black_box(xs[n - 1]), black_box(ys[n - 1])).unwrap();
                m
            });
        });
    }
    g.finish();
}

fn bench_mle_grid(c: &mut Criterion) {
    // The 27-candidate (θ, α) profile-likelihood grid (shared distance
    // matrix, parallel candidate fits).
    let (xs, ys) = data(64);
    let search = MleSearch::default();
    c.bench_function("gp_mle_grid_64pts", |b| {
        b.iter(|| fit_profile_likelihood(&search, black_box(&xs), black_box(&ys), 0.25).unwrap());
    });
}

fn bench_tuning_run(c: &mut Criterion) {
    c.bench_function("gp_disc_tuning_run_40it", |b| {
        b.iter(|| black_box(tuning_run()));
    });
}

fn bench_predict(c: &mut Criterion) {
    let (xs, ys) = data(127);
    let model = GpModel::fit(config(), &xs, &ys).unwrap();
    c.bench_function("gp_predict_curve_128pts", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for q in 1..=128 {
                acc += model.predict(black_box(q as f64)).mean;
            }
            acc
        });
    });
}

criterion_group!(
    benches,
    bench_fit,
    bench_incremental,
    bench_mle_grid,
    bench_tuning_run,
    bench_predict
);

/// Hand-rolled median-ns timer for `--quick` mode (the shim criterion
/// keeps its samples private, and quick mode needs the raw numbers to
/// write JSON).
fn median_ns<R>(budget: Duration, mut f: impl FnMut() -> R) -> f64 {
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed();
    let batch =
        (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as usize;
    let mut samples: Vec<f64> = Vec::new();
    let started = Instant::now();
    while (started.elapsed() < budget || samples.is_empty()) && samples.len() < 120 {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn quick_main() {
    let budget = Duration::from_millis(120);
    let mut rows: Vec<(String, f64)> = Vec::new();
    let mut speedups: Vec<(usize, f64)> = Vec::new();

    for n in [8usize, 32, 128] {
        let (xs, ys) = data(n);
        let scratch = median_ns(budget, || GpModel::fit(config(), &xs, &ys).unwrap());
        let base = GpModel::fit(config(), &xs[..n - 1], &ys[..n - 1]).unwrap();
        let clone_only = median_ns(budget, || base.clone());
        let clone_update = median_ns(budget, || {
            let mut m = base.clone();
            m.update(xs[n - 1], ys[n - 1]).unwrap();
            m
        });
        let update = (clone_update - clone_only).max(1.0);
        rows.push((format!("gp_fit_scratch/{n}"), scratch));
        rows.push((format!("gp_model_clone/{n}"), clone_only));
        rows.push((format!("gp_update_incremental_with_clone/{n}"), clone_update));
        rows.push((format!("gp_update_incremental/{n}"), update));
        speedups.push((n, scratch / update));
    }

    let (xs, ys) = data(64);
    let search = MleSearch::default();
    rows.push((
        "gp_mle_grid_64pts".into(),
        median_ns(budget, || fit_profile_likelihood(&search, &xs, &ys, 0.25).unwrap()),
    ));
    rows.push(("gp_disc_tuning_run_40it".into(), median_ns(budget, tuning_run)));

    let mut json =
        String::from("{\n  \"bench\": \"gp\",\n  \"mode\": \"quick\",\n  \"results\": [\n");
    for (i, (name, ns)) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!("    {{\"name\": \"{name}\", \"median_ns\": {ns:.1}}}{sep}\n"));
        println!("{name:<44} {ns:>14.1} ns/op");
    }
    json.push_str("  ],\n  \"speedup_incremental_vs_scratch\": {");
    for (i, (n, s)) in speedups.iter().enumerate() {
        let sep = if i + 1 < speedups.len() { ", " } else { "" };
        json.push_str(&format!("\"{n}\": {s:.2}{sep}"));
        println!("speedup incremental vs scratch @ n={n}: {s:.2}x");
    }
    json.push_str("}\n}\n");
    std::fs::write("BENCH_gp.json", json).expect("write BENCH_gp.json");
    println!("wrote BENCH_gp.json");
}

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        quick_main();
    } else {
        benches();
    }
}
