//! GP substrate cost: fit and predict versus the number of observations —
//! the computational side of the paper's Fig. 7 overhead claim (the online
//! tuner refits a GP every iteration, so fit cost at 10-130 observations
//! must stay in the milliseconds).

use adaphet_gp::{GpConfig, GpModel, Kernel, Trend};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn data(n: usize) -> (Vec<f64>, Vec<f64>) {
    // Spread the samples over the whole [0, 37] span so every dummy-group
    // column of the trend has data regardless of n (a rank-deficient GLS
    // would error out of the fit).
    let xs: Vec<f64> = (0..n).map(|i| i as f64 * 37.0 / n as f64 + 0.013 * i as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 40.0 / (x + 1.0) + 0.5 * x).collect();
    (xs, ys)
}

fn config() -> GpConfig {
    GpConfig {
        kernel: Kernel::Exponential { theta: 1.0 },
        process_var: 10.0,
        noise_var: 0.25,
        trend: Trend::linear_with_group_dummies(&[(0, 12), (13, 24), (25, 40)]),
    }
}

fn bench_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("gp_fit");
    for n in [8usize, 32, 127] {
        let (xs, ys) = data(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| GpModel::fit(config(), black_box(&xs), black_box(&ys)).unwrap());
        });
    }
    g.finish();
}

fn bench_predict(c: &mut Criterion) {
    let (xs, ys) = data(127);
    let model = GpModel::fit(config(), &xs, &ys).unwrap();
    c.bench_function("gp_predict_curve_128pts", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for q in 1..=128 {
                acc += model.predict(black_box(q as f64)).mean;
            }
            acc
        });
    });
}

criterion_group!(benches, bench_fit, bench_predict);
criterion_main!(benches);
