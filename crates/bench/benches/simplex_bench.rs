//! LP substrate cost: the makespan-bound LP is solved once per action when
//! building the bound curve; it must be trivially cheap even at 128 nodes.

use adaphet_lp::{MakespanModel, PhaseSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_makespan_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("makespan_lp");
    for n in [8usize, 64, 128] {
        let times: Vec<f64> = (0..n).map(|i| 0.5 + 0.01 * i as f64).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                MakespanModel::phase_bound(&PhaseSpec {
                    name: "factorization",
                    work_units: black_box(1000.0),
                    node_unit_times: times.clone(),
                })
            });
        });
    }
    g.finish();
}

fn bench_bound_curve(c: &mut Criterion) {
    // The whole LP(n) curve for a 128-node cluster.
    c.bench_function("lp_curve_128_nodes", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in 1..=128usize {
                let times: Vec<f64> = (0..k).map(|i| 0.5 + 0.01 * i as f64).collect();
                acc += adaphet_lp::proportional_share_bound(black_box(1000.0), &times).makespan;
            }
            acc
        });
    });
}

criterion_group!(benches, bench_makespan_lp, bench_bound_curve);
criterion_main!(benches);
