#![warn(missing_docs)]

//! `adaphet-tsdb` — an in-process, bounded, chunked time-series store for
//! metrics history.
//!
//! The live observability plane (`adaphet-metrics`, `/metrics`,
//! `adaphet-top`) answers "what is the daemon doing right now"; this
//! crate answers "what did it look like ten minutes ago". A
//! [`TimeSeriesStore`] holds one bounded ring of `(t_s, value)` samples
//! per named series, plus coarser downsampled rings (min/max/mean/last
//! per fixed-width time bucket) so long horizons survive the bounded
//! footprint. Samples enter either directly ([`TimeSeriesStore::record`])
//! or by ingesting a whole [`MetricsReport`]
//! ([`TimeSeriesStore::ingest`]), which reuses the report's
//! `monotonic_s` stamp (METRICS_SCHEMA_VERSION 2) so no wall clock is
//! involved.
//!
//! # Chunk format
//!
//! Persistence follows the `adaphet-store` codec discipline (the codec
//! primitives are shared):
//!
//! ```text
//! offset 0   magic  "ADTS"          (4 bytes)
//! offset 4   format version, u32 LE (currently 1)
//! offset 8   CRC-32 (IEEE) of every byte from offset 12 on, u32 LE
//! offset 12  sections...
//! ```
//!
//! Each section is a 4-byte ASCII tag, a u64 LE payload length, and the
//! payload. Version 1 writes two sections: `conf` (capacity, epoch,
//! resolution widths) and `sers` (every series: raw ring, then one coarse
//! ring per resolution including its open aggregate). Floats travel as
//! `f64::to_bits` u64 LE, so a decoded store is bit-identical to what was
//! encoded — pinned by a proptest. Unknown section tags are skipped; bad
//! magic, a future version, truncation and checksum mismatches are typed
//! [`StoreError`]s, never panics.

use std::collections::{BTreeMap, VecDeque};
use std::fs;
use std::io;
use std::path::Path;

use adaphet_metrics::{json_escape, MetricsReport};
use adaphet_store::{crc32, Reader, StoreError, Writer};

/// Magic bytes opening every history chunk file.
pub const MAGIC: [u8; 4] = *b"ADTS";

/// Chunk format version; bump on any layout change.
pub const FORMAT_VERSION: u32 = 1;

/// Shape of a [`TimeSeriesStore`]: per-series ring capacity and the
/// downsampling resolutions.
#[derive(Debug, Clone, PartialEq)]
pub struct TsdbConfig {
    /// Samples retained per series per ring (raw and each coarse ring).
    pub capacity: usize,
    /// Bucket widths, in seconds, of the coarser downsampled rings.
    /// Conventionally sorted fine-to-coarse; widths must be positive.
    pub resolutions: Vec<f64>,
}

impl Default for TsdbConfig {
    /// 512 points per ring, downsampled into 30 s and 300 s buckets —
    /// with a 5 s scrape interval that is ~42 minutes of raw history and
    /// ~42 hours at the coarsest resolution.
    fn default() -> Self {
        TsdbConfig { capacity: 512, resolutions: vec![30.0, 300.0] }
    }
}

/// One raw observation of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Source-relative monotonic timestamp, seconds.
    pub t_s: f64,
    /// The sampled value.
    pub value: f64,
}

/// One downsampled bucket: the aggregate of every raw sample whose
/// timestamp fell inside `[t_s, t_s + width)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoarsePoint {
    /// Bucket start (a multiple of the ring's width), seconds.
    pub t_s: f64,
    /// Smallest sample in the bucket.
    pub min: f64,
    /// Largest sample in the bucket.
    pub max: f64,
    /// Sum of samples (with [`CoarsePoint::count`], yields the mean).
    pub sum: f64,
    /// Number of samples aggregated.
    pub count: u64,
    /// Last sample seen in the bucket.
    pub last: f64,
}

impl CoarsePoint {
    fn seed(t_s: f64, v: f64) -> Self {
        CoarsePoint { t_s, min: v, max: v, sum: v, count: 1, last: v }
    }

    fn merge(&mut self, v: f64) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
        self.count += 1;
        self.last = v;
    }

    /// Mean of the bucket's samples (0 for an impossible empty bucket).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A bounded ring of closed buckets plus the still-open aggregate.
#[derive(Debug, Clone, PartialEq)]
struct CoarseRing {
    width_s: f64,
    points: VecDeque<CoarsePoint>,
    /// `(bucket index, running aggregate)` of the bucket currently being
    /// filled; flushed into `points` when a later bucket starts.
    open: Option<(u64, CoarsePoint)>,
}

impl CoarseRing {
    fn new(width_s: f64) -> Self {
        CoarseRing { width_s, points: VecDeque::new(), open: None }
    }

    fn push(&mut self, capacity: usize, t_s: f64, v: f64) {
        let bucket = (t_s.max(0.0) / self.width_s).floor() as u64;
        match &mut self.open {
            Some((open_bucket, agg)) if bucket <= *open_bucket => agg.merge(v),
            open => {
                if let Some((_, done)) = open.take() {
                    if self.points.len() >= capacity {
                        self.points.pop_front();
                    }
                    self.points.push_back(done);
                }
                *open = Some((bucket, CoarsePoint::seed(bucket as f64 * self.width_s, v)));
            }
        }
    }

    /// Closed buckets plus the open one, oldest first.
    fn view(&self) -> Vec<CoarsePoint> {
        let mut out: Vec<CoarsePoint> = self.points.iter().copied().collect();
        if let Some((_, agg)) = &self.open {
            out.push(*agg);
        }
        out
    }
}

/// One named series: the raw ring and its coarse rings.
#[derive(Debug, Clone, PartialEq)]
struct Series {
    raw: VecDeque<Sample>,
    coarse: Vec<CoarseRing>,
}

impl Series {
    fn new(resolutions: &[f64]) -> Self {
        Series {
            raw: VecDeque::new(),
            coarse: resolutions.iter().map(|&w| CoarseRing::new(w)).collect(),
        }
    }

    fn push(&mut self, capacity: usize, t_s: f64, v: f64) {
        if self.raw.len() >= capacity {
            self.raw.pop_front();
        }
        self.raw.push_back(Sample { t_s, value: v });
        for ring in &mut self.coarse {
            ring.push(capacity, t_s, v);
        }
    }
}

/// The store: a map from series name to its bounded rings, plus the
/// epoch offset that keeps history monotone across daemon restarts.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesStore {
    config: TsdbConfig,
    /// Added to every [`MetricsReport::monotonic_s`] stamp at ingest so a
    /// store reloaded from disk continues *after* its persisted history
    /// instead of overwriting it (a fresh registry restarts at 0).
    epoch_s: f64,
    series: BTreeMap<String, Series>,
}

impl TimeSeriesStore {
    /// An empty store. `capacity` is clamped to at least 1 and
    /// non-positive / non-finite resolutions are dropped.
    pub fn new(config: TsdbConfig) -> Self {
        let config = TsdbConfig {
            capacity: config.capacity.max(1),
            resolutions: config
                .resolutions
                .into_iter()
                .filter(|w| w.is_finite() && *w > 0.0)
                .collect(),
        };
        TimeSeriesStore { config, epoch_s: 0.0, series: BTreeMap::new() }
    }

    /// The store's configuration.
    pub fn config(&self) -> &TsdbConfig {
        &self.config
    }

    /// Record one sample. Non-finite timestamps or values are dropped
    /// (they would poison the min/max aggregates); the JSON dump and the
    /// chunk codec therefore only ever carry finite numbers.
    pub fn record(&mut self, name: &str, t_s: f64, value: f64) {
        if !t_s.is_finite() || !value.is_finite() {
            return;
        }
        let capacity = self.config.capacity;
        match self.series.get_mut(name) {
            Some(s) => s.push(capacity, t_s, value),
            None => {
                let mut s = Series::new(&self.config.resolutions);
                s.push(capacity, t_s, value);
                self.series.insert(name.to_string(), s);
            }
        }
    }

    /// Ingest one registry snapshot, stamped at `epoch + monotonic_s`:
    /// every counter and gauge becomes a series under its own name; every
    /// histogram contributes `<name>.count`, `<name>.p50`, `<name>.p95`
    /// and `<name>.p99`.
    pub fn ingest(&mut self, report: &MetricsReport) {
        let t = self.epoch_s + report.monotonic_s;
        for (name, v) in &report.counters {
            self.record(name, t, *v);
        }
        for (name, v) in &report.gauges {
            self.record(name, t, *v);
        }
        for (name, h) in &report.histograms {
            self.record(&format!("{name}.count"), t, h.count as f64);
            if h.count > 0 {
                self.record(&format!("{name}.p50"), t, h.p50());
                self.record(&format!("{name}.p95"), t, h.p95());
                self.record(&format!("{name}.p99"), t, h.p99());
            }
        }
    }

    /// Advance the epoch past everything recorded so far, so that
    /// subsequent [`ingest`](Self::ingest) calls (whose source registry
    /// restarted at `monotonic_s ≈ 0`) extend the history instead of
    /// interleaving with it. Called by [`load_or_new`](Self::load_or_new).
    pub fn rebase(&mut self) {
        let max_t =
            self.series.values().filter_map(|s| s.raw.back().map(|p| p.t_s)).fold(0.0f64, f64::max);
        self.epoch_s = max_t;
    }

    /// Name of every series, sorted.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(|s| s.as_str()).collect()
    }

    /// Raw samples of `name`, oldest first (`None` for an unknown series).
    pub fn samples(&self, name: &str) -> Option<Vec<Sample>> {
        self.series.get(name).map(|s| s.raw.iter().copied().collect())
    }

    /// Downsampled buckets of `name` at resolution index `res` (the index
    /// into [`TsdbConfig::resolutions`]), oldest first, including the
    /// still-open bucket.
    pub fn coarse(&self, name: &str, res: usize) -> Option<Vec<CoarsePoint>> {
        self.series.get(name).and_then(|s| s.coarse.get(res)).map(|r| r.view())
    }

    /// The newest sample of `name`.
    pub fn latest(&self, name: &str) -> Option<Sample> {
        self.series.get(name).and_then(|s| s.raw.back().copied())
    }

    /// Total raw samples currently retained across all series.
    pub fn len(&self) -> usize {
        self.series.values().map(|s| s.raw.len()).sum()
    }

    /// True when no series holds any sample.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialize the full store state (raw rings, coarse rings including
    /// open aggregates, epoch) as one self-describing JSON object —
    /// the payload of the `/metrics/history` endpoint. Key order is
    /// pinned: `version`, `capacity`, `resolutions`, `epoch_s`, `series`;
    /// each series carries `name`, `points` (raw `[t, value]` pairs) and
    /// `coarse` (per resolution: `[t, min, max, mean, last, count]`).
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        }
        let series: Vec<String> = self
            .series
            .iter()
            .map(|(name, s)| {
                let raw: Vec<String> =
                    s.raw.iter().map(|p| format!("[{},{}]", num(p.t_s), num(p.value))).collect();
                let coarse: Vec<String> = s
                    .coarse
                    .iter()
                    .map(|r| {
                        let pts: Vec<String> = r
                            .view()
                            .iter()
                            .map(|c| {
                                format!(
                                    "[{},{},{},{},{},{}]",
                                    num(c.t_s),
                                    num(c.min),
                                    num(c.max),
                                    num(c.mean()),
                                    num(c.last),
                                    c.count,
                                )
                            })
                            .collect();
                        format!("{{\"width_s\":{},\"points\":[{}]}}", num(r.width_s), pts.join(","))
                    })
                    .collect();
                format!(
                    "{{\"name\":\"{}\",\"points\":[{}],\"coarse\":[{}]}}",
                    json_escape(name),
                    raw.join(","),
                    coarse.join(","),
                )
            })
            .collect();
        format!(
            "{{\"version\":{},\"capacity\":{},\"resolutions\":[{}],\"epoch_s\":{},\"series\":[{}]}}",
            FORMAT_VERSION,
            self.config.capacity,
            self.config.resolutions.iter().map(|w| num(*w)).collect::<Vec<_>>().join(","),
            num(self.epoch_s),
            series.join(","),
        )
    }

    // ---- chunk codec --------------------------------------------------

    /// Encode the full store state as one chunk (see the crate docs for
    /// the byte layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut conf = Writer::new();
        conf.u64(self.config.capacity as u64);
        conf.f64(self.epoch_s);
        conf.u64(self.config.resolutions.len() as u64);
        for w in &self.config.resolutions {
            conf.f64(*w);
        }

        let mut sers = Writer::new();
        sers.u64(self.series.len() as u64);
        for (name, s) in &self.series {
            sers.str(name);
            sers.u64(s.raw.len() as u64);
            for p in &s.raw {
                sers.f64(p.t_s);
                sers.f64(p.value);
            }
            sers.u64(s.coarse.len() as u64);
            for ring in &s.coarse {
                sers.f64(ring.width_s);
                sers.u64(ring.points.len() as u64);
                for c in &ring.points {
                    write_coarse(&mut sers, c);
                }
                match &ring.open {
                    None => sers.u8(0),
                    Some((bucket, agg)) => {
                        sers.u8(1);
                        sers.u64(*bucket);
                        write_coarse(&mut sers, agg);
                    }
                }
            }
        }

        let mut body = Writer::new();
        body.section(b"conf", &conf.into_bytes());
        body.section(b"sers", &sers.into_bytes());
        let body = body.into_bytes();

        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decode a chunk produced by [`to_bytes`](Self::to_bytes). Unknown
    /// section tags are skipped; every malformation is a typed
    /// [`StoreError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let mut header = Reader::new(bytes);
        let mut magic = [0u8; 4];
        for b in &mut magic {
            *b = header.u8()?;
        }
        if magic != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = header.u32()?;
        if version > FORMAT_VERSION {
            return Err(StoreError::FutureVersion { found: version });
        }
        let expected = header.u32()?;
        let body = &bytes[12..];
        let found = crc32(body);
        if found != expected {
            return Err(StoreError::BadChecksum { expected, found });
        }

        let mut conf: Option<(usize, f64, Vec<f64>)> = None;
        let mut sers_payload: Option<Reader> = None;
        let mut sections = Reader::new(body);
        while !sections.is_empty() {
            let (tag, mut payload) = sections.section()?;
            match &tag {
                b"conf" => {
                    let capacity = payload.len()?;
                    let epoch_s = payload.f64()?;
                    let n = payload.len()?;
                    let mut resolutions = Vec::with_capacity(n.min(64));
                    for _ in 0..n {
                        resolutions.push(payload.f64()?);
                    }
                    conf = Some((capacity, epoch_s, resolutions));
                }
                b"sers" => sers_payload = Some(payload),
                _ => {} // forward-compatible: skip unknown sections
            }
        }
        let (capacity, epoch_s, resolutions) =
            conf.ok_or_else(|| StoreError::Corrupt("missing conf section".into()))?;
        if capacity == 0 {
            return Err(StoreError::Corrupt("capacity 0".into()));
        }

        let mut series = BTreeMap::new();
        if let Some(mut r) = sers_payload {
            let n_series = r.len()?;
            for _ in 0..n_series {
                let name = r.str()?;
                let n_raw = r.len()?;
                if n_raw > capacity {
                    return Err(StoreError::Corrupt(format!(
                        "series '{name}': {n_raw} raw samples exceed capacity {capacity}"
                    )));
                }
                let mut raw = VecDeque::with_capacity(n_raw);
                for _ in 0..n_raw {
                    let t_s = r.f64()?;
                    let value = r.f64()?;
                    raw.push_back(Sample { t_s, value });
                }
                let n_rings = r.len()?;
                if n_rings != resolutions.len() {
                    return Err(StoreError::Corrupt(format!(
                        "series '{name}': {n_rings} coarse rings vs {} resolutions",
                        resolutions.len()
                    )));
                }
                let mut coarse = Vec::with_capacity(n_rings);
                for _ in 0..n_rings {
                    let width_s = r.f64()?;
                    let n_points = r.len()?;
                    if n_points > capacity {
                        return Err(StoreError::Corrupt(format!(
                            "series '{name}': {n_points} coarse points exceed capacity {capacity}"
                        )));
                    }
                    let mut points = VecDeque::with_capacity(n_points);
                    for _ in 0..n_points {
                        points.push_back(read_coarse(&mut r)?);
                    }
                    let open = match r.u8()? {
                        0 => None,
                        1 => {
                            let bucket = r.u64()?;
                            Some((bucket, read_coarse(&mut r)?))
                        }
                        other => {
                            return Err(StoreError::Corrupt(format!(
                                "bad open-aggregate flag {other}"
                            )))
                        }
                    };
                    coarse.push(CoarseRing { width_s, points, open });
                }
                series.insert(name, Series { raw, coarse });
            }
        }
        Ok(TimeSeriesStore { config: TsdbConfig { capacity, resolutions }, epoch_s, series })
    }

    /// Write the chunk to `path` atomically (tmp file + rename), so a
    /// crashed writer never leaves a torn chunk behind.
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.to_bytes())?;
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read a chunk from `path`.
    pub fn load(path: &Path) -> Result<Self, StoreError> {
        let bytes = fs::read(path)?;
        Self::from_bytes(&bytes)
    }

    /// Load the chunk at `path` and rebase it for continued ingestion —
    /// or start empty with `config` when the file is absent, unreadable,
    /// corrupt, or was written with a different configuration.
    ///
    /// Returns `(store, Some(error))` when a file was present but could
    /// not be used, `(store, None)` otherwise (a missing file is the
    /// normal cold start, not an error).
    pub fn load_or_new(path: &Path, config: TsdbConfig) -> (Self, Option<StoreError>) {
        match Self::load(path) {
            Ok(mut store) if store.config == TimeSeriesStore::new(config.clone()).config => {
                store.rebase();
                (store, None)
            }
            Ok(_) => (
                Self::new(config),
                Some(StoreError::Corrupt("history chunk written with a different config".into())),
            ),
            Err(StoreError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {
                (Self::new(config), None)
            }
            Err(e) => (Self::new(config), Some(e)),
        }
    }
}

fn write_coarse(w: &mut Writer, c: &CoarsePoint) {
    w.f64(c.t_s);
    w.f64(c.min);
    w.f64(c.max);
    w.f64(c.sum);
    w.u64(c.count);
    w.f64(c.last);
}

fn read_coarse(r: &mut Reader) -> Result<CoarsePoint, StoreError> {
    Ok(CoarsePoint {
        t_s: r.f64()?,
        min: r.f64()?,
        max: r.f64()?,
        sum: r.f64()?,
        count: r.u64()?,
        last: r.f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaphet_metrics::{Recorder, Registry};
    use proptest::prelude::*;

    fn store_with(capacity: usize, resolutions: Vec<f64>) -> TimeSeriesStore {
        TimeSeriesStore::new(TsdbConfig { capacity, resolutions })
    }

    fn sample_store() -> TimeSeriesStore {
        let mut s = store_with(8, vec![10.0, 100.0]);
        for i in 0..20 {
            let t = i as f64 * 2.5;
            s.record("service.request", t, i as f64);
            s.record("service.in_flight", t, (i % 3) as f64);
        }
        s
    }

    #[test]
    fn raw_ring_drops_oldest_at_capacity() {
        let s = sample_store();
        let pts = s.samples("service.request").unwrap();
        assert_eq!(pts.len(), 8);
        assert_eq!(pts[0].value, 12.0); // 20 recorded, first 12 evicted
        assert_eq!(pts.last().unwrap().value, 19.0);
        assert_eq!(s.latest("service.request").unwrap().value, 19.0);
    }

    #[test]
    fn downsampling_aggregates_min_max_mean_last() {
        let mut s = store_with(32, vec![10.0]);
        // Bucket [0, 10): samples 4, 8, 2 at t = 1, 5, 9.
        s.record("x", 1.0, 4.0);
        s.record("x", 5.0, 8.0);
        s.record("x", 9.0, 2.0);
        // Bucket [10, 20): one sample, which also closes the first bucket.
        s.record("x", 11.0, 100.0);
        let c = s.coarse("x", 0).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].t_s, 0.0);
        assert_eq!(c[0].min, 2.0);
        assert_eq!(c[0].max, 8.0);
        assert!((c[0].mean() - 14.0 / 3.0).abs() < 1e-12);
        assert_eq!(c[0].last, 2.0);
        assert_eq!(c[0].count, 3);
        // The open bucket is visible in the view.
        assert_eq!(c[1].t_s, 10.0);
        assert_eq!(c[1].count, 1);
    }

    #[test]
    fn coarse_ring_is_bounded_too() {
        let mut s = store_with(4, vec![1.0]);
        for i in 0..100 {
            s.record("x", i as f64, 1.0);
        }
        // 4 closed buckets max + the open one.
        assert!(s.coarse("x", 0).unwrap().len() <= 5);
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let mut s = store_with(8, vec![]);
        s.record("x", 0.0, f64::NAN);
        s.record("x", f64::INFINITY, 1.0);
        assert!(s.samples("x").is_none());
    }

    #[test]
    fn ingest_maps_counters_gauges_and_histogram_percentiles() {
        let reg = Registry::new();
        reg.add("tuner.retry", 3.0);
        reg.gauge("service.in_flight", 2.0);
        for v in [0.01, 0.02, 0.03] {
            reg.observe("session.propose_s", v);
        }
        let mut s = store_with(16, vec![]);
        s.ingest(&reg.snapshot());
        let names = s.series_names();
        assert!(names.contains(&"tuner.retry"), "{names:?}");
        assert!(names.contains(&"service.in_flight"), "{names:?}");
        assert!(names.contains(&"session.propose_s.count"), "{names:?}");
        assert!(names.contains(&"session.propose_s.p50"), "{names:?}");
        assert!(names.contains(&"session.propose_s.p95"), "{names:?}");
        assert!(names.contains(&"session.propose_s.p99"), "{names:?}");
        assert_eq!(s.latest("session.propose_s.count").unwrap().value, 3.0);
    }

    #[test]
    fn ingest_timestamps_ride_the_epoch() {
        let reg = Registry::new();
        reg.add("c", 1.0);
        let mut s = store_with(16, vec![]);
        s.ingest(&reg.snapshot());
        let t0 = s.latest("c").unwrap().t_s;
        s.rebase();
        s.ingest(&reg.snapshot());
        // After rebase, a fresh registry's near-zero stamp lands after the
        // persisted history, not on top of it.
        assert!(s.latest("c").unwrap().t_s >= t0);
        assert_eq!(s.samples("c").unwrap().len(), 2);
    }

    #[test]
    fn round_trips_bit_exactly() {
        let s = sample_store();
        let back = TimeSeriesStore::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_bytes(), s.to_bytes());
    }

    #[test]
    fn empty_store_round_trips() {
        let s = store_with(4, vec![60.0]);
        let back = TimeSeriesStore::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample_store().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(TimeSeriesStore::from_bytes(&bytes), Err(StoreError::BadMagic)));
        assert!(matches!(TimeSeriesStore::from_bytes(b"AD"), Err(StoreError::Truncated)));
    }

    #[test]
    fn future_version_is_typed() {
        let mut bytes = sample_store().to_bytes();
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        match TimeSeriesStore::from_bytes(&bytes) {
            Err(StoreError::FutureVersion { found }) => assert_eq!(found, FORMAT_VERSION + 1),
            other => panic!("expected FutureVersion, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error_never_a_panic() {
        let bytes = sample_store().to_bytes();
        for cut in 0..bytes.len() {
            let err = TimeSeriesStore::from_bytes(&bytes[..cut])
                .expect_err("truncated chunk must not decode");
            assert!(
                matches!(
                    err,
                    StoreError::Truncated | StoreError::BadChecksum { .. } | StoreError::Corrupt(_)
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_in_the_body_trips_the_checksum() {
        let bytes = sample_store().to_bytes();
        for i in 12..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            match TimeSeriesStore::from_bytes(&corrupt) {
                Err(StoreError::BadChecksum { .. }) => {}
                other => panic!("flip at {i}: expected BadChecksum, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let s = sample_store();
        let bytes = s.to_bytes();
        // Rebuild with an extra trailing section of unknown tag.
        let mut body = bytes[12..].to_vec();
        let mut extra = Writer::new();
        extra.section(b"zzzz", &[1, 2, 3]);
        body.extend_from_slice(&extra.into_bytes());
        let mut out = bytes[..4].to_vec();
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        assert_eq!(TimeSeriesStore::from_bytes(&out).unwrap(), s);
    }

    #[test]
    fn save_load_and_cold_fallback() {
        let dir = std::env::temp_dir().join(format!("adaphet-tsdb-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("history.adts");
        let s = sample_store();
        s.save(&path).unwrap();
        assert_eq!(TimeSeriesStore::load(&path).unwrap(), s);

        // Warm path: same config → persisted rings come back, rebased.
        let (warm, err) = TimeSeriesStore::load_or_new(
            &path,
            TsdbConfig { capacity: 8, resolutions: vec![10.0, 100.0] },
        );
        assert!(err.is_none());
        assert_eq!(warm.len(), s.len());

        // Config drift → cold start, with the reason surfaced.
        let (cold, err) = TimeSeriesStore::load_or_new(
            &path,
            TsdbConfig { capacity: 9, resolutions: vec![10.0] },
        );
        assert!(cold.is_empty());
        assert!(err.is_some());

        // Missing file → cold start, no error.
        let (cold, err) = TimeSeriesStore::load_or_new(&dir.join("absent"), TsdbConfig::default());
        assert!(cold.is_empty() && err.is_none());

        // Corrupt file → cold start, error surfaced.
        fs::write(&path, b"ADTSgarbage").unwrap();
        let (cold, err) = TimeSeriesStore::load_or_new(
            &path,
            TsdbConfig { capacity: 8, resolutions: vec![10.0, 100.0] },
        );
        assert!(cold.is_empty() && err.is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_dump_has_pinned_key_order_and_sorted_series() {
        let j = sample_store().to_json();
        let keys =
            ["\"version\":", "\"capacity\":", "\"resolutions\":", "\"epoch_s\":", "\"series\":"];
        let mut from = 0;
        for k in keys {
            let at = j[from..].find(k).unwrap_or_else(|| panic!("missing {k} in {j}"));
            from += at + k.len();
        }
        // BTreeMap ordering: in_flight sorts before request.
        assert!(j.find("service.in_flight").unwrap() < j.find("service.request").unwrap(), "{j}");
        assert!(j.contains("\"width_s\":10"), "{j}");
    }

    proptest! {
        /// Random stores round-trip bit-identically through the chunk
        /// codec (floats compared via the encoded bytes).
        #[test]
        fn prop_round_trip_bit_identical(
            capacity in 1usize..16,
            n_res in 0usize..3,
            n_series in 0usize..4,
            n_samples in 0usize..40,
            raw in collection::vec(0u64..(1 << 63), 0..200),
        ) {
            let mut pool = raw.into_iter().cycle();
            let mut f = || {
                let v = f64::from_bits(pool.next().unwrap_or(0x3FF0_0000_0000_0000));
                if v.is_finite() { v.abs() % 1.0e9 } else { 1.0 }
            };
            let resolutions: Vec<f64> = (0..n_res).map(|i| 10.0f64.powi(i as i32 + 1)).collect();
            let mut store = TimeSeriesStore::new(TsdbConfig { capacity, resolutions });
            for si in 0..n_series {
                let name = format!("series.{si}");
                let mut t = 0.0;
                for _ in 0..n_samples {
                    t += f();
                    store.record(&name, t, f());
                }
            }
            let back = TimeSeriesStore::from_bytes(&store.to_bytes()).unwrap();
            prop_assert_eq!(back.to_bytes(), store.to_bytes());
        }
    }
}
