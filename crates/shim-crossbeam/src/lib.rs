//! Offline drop-in replacement for the subset of `crossbeam` this
//! workspace uses: an unbounded MPMC channel with cloneable senders *and*
//! receivers (std's `mpsc::Receiver` is single-consumer, so the runtime's
//! worker pool needs this shim).

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is drained and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { inner: inner.clone() }, Receiver { inner })
    }

    impl<T> Sender<T> {
        /// Enqueue a value; `Err` when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut s = self.inner.state.lock().unwrap();
            if s.receivers == 0 {
                return Err(SendError(value));
            }
            s.queue.push_back(value);
            drop(s);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self.inner.state.lock().unwrap();
            s.senders -= 1;
            if s.senders == 0 {
                drop(s);
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a value, blocking while the channel is empty; `Err` once
        /// the channel is drained and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut s = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = s.queue.pop_front() {
                    return Ok(v);
                }
                if s.senders == 0 {
                    return Err(RecvError);
                }
                s = self.inner.ready.wait(s).unwrap();
            }
        }

        /// Non-blocking dequeue; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.state.lock().unwrap().queue.pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.state.lock().unwrap().receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_within_single_consumer() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u32>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn mpmc_distributes_all_items() {
        let (tx, rx) = channel::unbounded::<usize>();
        let n = 1000;
        std::thread::scope(|s| {
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<usize> =
                consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>());
        });
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
