//! The acceptance criterion: N concurrent sessions over a Unix-domain
//! socket produce proposals and histories **bit-identical** to N
//! single-threaded `TunerDriver` runs with the same seeds.
//!
//! Exactness holds end to end because (a) each session is pinned to one
//! shard worker, so its propose/observe order is the driver's order no
//! matter how the OS schedules clients, and (b) `f64`s travel as Rust's
//! shortest round-trip decimal form, which parses back to the same bits.

#![cfg(unix)]

use adaphet_core::{Observation, StrategyKind, TunerDriver};
use adaphet_service::{
    Client, Endpoint, Server, ServiceConfig, SessionManager, SessionSpec, Submitted,
};
use std::path::PathBuf;
use std::sync::Arc;

/// A synthetic response with noise-free structure: ideal-scaling plus a
/// linear overhead, minimized at an interior node count, with a plateau
/// discontinuity below 5 nodes (exercises the GP-discontinuous path).
fn response(n: usize) -> f64 {
    30.0 / n as f64 + 0.8 * n as f64 + if n < 5 { 6.0 } else { 0.0 }
}

fn spec(kind: StrategyKind, seed: u64) -> SessionSpec {
    let mut s = SessionSpec::new(kind, seed, 10);
    s.groups = vec![(1, 5), (6, 10)];
    s.lp = Some((1..=10).map(|n| 30.0 / n as f64).collect());
    s.iters = Some(30);
    s
}

fn uds_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adaphet-it-{}-{tag}.sock", std::process::id()))
}

#[test]
fn eight_concurrent_uds_sessions_match_sequential_drivers_bitwise() {
    const ITERS: usize = 30;
    let kinds = [
        StrategyKind::GpDiscontinuous,
        StrategyKind::Ucb,
        StrategyKind::GpUcb,
        StrategyKind::UcbStruct,
        StrategyKind::DivideConquer,
        StrategyKind::RightLeft,
        StrategyKind::Brent,
        StrategyKind::Random,
    ];
    let path = uds_path("equiv");
    let manager = Arc::new(SessionManager::new(ServiceConfig::default()));
    let mut server = Server::bind(Endpoint::Uds(path.clone()), manager).unwrap();

    // 8 client threads, one UDS connection and one session each, all
    // in flight at once.
    let handles: Vec<_> = kinds
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let path = path.clone();
            std::thread::spawn(move || {
                let seed = i as u64;
                let mut client = Client::connect_uds(&path).unwrap();
                let id = client.create_session(spec(kind, seed)).unwrap();
                let mut proposals = Vec::with_capacity(ITERS);
                for expect_iter in 0..ITERS {
                    let (ticket, iteration, action) = client.get_proposal(id).unwrap();
                    assert_eq!(iteration, expect_iter);
                    proposals.push(action);
                    match client.submit(id, ticket, response(action)).unwrap() {
                        Submitted::Recorded { iteration: it, .. } => assert_eq!(it, expect_iter),
                        Submitted::Retry { .. } => panic!("no resilience policy configured"),
                    }
                }
                let closed = client.close_session(id).unwrap();
                (kind, seed, proposals, closed)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // The observability plane saw all of it: 8 sessions created and
    // closed, every verb accounted for, nothing left in flight.
    let mut observer = Client::connect_uds(&path).unwrap();
    let stats = observer.get_stats().unwrap();
    assert_eq!(stats.version, env!("CARGO_PKG_VERSION"));
    assert!(!stats.draining);
    assert_eq!(stats.sessions_created, 8);
    assert_eq!(stats.sessions_closed, 8);
    assert_eq!(stats.sessions_live, 0);
    assert_eq!(stats.sessions_evicted, 0, "nothing idled out");
    assert_eq!(stats.in_flight, 0, "every ticket resolved");
    let verb = |name: &str| stats.verbs.iter().find(|v| v.verb == name).expect(name);
    assert_eq!(verb("create_session").count, 8);
    assert_eq!(verb("get_proposal").count, (8 * ITERS) as u64);
    assert_eq!(verb("submit_observation").count, (8 * ITERS) as u64);
    assert_eq!(verb("close_session").count, 8);
    assert!(verb("get_proposal").p50 > 0.0, "latency quantiles populated");
    assert_eq!(stats.shards.iter().map(|s| s.sessions).sum::<u64>(), 0);

    server.stop();
    let _ = std::fs::remove_file(&path);

    for (kind, seed, proposals, closed) in results {
        let mut driver = TunerDriver::builder(&spec(kind, seed).space().unwrap())
            .kind(kind)
            .seed(seed)
            .build()
            .unwrap();
        driver.run(ITERS, |n| Observation::of(response(n)));
        let reference = driver.history().records().to_vec();

        // Proposal stream, history, and total time: bit-identical.
        let proposed: Vec<usize> = reference.iter().map(|&(a, _)| a).collect();
        assert_eq!(proposals, proposed, "{kind}: proposal stream diverged over the wire");
        assert_eq!(closed.history, reference, "{kind}: history diverged over the wire");
        assert_eq!(
            closed.total_time.to_bits(),
            driver.history().total_time().to_bits(),
            "{kind}: total time not bit-identical"
        );
        assert_eq!(closed.iterations, ITERS);
    }
}

#[test]
fn posterior_over_the_wire_matches_the_in_process_snapshot() {
    let path = uds_path("posterior");
    let manager = Arc::new(SessionManager::new(ServiceConfig::default()));
    let mut server = Server::bind(Endpoint::Uds(path.clone()), Arc::clone(&manager)).unwrap();

    let mut client = Client::connect_uds(&path).unwrap();
    let id = client.create_session(spec(StrategyKind::GpDiscontinuous, 3)).unwrap();
    assert!(client.get_posterior(id).unwrap().is_none(), "no surrogate before data");
    for _ in 0..12 {
        let (ticket, _, action) = client.get_proposal(id).unwrap();
        client.submit(id, ticket, response(action)).unwrap();
    }
    let wire = client.get_posterior(id).unwrap().expect("fitted posterior");

    // Reference: the same 12 observations through a local session.
    let mut local = TunerDriver::builder(&spec(StrategyKind::GpDiscontinuous, 3).space().unwrap())
        .kind(StrategyKind::GpDiscontinuous)
        .seed(3)
        .build_session()
        .unwrap();
    for _ in 0..12 {
        let p = local.propose().unwrap();
        local.observe(p.ticket, Observation::of(response(p.action))).unwrap();
    }
    let reference = local.posterior().unwrap().points;
    assert_eq!(wire.len(), reference.len());
    for (w, r) in wire.iter().zip(&reference) {
        assert_eq!(w.action, r.action);
        assert_eq!(w.mean.to_bits(), r.mean.to_bits(), "posterior mean at {}", w.action);
        assert_eq!(w.sd.to_bits(), r.sd.to_bits(), "posterior sd at {}", w.action);
        assert_eq!(w.excluded, r.excluded);
    }

    // The lifecycle ring saw the whole exchange: a created event, then
    // alternating propose/recorded pairs, with an empty ledger now.
    let inspected = client.inspect(id).unwrap();
    assert_eq!(inspected.strategy, StrategyKind::GpDiscontinuous.to_string());
    assert_eq!(inspected.iterations, 12);
    assert!(inspected.pending.is_empty(), "all tickets resolved");
    assert!(inspected.cumulative_time > 0.0);
    let kinds: Vec<&str> = inspected.events.iter().map(|e| e.kind.as_str()).collect();
    assert_eq!(kinds[0], "created");
    assert_eq!(kinds.iter().filter(|k| **k == "propose").count(), 12);
    assert_eq!(kinds.iter().filter(|k| **k == "recorded").count(), 12);

    client.close_session(id).unwrap();
    server.stop();
    let _ = std::fs::remove_file(&path);
}

/// Idle eviction and the graceful drain both leave a visible audit
/// trail in the `service.*` counters — over the wire while the daemon
/// lives, and via the stats handle after it has shut down.
#[test]
fn eviction_and_drain_counters_are_observable() {
    use std::time::Duration;

    let path = uds_path("lifecycle");
    let mut manager = SessionManager::new(ServiceConfig {
        idle_timeout: Some(Duration::from_millis(20)),
        ..ServiceConfig::default()
    });
    let stats = Arc::clone(manager.stats());
    let server_manager = Arc::new(SessionManager::new(ServiceConfig {
        idle_timeout: Some(Duration::from_millis(20)),
        ..ServiceConfig::default()
    }));
    let mut server =
        Server::bind(Endpoint::Uds(path.clone()), Arc::clone(&server_manager)).unwrap();
    let mut client = Client::connect_uds(&path).unwrap();

    // Three sessions idle out; the sweep is forced for determinism.
    for seed in 0..3 {
        client.create_session(spec(StrategyKind::Ucb, seed)).unwrap();
    }
    std::thread::sleep(Duration::from_millis(40));
    server_manager.sweep_now();
    let snap = client.get_stats().unwrap();
    assert_eq!(snap.sessions_created, 3);
    assert_eq!(snap.sessions_evicted, 3, "idle sweep evicted all three");
    assert_eq!(snap.sessions_live, 0);
    server.stop();
    let _ = std::fs::remove_file(&path);

    // Separately: a session with an open ticket rides through shutdown
    // and is counted as drained (its ticket abandoned).
    let id =
        match manager.handle(adaphet_service::Request::CreateSession(spec(StrategyKind::Ucb, 9))) {
            adaphet_service::Response::SessionCreated { session } => session,
            other => panic!("expected session_created, got {other:?}"),
        };
    match manager.handle(adaphet_service::Request::GetProposal { session: id }) {
        adaphet_service::Response::Proposal { .. } => {}
        other => panic!("expected proposal, got {other:?}"),
    }
    assert_eq!(manager.stats_snapshot().in_flight, 1);
    manager.shutdown();
    let after = stats.snapshot(env!("CARGO_PKG_VERSION"), true);
    assert_eq!(after.sessions_drained, 1, "shutdown flushed the live session");
    assert_eq!(after.in_flight, 0, "the abandoned ticket closed the gauge");
    assert_eq!(after.sessions_live, 0);
}
