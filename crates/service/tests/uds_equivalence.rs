//! The acceptance criterion: N concurrent sessions over a Unix-domain
//! socket produce proposals and histories **bit-identical** to N
//! single-threaded `TunerDriver` runs with the same seeds.
//!
//! Exactness holds end to end because (a) each session is pinned to one
//! shard worker, so its propose/observe order is the driver's order no
//! matter how the OS schedules clients, and (b) `f64`s travel as Rust's
//! shortest round-trip decimal form, which parses back to the same bits.

#![cfg(unix)]

use adaphet_core::{Observation, StrategyKind, TunerDriver};
use adaphet_service::{
    Client, Endpoint, Server, ServiceConfig, SessionManager, SessionSpec, Submitted,
};
use std::path::PathBuf;
use std::sync::Arc;

/// A synthetic response with noise-free structure: ideal-scaling plus a
/// linear overhead, minimized at an interior node count, with a plateau
/// discontinuity below 5 nodes (exercises the GP-discontinuous path).
fn response(n: usize) -> f64 {
    30.0 / n as f64 + 0.8 * n as f64 + if n < 5 { 6.0 } else { 0.0 }
}

fn spec(kind: StrategyKind, seed: u64) -> SessionSpec {
    let mut s = SessionSpec::new(kind, seed, 10);
    s.groups = vec![(1, 5), (6, 10)];
    s.lp = Some((1..=10).map(|n| 30.0 / n as f64).collect());
    s.iters = Some(30);
    s
}

fn uds_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adaphet-it-{}-{tag}.sock", std::process::id()))
}

#[test]
fn eight_concurrent_uds_sessions_match_sequential_drivers_bitwise() {
    const ITERS: usize = 30;
    let kinds = [
        StrategyKind::GpDiscontinuous,
        StrategyKind::Ucb,
        StrategyKind::GpUcb,
        StrategyKind::UcbStruct,
        StrategyKind::DivideConquer,
        StrategyKind::RightLeft,
        StrategyKind::Brent,
        StrategyKind::Random,
    ];
    let path = uds_path("equiv");
    let manager = Arc::new(SessionManager::new(ServiceConfig::default()));
    let mut server = Server::bind(Endpoint::Uds(path.clone()), manager).unwrap();

    // 8 client threads, one UDS connection and one session each, all
    // in flight at once.
    let handles: Vec<_> = kinds
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let path = path.clone();
            std::thread::spawn(move || {
                let seed = i as u64;
                let mut client = Client::connect_uds(&path).unwrap();
                let id = client.create_session(spec(kind, seed)).unwrap();
                let mut proposals = Vec::with_capacity(ITERS);
                for expect_iter in 0..ITERS {
                    let (ticket, iteration, action) = client.get_proposal(id).unwrap();
                    assert_eq!(iteration, expect_iter);
                    proposals.push(action);
                    match client.submit(id, ticket, response(action)).unwrap() {
                        Submitted::Recorded { iteration: it, .. } => assert_eq!(it, expect_iter),
                        Submitted::Retry { .. } => panic!("no resilience policy configured"),
                    }
                }
                let closed = client.close_session(id).unwrap();
                (kind, seed, proposals, closed)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    server.stop();
    let _ = std::fs::remove_file(&path);

    for (kind, seed, proposals, closed) in results {
        let mut driver = TunerDriver::builder(&spec(kind, seed).space().unwrap())
            .kind(kind)
            .seed(seed)
            .build()
            .unwrap();
        driver.run(ITERS, |n| Observation::of(response(n)));
        let reference = driver.history().records().to_vec();

        // Proposal stream, history, and total time: bit-identical.
        let proposed: Vec<usize> = reference.iter().map(|&(a, _)| a).collect();
        assert_eq!(proposals, proposed, "{kind}: proposal stream diverged over the wire");
        assert_eq!(closed.history, reference, "{kind}: history diverged over the wire");
        assert_eq!(
            closed.total_time.to_bits(),
            driver.history().total_time().to_bits(),
            "{kind}: total time not bit-identical"
        );
        assert_eq!(closed.iterations, ITERS);
    }
}

#[test]
fn posterior_over_the_wire_matches_the_in_process_snapshot() {
    let path = uds_path("posterior");
    let manager = Arc::new(SessionManager::new(ServiceConfig::default()));
    let mut server = Server::bind(Endpoint::Uds(path.clone()), Arc::clone(&manager)).unwrap();

    let mut client = Client::connect_uds(&path).unwrap();
    let id = client.create_session(spec(StrategyKind::GpDiscontinuous, 3)).unwrap();
    assert!(client.get_posterior(id).unwrap().is_none(), "no surrogate before data");
    for _ in 0..12 {
        let (ticket, _, action) = client.get_proposal(id).unwrap();
        client.submit(id, ticket, response(action)).unwrap();
    }
    let wire = client.get_posterior(id).unwrap().expect("fitted posterior");

    // Reference: the same 12 observations through a local session.
    let mut local = TunerDriver::builder(&spec(StrategyKind::GpDiscontinuous, 3).space().unwrap())
        .kind(StrategyKind::GpDiscontinuous)
        .seed(3)
        .build_session()
        .unwrap();
    for _ in 0..12 {
        let p = local.propose().unwrap();
        local.observe(p.ticket, Observation::of(response(p.action))).unwrap();
    }
    let reference = local.posterior().unwrap().points;
    assert_eq!(wire.len(), reference.len());
    for (w, r) in wire.iter().zip(&reference) {
        assert_eq!(w.action, r.action);
        assert_eq!(w.mean.to_bits(), r.mean.to_bits(), "posterior mean at {}", w.action);
        assert_eq!(w.sd.to_bits(), r.sd.to_bits(), "posterior sd at {}", w.action);
        assert_eq!(w.excluded, r.excluded);
    }

    client.close_session(id).unwrap();
    server.stop();
    let _ = std::fs::remove_file(&path);
}
