//! Property: for any session count, seeds, and response-curve shape, N
//! sessions driven **concurrently** through the shared `SessionManager`
//! produce histories bit-identical to N **sequential** single-threaded
//! `TunerDriver` runs with the same seeds. Determinism is per-session
//! (shard pinning serializes a session's operations); the OS thread
//! schedule must be irrelevant.

use adaphet_core::{Observation, StrategyKind, TunerDriver};
use adaphet_service::{Request, Response, ServiceConfig, SessionManager, SessionSpec};
use proptest::prelude::*;

fn curve(work: f64, slope: f64, jump_at: usize, jump: f64) -> impl Fn(usize) -> f64 + Copy {
    move |n: usize| {
        let base = work / n as f64 + slope * n as f64;
        if n < jump_at {
            base + jump
        } else {
            base
        }
    }
}

fn spec(kind: StrategyKind, seed: u64, max_nodes: usize, work: f64) -> SessionSpec {
    let mut s = SessionSpec::new(kind, seed, max_nodes);
    s.lp = Some((1..=max_nodes).map(|k| work / k as f64).collect());
    s
}

/// Drive one managed session to completion, returning its history.
fn drive(
    m: &SessionManager,
    s: SessionSpec,
    iters: usize,
    f: impl Fn(usize) -> f64,
) -> Vec<(usize, f64)> {
    let id = match m.handle(Request::CreateSession(s)) {
        Response::SessionCreated { session } => session,
        other => panic!("create failed: {other:?}"),
    };
    for _ in 0..iters {
        let (ticket, action) = match m.handle(Request::GetProposal { session: id }) {
            Response::Proposal { ticket, action, .. } => (ticket, action),
            other => panic!("propose failed: {other:?}"),
        };
        match m.handle(Request::SubmitObservation { session: id, ticket, duration: f(action) }) {
            Response::Recorded { .. } => {}
            other => panic!("observe failed: {other:?}"),
        }
    }
    match m.handle(Request::CloseSession { session: id }) {
        Response::Closed { history, .. } => history,
        other => panic!("close failed: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn concurrent_managed_sessions_equal_sequential_driver_runs(
        sessions in 2usize..9,
        workers in 1usize..5,
        max_nodes in 4usize..24,
        work in 20.0f64..120.0,
        slope in 0.2f64..1.5,
        seed0 in 0u64..1000,
        iters in 10usize..35,
    ) {
        let f = curve(work, slope, max_nodes / 3 + 1, 5.0);
        let kinds = [
            StrategyKind::GpDiscontinuous,
            StrategyKind::Ucb,
            StrategyKind::GpUcb,
            StrategyKind::Random,
            StrategyKind::DivideConquer,
        ];
        let manager = std::sync::Arc::new(SessionManager::new(ServiceConfig {
            workers,
            idle_timeout: None,
            ..ServiceConfig::default()
        }));

        // Concurrent: one thread per session, distinct seeds.
        let handles: Vec<_> = (0..sessions)
            .map(|i| {
                let m = std::sync::Arc::clone(&manager);
                let kind = kinds[i % kinds.len()];
                let seed = seed0 + i as u64;
                std::thread::spawn(move || {
                    (i, drive(&m, spec(kind, seed, max_nodes, work), iters, f))
                })
            })
            .collect();
        let mut concurrent: Vec<(usize, Vec<(usize, f64)>)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        concurrent.sort_by_key(|&(i, _)| i);

        // Sequential reference: the same seeds through plain drivers.
        for (i, history) in concurrent {
            let kind = kinds[i % kinds.len()];
            let seed = seed0 + i as u64;
            let mut d = TunerDriver::builder(&spec(kind, seed, max_nodes, work).space().unwrap())
                .kind(kind)
                .seed(seed)
                .build()
                .unwrap();
            d.run(iters, |n| Observation::of(f(n)));
            prop_assert_eq!(
                &history[..],
                d.history().records(),
                "session {} ({}, seed {}) diverged from its sequential twin",
                i, kind, seed
            );
        }
    }
}
