//! The zero-perturbation guard for the health/history plane.
//!
//! Two claims, both loose enough to hold in debug builds (CI also runs
//! them in release mode where the margins are enormous):
//!
//! 1. the always-on health fold (`HealthTracker::on_record`) costs
//!    within noise of the same loop without it — it is pure windowed
//!    arithmetic, no allocation beyond the bounded window;
//! 2. a daemon with the history sampler *enabled but idle* answers the
//!    session hot path (propose → observe) within noise of a daemon with
//!    the sampler disabled entirely — the sampler thread parks in
//!    `recv_timeout` and touches nothing the request path locks.

use adaphet_core::{HealthPolicy, HealthTracker, StrategyKind};
use adaphet_service::{
    HistoryConfig, Request, Response, ServiceConfig, SessionManager, SessionSpec,
};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// A work quantum heavy enough to dominate any per-call bookkeeping:
/// ~400 dependent float ops, the metrics crate's overhead-guard idiom.
fn work(seed: f64) -> f64 {
    let mut acc = seed;
    for i in 0..400 {
        acc = acc.mul_add(1.000000001, (i as f64) * 1e-9);
    }
    acc
}

fn min_time<F: FnMut() -> f64>(mut f: F, runs: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn run_bare(records: usize) -> f64 {
    let mut acc = 0.0;
    for t in 0..records {
        acc += work(black_box(t as f64));
    }
    acc
}

fn run_tracked(records: usize) -> f64 {
    let mut tracker = HealthTracker::new(HealthPolicy::default(), 16, Some(4.0), Some(3.0), false);
    let mut acc = 0.0;
    for t in 0..records {
        acc += work(black_box(t as f64));
        tracker.on_record(4.0 + (t % 7) as f64 * 0.1, 0, false);
    }
    black_box(tracker.report().transitions);
    acc
}

#[test]
fn health_fold_costs_within_noise_of_uninstrumented() {
    const RECORDS: usize = 20_000;
    const RUNS: usize = 7;
    black_box(run_bare(RECORDS));
    black_box(run_tracked(RECORDS));
    // Interleave so drift hits both sides equally; compare minima.
    let mut bare = f64::INFINITY;
    let mut tracked = f64::INFINITY;
    for _ in 0..RUNS {
        bare = bare.min(min_time(|| run_bare(RECORDS), 1));
        tracked = tracked.min(min_time(|| run_tracked(RECORDS), 1));
    }
    assert!(
        tracked <= bare * 1.5 + 1e-4,
        "health fold too slow on the record path: {tracked:.6}s vs bare {bare:.6}s"
    );
}

/// Drive `rounds` propose→observe rounds against a fresh session.
fn run_manager_rounds(manager: &SessionManager, rounds: usize) -> f64 {
    let session = match manager.handle(Request::CreateSession(SessionSpec::new(
        StrategyKind::DivideConquer,
        1,
        16,
    ))) {
        Response::SessionCreated { session } => session,
        other => panic!("create failed: {other:?}"),
    };
    let mut acc = 0.0;
    for t in 0..rounds {
        let ticket = match manager.handle(Request::GetProposal { session }) {
            Response::Proposal { ticket, .. } => ticket,
            other => panic!("proposal failed: {other:?}"),
        };
        let duration = 4.0 + (t % 5) as f64 * 0.05;
        acc += duration;
        match manager.handle(Request::SubmitObservation { session, ticket, duration }) {
            Response::Recorded { .. } | Response::Retry { .. } => {}
            other => panic!("submit failed: {other:?}"),
        }
    }
    let _ = manager.handle(Request::CloseSession { session });
    acc
}

#[test]
fn idle_sampler_does_not_perturb_the_request_path() {
    const ROUNDS: usize = 600;
    const RUNS: usize = 7;
    let plain = SessionManager::new(ServiceConfig { workers: 1, ..Default::default() });
    let sampled = SessionManager::new(ServiceConfig {
        workers: 1,
        history: Some(HistoryConfig {
            interval: Duration::from_secs(3600), // parked for the whole test
            ..Default::default()
        }),
        ..Default::default()
    });
    black_box(run_manager_rounds(&plain, ROUNDS));
    black_box(run_manager_rounds(&sampled, ROUNDS));
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    for _ in 0..RUNS {
        off = off.min(min_time(|| run_manager_rounds(&plain, ROUNDS), 1));
        on = on.min(min_time(|| run_manager_rounds(&sampled, ROUNDS), 1));
    }
    // Loose two-sided-in-spirit bound: an idle sampler must stay within
    // noise of no sampler at all (generous slack for scheduler jitter —
    // the manager path is mutex-and-channel bound, not compute bound).
    assert!(
        on <= off * 2.0 + 2e-3,
        "idle sampler perturbs the request path: {on:.6}s vs {off:.6}s without"
    );
}
