//! Health-plane integration: the pinned `get_health` / `GET /health`
//! schema (golden strings — changing them is a wire-compatibility
//! break), live state transitions observed through the verb, and
//! metric-history persistence across manager restarts.

use adaphet_analysis::Json;
use adaphet_core::StrategyKind;
use adaphet_service::{
    HealthInfo, HistoryConfig, Request, Response, ServiceConfig, SessionManager, SessionSpec,
};
use std::path::PathBuf;
use std::time::Duration;

fn create(manager: &SessionManager, spec: SessionSpec) -> u64 {
    match manager.handle(Request::CreateSession(spec)) {
        Response::SessionCreated { session } => session,
        other => panic!("create failed: {other:?}"),
    }
}

/// One propose/observe round at a fixed duration.
fn measure(manager: &SessionManager, session: u64, duration: f64) {
    let ticket = match manager.handle(Request::GetProposal { session }) {
        Response::Proposal { ticket, .. } => ticket,
        other => panic!("proposal failed: {other:?}"),
    };
    match manager.handle(Request::SubmitObservation { session, ticket, duration }) {
        Response::Recorded { .. } | Response::Retry { .. } => {}
        other => panic!("submit failed: {other:?}"),
    }
}

fn health(manager: &SessionManager, session: u64) -> HealthInfo {
    match manager.handle(Request::GetHealth { session }) {
        Response::Health(info) => info,
        other => panic!("get_health failed: {other:?}"),
    }
}

// ------------------------------------------------------------- golden

/// The `health` wire frame, every optional field populated. This string
/// is the contract: field order, spellings and null-handling are what
/// deployed clients parse.
#[test]
fn health_frame_schema_is_pinned() {
    let info = HealthInfo {
        session: 7,
        state: "warn".into(),
        reason: Some("fault-pressure".into()),
        records: 19,
        since_best: 3,
        regret_slope: Some(-0.25),
        retries_window: 1,
        faults_window: 2,
        posterior_sd_max: Some(0.5),
        lp_gap: Some(1.5),
        band_record: Some(4),
        warm_started: true,
        transitions: 2,
    };
    assert_eq!(
        Response::Health(info).to_json(),
        "{\"type\":\"health\",\"session\":7,\"state\":\"warn\",\"reason\":\"fault-pressure\",\
         \"records\":19,\"since_best\":3,\"regret_slope\":-0.25,\"retries_window\":1,\
         \"faults_window\":2,\"posterior_sd_max\":0.5,\"lp_gap\":1.5,\"band_record\":4,\
         \"warm_started\":true,\"transitions\":2}"
    );
}

/// The `/health` endpoint body for a fresh session: absent signals are
/// literal `null`, never omitted keys.
#[test]
fn health_endpoint_json_is_pinned_for_a_fresh_session() {
    let manager = SessionManager::new(ServiceConfig { workers: 1, ..Default::default() });
    let id = create(&manager, SessionSpec::new(StrategyKind::DivideConquer, 1, 8));
    let body = manager.health_json();
    assert!(body.starts_with("{\"uptime_s\":"), "{body}");
    assert!(body.contains("\"draining\":false"), "{body}");
    let expected = format!(
        "{{\"session\":{id},\"state\":\"ok\",\"reason\":null,\"records\":0,\"since_best\":0,\
         \"regret_slope\":null,\"retries_window\":0,\"faults_window\":0,\
         \"posterior_sd_max\":null,\"lp_gap\":null,\"band_record\":null,\
         \"warm_started\":false,\"transitions\":0}}"
    );
    assert!(body.contains(&expected), "fresh-session object drifted:\n  body: {body}");
    // And it is the same serialization the wire verb uses.
    let wire = Response::Health(health(&manager, id)).to_json();
    assert_eq!(wire, format!("{{\"type\":\"health\",{}", &expected[1..]));
}

// -------------------------------------------------------- transitions

/// A session that stops improving outside the best-known band is
/// observed stalling through `get_health`, and recovers once it finds
/// the band — the same fold the core fault test drives, seen from the
/// service side.
#[test]
fn get_health_observes_stall_and_recovery() {
    let manager = SessionManager::new(ServiceConfig { workers: 1, ..Default::default() });
    let mut spec = SessionSpec::new(StrategyKind::DivideConquer, 7, 8);
    spec.best_known = Some(4.0); // band tops out at 4.4
    let id = create(&manager, spec);

    measure(&manager, id, 6.0); // session best, still above the band
    assert_eq!(health(&manager, id).state, "ok");
    // No new best for stall_k records (+hysteresis): stalled.
    for _ in 0..14 {
        measure(&manager, id, 6.5);
    }
    let stalled = health(&manager, id);
    assert_eq!(stalled.state, "stalled", "{stalled:?}");
    assert!(stalled.since_best >= 10);
    assert_eq!(stalled.transitions, 1);

    // Finding the band clears the stall.
    measure(&manager, id, 4.2);
    measure(&manager, id, 4.2);
    let recovered = health(&manager, id);
    assert_eq!(recovered.state, "ok", "{recovered:?}");
    assert_eq!(recovered.band_record, Some(16));
    assert_eq!(recovered.transitions, 2);

    // The per-state gauges follow the published summaries.
    let report = manager.stats().report(false);
    let ok_sessions = report
        .gauges
        .iter()
        .find(|(name, _)| name == "service.health.sessions.ok")
        .map(|&(_, v)| v);
    assert_eq!(ok_sessions, Some(1.0));
}

// -------------------------------------------------------- persistence

fn temp_history_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adaphet-hist-{tag}-{}.adts", std::process::id()))
}

/// The history store written at shutdown is the history store a
/// restarted daemon serves: samples survive the restart and new samples
/// append after them.
#[test]
fn history_persists_across_manager_restarts() {
    let file = temp_history_file("restart");
    let _ = std::fs::remove_file(&file);
    let config = || ServiceConfig {
        workers: 1,
        history: Some(HistoryConfig {
            interval: Duration::from_secs(3600), // never fires on its own
            persist: Some(file.clone()),
            ..Default::default()
        }),
        ..Default::default()
    };

    let points_of = |manager: &SessionManager, series: &str| -> usize {
        let doc = Json::parse(&manager.history_json().expect("history enabled")).unwrap();
        let Some(Json::Arr(all)) = doc.get("series") else { panic!("no series array") };
        all.iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(series))
            .and_then(|s| match s.get("points") {
                Some(Json::Arr(p)) => Some(p.len()),
                _ => None,
            })
            .unwrap_or(0)
    };

    let mut first = SessionManager::new(config());
    create(&first, SessionSpec::new(StrategyKind::DivideConquer, 1, 4));
    assert!(first.sample_history_now());
    let before = points_of(&first, "service.sessions.live");
    assert!(before >= 1, "sampled at least once");
    first.shutdown(); // final ingest + save

    let second = SessionManager::new(config());
    assert!(second.sample_history_now());
    let after = points_of(&second, "service.sessions.live");
    assert!(
        after > before,
        "restarted store must carry the saved samples plus the new one \
         (before {before}, after {after})"
    );
    let _ = std::fs::remove_file(&file);
}
