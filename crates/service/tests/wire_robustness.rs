//! Protocol robustness: malformed frames must not kill the connection,
//! and sessions must survive their creator's disconnection (tickets are
//! resolvable from a fresh connection).

#![cfg(unix)]

use adaphet_analysis::Json;
use adaphet_core::StrategyKind;
use adaphet_service::protocol::{read_frame, write_frame, Request, Response};
use adaphet_service::{
    Client, ClientError, Endpoint, ErrorCode, Server, ServiceConfig, SessionManager, SessionSpec,
    Submitted,
};
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;

fn uds_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adaphet-rob-{}-{tag}.sock", std::process::id()))
}

fn start(tag: &str) -> (PathBuf, Server) {
    let path = uds_path(tag);
    let manager = Arc::new(SessionManager::new(ServiceConfig::default()));
    let server = Server::bind(Endpoint::Uds(path.clone()), manager).unwrap();
    (path, server)
}

fn read_reply(conn: &mut UnixStream) -> Response {
    let payload = read_frame(conn).unwrap().expect("server replied");
    Response::from_json(&Json::parse(std::str::from_utf8(&payload).unwrap()).unwrap()).unwrap()
}

#[test]
fn malformed_frames_get_typed_errors_and_the_connection_lives_on() {
    let (path, mut server) = start("malformed");
    let mut conn = UnixStream::connect(&path).unwrap();

    // 1. Binary garbage (not UTF-8) under a well-formed length prefix.
    conn.write_all(&4u32.to_be_bytes()).unwrap();
    conn.write_all(&[0xff, 0xfe, 0x00, 0x80]).unwrap();
    match read_reply(&mut conn) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::MalformedFrame),
        other => panic!("{other:?}"),
    }

    // 2. Truncated JSON document.
    write_frame(&mut conn, "{\"type\":\"pi").unwrap();
    match read_reply(&mut conn) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::MalformedFrame),
        other => panic!("{other:?}"),
    }

    // 3. Valid JSON, unknown request type.
    write_frame(&mut conn, "{\"type\":\"warp-core-breach\"}").unwrap();
    match read_reply(&mut conn) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("{other:?}"),
    }

    // 4. Valid request shape, invalid spec (oracle without its best).
    write_frame(&mut conn, "{\"type\":\"create_session\",\"strategy\":\"oracle\",\"max_nodes\":4}")
        .unwrap();
    match read_reply(&mut conn) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("{other:?}"),
    }

    // After all four, the same connection still serves real traffic.
    write_frame(&mut conn, &Request::Ping.to_json()).unwrap();
    assert!(matches!(read_reply(&mut conn), Response::Pong { .. }));

    server.stop();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sessions_survive_a_mid_measurement_disconnect() {
    let (path, mut server) = start("reconnect");

    // Client A creates a session, takes a proposal... and vanishes.
    let (id, ticket, action) = {
        let mut a = Client::connect_uds(&path).unwrap();
        let id = a.create_session(SessionSpec::new(StrategyKind::Ucb, 7, 8)).unwrap();
        let (ticket, _, action) = a.get_proposal(id).unwrap();
        (id, ticket, action)
        // `a` drops here: the socket closes with the ticket open.
    };

    // Client B resolves A's ticket over a fresh connection — sessions
    // belong to the manager, not to the socket that created them.
    let mut b = Client::connect_uds(&path).unwrap();
    match b.submit(id, ticket, 2.5).unwrap() {
        Submitted::Recorded { iteration, .. } => assert_eq!(iteration, 0),
        other => panic!("{other:?}"),
    }
    let closed = b.close_session(id).unwrap();
    assert_eq!(closed.history, vec![(action, 2.5)]);

    server.stop();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_closed_server_socket_reads_as_clean_eof_for_the_client() {
    let (path, mut server) = start("eof");
    let mut client = Client::connect_uds(&path).unwrap();
    client.ping().unwrap();
    client.shutdown().unwrap();
    server.wait();
    // The daemon stopped; the next call fails with a transport error or a
    // clean "closed before replying", never a hang or a panic.
    match client.ping() {
        Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => {}
        other => panic!("expected a transport failure, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}
