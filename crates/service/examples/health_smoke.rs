//! CI probe for the health plane: drive one session into a stall and
//! back out, watching the published state through `get_health` the whole
//! way. Exits non-zero unless the session (a) leaves `ok`, and (b)
//! recovers to `ok` after it finds the best-known band.
//!
//! ```text
//! adaphet-serve --uds /tmp/adaphet.sock &
//! cargo run -p adaphet-service --example health_smoke -- /tmp/adaphet.sock
//! ```

use adaphet_core::StrategyKind;
use adaphet_service::{Client, SessionSpec, Submitted};
use std::io::{Read, Write};

/// One propose/observe round at a fixed duration.
fn submit<S: Read + Write>(client: &mut Client<S>, id: u64, duration: f64) -> Result<(), String> {
    let (ticket, _iter, _action) = client.get_proposal(id).map_err(|e| e.to_string())?;
    match client.submit(id, ticket, duration).map_err(|e| e.to_string())? {
        Submitted::Recorded { .. } | Submitted::Retry { .. } => Ok(()),
    }
}

fn run(path: &str) -> Result<(), String> {
    let mut client = Client::connect_uds(path).map_err(|e| e.to_string())?;
    let mut spec = SessionSpec::new(StrategyKind::DivideConquer, 7, 8);
    spec.best_known = Some(4.0); // convergence band tops out at 4.4 s
    let id = client.create_session(spec).map_err(|e| e.to_string())?;

    // Plateau above the band: no new best for long enough that the
    // stall rule (plus hysteresis) must fire.
    submit(&mut client, id, 6.0)?;
    let fresh = client.get_health(id).map_err(|e| e.to_string())?;
    if fresh.state != "ok" {
        return Err(format!("fresh session not ok: {fresh:?}"));
    }
    let mut unhealthy = None;
    for i in 0..20 {
        submit(&mut client, id, 6.5)?;
        let h = client.get_health(id).map_err(|e| e.to_string())?;
        if h.state != "ok" {
            unhealthy = Some((i + 2, h));
            break;
        }
    }
    let Some((records, h)) = unhealthy else {
        return Err("session never left ok despite 21 stalled records".into());
    };
    println!("health left ok: {} after {records} records", h.state);

    // Finding the band clears the stall.
    submit(&mut client, id, 4.2)?;
    submit(&mut client, id, 4.2)?;
    let recovered = client.get_health(id).map_err(|e| e.to_string())?;
    if recovered.state != "ok" {
        return Err(format!("session did not recover: {recovered:?}"));
    }
    println!("health recovered: ok ({} transitions)", recovered.transitions);
    client.close_session(id).map_err(|e| e.to_string())?;
    Ok(())
}

fn main() {
    let path = match std::env::args().nth(1) {
        Some(path) => path,
        None => {
            eprintln!("usage: health_smoke <uds-socket-path>");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&path) {
        eprintln!("health_smoke: {e}");
        std::process::exit(1);
    }
}
