//! Drive two concurrent tuning sessions against a running `adaphet-serve`
//! daemon over a Unix-domain socket — the CI service-smoke workload, and
//! the README's quickstart client.
//!
//! ```text
//! adaphet-serve --uds /tmp/adaphet.sock --telemetry-dir /tmp/adaphet-telemetry &
//! cargo run -p adaphet-service --example uds_client -- /tmp/adaphet.sock
//! cargo run -p adaphet-service --example uds_client -- /tmp/adaphet.sock --shutdown
//! ```
//!
//! Each thread opens its own connection, creates a session (different
//! strategy and seed), runs a synthetic application for 30 iterations,
//! prints the closing summary, and closes the session. With `--shutdown`
//! the daemon is asked to drain and exit instead of running sessions.

use adaphet_core::StrategyKind;
use adaphet_service::{Client, SessionSpec, Submitted};

/// Synthetic response: ideal scaling plus linear overhead, with a
/// discontinuity below 5 nodes — minimized in the interior.
fn response(n: usize) -> f64 {
    30.0 / n as f64 + 0.8 * n as f64 + if n < 5 { 6.0 } else { 0.0 }
}

fn run_session(path: &str, kind: StrategyKind, seed: u64) -> Result<(), String> {
    let mut client = Client::connect_uds(path).map_err(|e| e.to_string())?;
    let mut spec = SessionSpec::new(kind, seed, 10);
    spec.lp = Some((1..=10).map(|n| 30.0 / n as f64).collect());
    spec.iters = Some(30);
    let id = client.create_session(spec).map_err(|e| e.to_string())?;
    for _ in 0..30 {
        let (ticket, _iteration, action) = client.get_proposal(id).map_err(|e| e.to_string())?;
        let mut duration = response(action); // "run" the iteration
        loop {
            match client.submit(id, ticket, duration).map_err(|e| e.to_string())? {
                Submitted::Recorded { .. } => break,
                Submitted::Retry { action, .. } => duration = response(action),
            }
        }
    }
    let closed = client.close_session(id).map_err(|e| e.to_string())?;
    println!(
        "session {id} ({kind}, seed {seed}): {} iterations, total {:.1}s, best n = {:?}",
        closed.iterations, closed.total_time, closed.best_action
    );
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = argv.first().cloned() else {
        eprintln!("usage: uds_client SOCKET_PATH [--shutdown]");
        std::process::exit(2);
    };
    if argv.iter().any(|a| a == "--shutdown") {
        let mut client = Client::connect_uds(&path).expect("connect for shutdown");
        client.shutdown().expect("daemon acknowledged shutdown");
        println!("daemon is draining");
        return;
    }
    let sessions = [(StrategyKind::GpDiscontinuous, 42u64), (StrategyKind::Ucb, 7u64)];
    let handles: Vec<_> = sessions
        .into_iter()
        .map(|(kind, seed)| {
            let path = path.clone();
            std::thread::spawn(move || run_session(&path, kind, seed))
        })
        .collect();
    let mut failed = false;
    for handle in handles {
        if let Err(e) = handle.join().expect("client thread") {
            eprintln!("session failed: {e}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("both concurrent sessions completed");
}
