//! Drive two concurrent tuning sessions against a running `adaphet-serve`
//! daemon over a Unix-domain socket — the CI service-smoke workload, and
//! the README's quickstart client.
//!
//! ```text
//! adaphet-serve --uds /tmp/adaphet.sock --telemetry-dir /tmp/adaphet-telemetry &
//! cargo run -p adaphet-service --example uds_client -- /tmp/adaphet.sock
//! cargo run -p adaphet-service --example uds_client -- /tmp/adaphet.sock --shutdown
//! ```
//!
//! Each thread opens its own connection, creates a session (different
//! strategy and seed), runs a synthetic application for 30 iterations,
//! prints the closing summary, and closes the session. With `--shutdown`
//! the daemon is asked to drain and exit instead of running sessions.
//!
//! With `--warm MIN_SIMILARITY` the client instead probes the daemon's
//! persistent surrogate store (`adaphet-serve --store-dir`): it runs one
//! cold and one warm-start GP-discontinuous session with the same seed
//! and exits non-zero unless their proposal sequences diverge — which
//! they must once a snapshot from an earlier daemon life is folded in,
//! and cannot if the warm session silently fell back to cold.

use adaphet_core::StrategyKind;
use adaphet_service::{Client, SessionSpec, Submitted};

/// Synthetic response: ideal scaling plus linear overhead, with a
/// discontinuity below 5 nodes — minimized in the interior.
fn response(n: usize) -> f64 {
    30.0 / n as f64 + 0.8 * n as f64 + if n < 5 { 6.0 } else { 0.0 }
}

fn run_session(path: &str, kind: StrategyKind, seed: u64) -> Result<(), String> {
    let mut client = Client::connect_uds(path).map_err(|e| e.to_string())?;
    let mut spec = SessionSpec::new(kind, seed, 10);
    spec.lp = Some((1..=10).map(|n| 30.0 / n as f64).collect());
    spec.iters = Some(30);
    let id = client.create_session(spec).map_err(|e| e.to_string())?;
    for _ in 0..30 {
        let (ticket, _iteration, action) = client.get_proposal(id).map_err(|e| e.to_string())?;
        let mut duration = response(action); // "run" the iteration
        loop {
            match client.submit(id, ticket, duration).map_err(|e| e.to_string())? {
                Submitted::Recorded { .. } => break,
                Submitted::Retry { action, .. } => duration = response(action),
            }
        }
    }
    let closed = client.close_session(id).map_err(|e| e.to_string())?;
    println!(
        "session {id} ({kind}, seed {seed}): {} iterations, total {:.1}s, best n = {:?}",
        closed.iterations, closed.total_time, closed.best_action
    );
    Ok(())
}

/// Run one GP-discontinuous session (optionally warm-started from the
/// daemon's store) and return its proposal sequence.
fn action_trace(
    path: &str,
    seed: u64,
    warm: Option<f64>,
    iters: usize,
) -> Result<Vec<usize>, String> {
    let mut client = Client::connect_uds(path).map_err(|e| e.to_string())?;
    let mut spec = SessionSpec::new(StrategyKind::GpDiscontinuous, seed, 10);
    spec.lp = Some((1..=10).map(|n| 30.0 / n as f64).collect());
    spec.warm_start = warm;
    let id = client.create_session(spec).map_err(|e| e.to_string())?;
    let mut actions = Vec::with_capacity(iters);
    for _ in 0..iters {
        let (ticket, _iteration, action) = client.get_proposal(id).map_err(|e| e.to_string())?;
        actions.push(action);
        let mut duration = response(action);
        loop {
            match client.submit(id, ticket, duration).map_err(|e| e.to_string())? {
                Submitted::Recorded { .. } => break,
                Submitted::Retry { action, .. } => duration = response(action),
            }
        }
    }
    client.close_session(id).map_err(|e| e.to_string())?;
    Ok(actions)
}

/// `--warm` mode: the warm session must not replay the cold
/// initialization — proof the restarted daemon loaded a snapshot. The
/// warm session runs FIRST: its store lookup happens before this probe
/// closes any session of its own, so the only snapshots it can draw on
/// are the ones an earlier daemon life persisted.
fn check_warm_start(path: &str, min_similarity: f64) -> Result<(), String> {
    let warm = action_trace(path, 1234, Some(min_similarity), 8)?;
    let cold = action_trace(path, 1234, None, 8)?;
    println!("cold actions: {cold:?}");
    println!("warm actions: {warm:?}");
    if warm == cold {
        return Err("warm session replayed the cold initialization — no snapshot was loaded".into());
    }
    println!("warm-start engaged: proposal sequences diverge");
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = argv.first().cloned() else {
        eprintln!("usage: uds_client SOCKET_PATH [--shutdown | --warm MIN_SIMILARITY]");
        std::process::exit(2);
    };
    if let Some(i) = argv.iter().position(|a| a == "--warm") {
        let min_similarity: f64 =
            argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--warm needs a similarity in [0, 1]");
                std::process::exit(2);
            });
        if let Err(e) = check_warm_start(&path, min_similarity) {
            eprintln!("warm-start probe failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    if argv.iter().any(|a| a == "--shutdown") {
        let mut client = Client::connect_uds(&path).expect("connect for shutdown");
        client.shutdown().expect("daemon acknowledged shutdown");
        println!("daemon is draining");
        return;
    }
    let sessions = [(StrategyKind::GpDiscontinuous, 42u64), (StrategyKind::Ucb, 7u64)];
    let handles: Vec<_> = sessions
        .into_iter()
        .map(|(kind, seed)| {
            let path = path.clone();
            std::thread::spawn(move || run_session(&path, kind, seed))
        })
        .collect();
    let mut failed = false;
    for handle in handles {
        if let Err(e) = handle.join().expect("client thread") {
            eprintln!("session failed: {e}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("both concurrent sessions completed");
}
