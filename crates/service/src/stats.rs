//! The service's always-on observability state: counters, per-verb
//! latency histograms, live gauges, spans, and per-session event rings.
//!
//! [`ServiceStats`] owns a private [`Registry`] that is *always*
//! collecting — `GetStats` and `GET /metrics` must answer even when the
//! operator never installed a global recorder. Every write is mirrored
//! to [`adaphet_metrics::global()`] so the pre-existing `--metrics`
//! report keeps seeing the same `service.*` names it always has (the
//! global mirror is a no-op until installed, so the dual write costs one
//! atomic load on the cold path).
//!
//! Shard-level gauges (queue depth, registered sessions) and the
//! in-flight ticket count live in plain atomics updated by the workers,
//! so a `GetStats` snapshot never blocks on — or perturbs — the shard
//! queues it is describing.

use crate::protocol::{HealthInfo, SessionEvent, ShardStats, StatsSnapshot, VerbStats};
use adaphet_metrics::{MetricsReport, Recorder, Registry, Spans};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// Default capacity of the recent-span ring kept by the manager.
pub const DEFAULT_SPANS_CAPACITY: usize = 256;

/// Shared observability state for one [`SessionManager`](crate::SessionManager).
pub struct ServiceStats {
    registry: Registry,
    spans: Spans,
    in_flight: AtomicI64,
    queue_depth: Vec<AtomicU64>,
    shard_sessions: Vec<AtomicU64>,
    health: Mutex<BTreeMap<u64, HealthInfo>>,
}

impl ServiceStats {
    /// Fresh stats for a manager with `workers` shards.
    pub fn new(workers: usize) -> Self {
        ServiceStats {
            registry: Registry::new(),
            spans: Spans::with_capacity(DEFAULT_SPANS_CAPACITY),
            in_flight: AtomicI64::new(0),
            queue_depth: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            shard_sessions: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            health: Mutex::new(BTreeMap::new()),
        }
    }

    /// Publish one session's latest health report. Workers call this
    /// after every state-bearing verb so `/health` answers without
    /// touching the shard queues. New transitions observed since the
    /// previous publish bump the `service.health.transitions` counter.
    pub fn set_health(&self, info: HealthInfo) {
        let mut map = self.health.lock().unwrap();
        let prior = map.get(&info.session).map_or(0, |old| old.transitions);
        let delta = info.transitions.saturating_sub(prior);
        map.insert(info.session, info);
        drop(map);
        if delta > 0 {
            self.count("service.health.transitions", delta as f64);
        }
    }

    /// Forget a retired session's health entry.
    pub fn remove_health(&self, session: u64) {
        self.health.lock().unwrap().remove(&session);
    }

    /// Latest published health reports, ordered by session id.
    pub fn health_infos(&self) -> Vec<HealthInfo> {
        self.health.lock().unwrap().values().cloned().collect()
    }

    /// The span collector for request-lifecycle tracing.
    pub fn spans(&self) -> &Spans {
        &self.spans
    }

    /// Monotonic seconds since the manager started.
    pub fn uptime_s(&self) -> f64 {
        self.registry.uptime_s()
    }

    /// Bump a counter in the local registry and the global mirror.
    pub fn count(&self, name: &str, delta: f64) {
        self.registry.add(name, delta);
        adaphet_metrics::global().add(name, delta);
    }

    /// Observe a duration in the local registry and the global mirror.
    pub fn observe(&self, name: &str, seconds: f64) {
        self.registry.observe(name, seconds);
        adaphet_metrics::global().observe(name, seconds);
    }

    /// Adjust the open-proposal-ticket gauge (`+1` propose, `-1` resolve).
    pub fn in_flight_add(&self, delta: i64) {
        self.in_flight.fetch_add(delta, Ordering::Relaxed);
    }

    /// Open proposal tickets across all sessions (clamped at 0).
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed).max(0) as u64
    }

    /// A job entered shard `shard`'s queue.
    pub fn queue_push(&self, shard: usize) {
        self.queue_depth[shard].fetch_add(1, Ordering::Relaxed);
    }

    /// A job left shard `shard`'s queue (about to be processed).
    pub fn queue_pop(&self, shard: usize) {
        // Saturating: a Stop sentinel racing a late pop must not wrap.
        let _ = self.queue_depth[shard]
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| d.checked_sub(1));
    }

    /// Publish shard `shard`'s registered-session count.
    pub fn set_shard_sessions(&self, shard: usize, sessions: u64) {
        self.shard_sessions[shard].store(sessions, Ordering::Relaxed);
    }

    /// Sessions registered across all shards, right now.
    pub fn sessions_live(&self) -> u64 {
        self.shard_sessions.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// Build the wire-level service snapshot.
    pub fn snapshot(&self, version: &str, draining: bool) -> StatsSnapshot {
        let report = self.registry.snapshot();
        let counter = |name: &str| {
            report.counters.iter().find(|(k, _)| k == name).map_or(0, |&(_, v)| v as u64)
        };
        // Registry snapshots are name-sorted, so the verbs arrive sorted.
        let verbs = report
            .histograms
            .iter()
            .filter_map(|(name, h)| {
                let verb = name.strip_prefix("service.verb.")?.strip_suffix("_s")?;
                Some(VerbStats {
                    verb: verb.to_string(),
                    count: h.count,
                    p50: h.p50(),
                    p95: h.p95(),
                    p99: h.p99(),
                })
            })
            .collect();
        let shards = (0..self.queue_depth.len())
            .map(|i| ShardStats {
                shard: i,
                sessions: self.shard_sessions[i].load(Ordering::Relaxed),
                queue_depth: self.queue_depth[i].load(Ordering::Relaxed),
            })
            .collect();
        StatsSnapshot {
            version: version.to_string(),
            uptime_s: report.monotonic_s,
            draining,
            sessions_live: self.sessions_live(),
            sessions_created: counter("service.session.created"),
            sessions_closed: counter("service.session.closed"),
            sessions_evicted: counter("service.session.evicted"),
            sessions_drained: counter("service.session.drained"),
            in_flight: self.in_flight(),
            connections: counter("service.connection"),
            requests: counter("service.request"),
            malformed: counter("service.malformed"),
            errors: counter("service.error"),
            verbs,
            shards,
        }
    }

    /// Freeze everything into a [`MetricsReport`], refreshing the live
    /// gauges first — this is what `GET /metrics` serializes.
    pub fn report(&self, draining: bool) -> MetricsReport {
        self.registry.gauge("service.in_flight", self.in_flight() as f64);
        self.registry.gauge("service.sessions.live", self.sessions_live() as f64);
        self.registry.gauge("service.draining", if draining { 1.0 } else { 0.0 });
        for (i, d) in self.queue_depth.iter().enumerate() {
            self.registry
                .gauge(&format!("service.shard.{i}.queue_depth"), d.load(Ordering::Relaxed) as f64);
            self.registry.gauge(
                &format!("service.shard.{i}.sessions"),
                self.shard_sessions[i].load(Ordering::Relaxed) as f64,
            );
        }
        // Sessions per folded health state, so dashboards can alert on
        // "any session not ok" without parsing `/health`.
        let mut by_state = [("ok", 0u64), ("warn", 0), ("stalled", 0), ("diverging", 0)];
        for info in self.health.lock().unwrap().values() {
            if let Some(slot) = by_state.iter_mut().find(|(name, _)| *name == info.state) {
                slot.1 += 1;
            }
        }
        for (name, n) in by_state {
            self.registry.gauge(&format!("service.health.sessions.{name}"), n as f64);
        }
        self.registry.snapshot()
    }
}

/// A bounded, seq-numbered ring of one session's lifecycle events.
///
/// Owned by the session's shard worker, so pushes are single-threaded
/// and need no lock; `Inspect` reads it on the same worker.
pub struct EventRing {
    capacity: usize,
    next_seq: u64,
    buf: VecDeque<SessionEvent>,
}

impl EventRing {
    /// A ring keeping the most recent `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        EventRing { capacity: capacity.max(1), next_seq: 0, buf: VecDeque::new() }
    }

    /// Append one event, evicting the oldest when full.
    pub fn push(
        &mut self,
        t_s: f64,
        kind: &str,
        ticket: Option<u64>,
        action: Option<usize>,
        iteration: Option<usize>,
        duration: Option<f64>,
    ) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(SessionEvent {
            seq: self.next_seq,
            t_s,
            kind: kind.to_string(),
            ticket,
            action,
            iteration,
            duration,
        });
        self.next_seq += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<SessionEvent> {
        self.buf.iter().cloned().collect()
    }

    /// Events the ring has already evicted: every push takes a seq, so
    /// whatever the buffer no longer holds was dropped.
    pub fn dropped(&self) -> u64 {
        self.next_seq - self.buf.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_counters_verbs_and_shards() {
        let s = ServiceStats::new(2);
        s.count("service.request", 3.0);
        s.count("service.session.created", 2.0);
        s.observe("service.verb.ping_s", 0.0005);
        s.observe("service.verb.get_proposal_s", 0.02);
        s.in_flight_add(2);
        s.queue_push(1);
        s.set_shard_sessions(0, 2);
        let snap = s.snapshot("9.9.9", true);
        assert_eq!(snap.version, "9.9.9");
        assert!(snap.draining);
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.sessions_created, 2);
        assert_eq!(snap.sessions_live, 2);
        assert_eq!(snap.in_flight, 2);
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.shards[1].queue_depth, 1);
        // Verb histograms surface sorted by verb name, `_s` stripped.
        let verbs: Vec<&str> = snap.verbs.iter().map(|v| v.verb.as_str()).collect();
        assert_eq!(verbs, vec!["get_proposal", "ping"]);
        assert!(snap.verbs[1].p50 > 0.0 && snap.verbs[1].p50 <= 0.001);
    }

    #[test]
    fn queue_pop_saturates_at_zero() {
        let s = ServiceStats::new(1);
        s.queue_pop(0);
        assert_eq!(s.snapshot("", false).shards[0].queue_depth, 0);
        s.queue_push(0);
        s.queue_pop(0);
        s.queue_pop(0);
        assert_eq!(s.snapshot("", false).shards[0].queue_depth, 0);
    }

    #[test]
    fn report_injects_live_gauges_for_the_exposition() {
        let s = ServiceStats::new(1);
        s.in_flight_add(1);
        s.queue_push(0);
        let p = s.report(true).to_prometheus();
        assert!(p.contains("adaphet_service_in_flight 1\n"), "{p}");
        assert!(p.contains("adaphet_service_draining 1\n"), "{p}");
        assert!(p.contains("adaphet_service_shard_0_queue_depth 1\n"), "{p}");
    }

    #[test]
    fn event_ring_is_bounded_with_monotone_seqs() {
        let mut ring = EventRing::new(3);
        for i in 0..5 {
            ring.push(i as f64, "propose", Some(i), Some(4), Some(i as usize), None);
        }
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(events[0].kind, "propose");
    }

    #[test]
    fn event_ring_counts_what_it_evicted() {
        let mut ring = EventRing::new(3);
        assert_eq!(ring.dropped(), 0);
        for i in 0..3 {
            ring.push(i as f64, "propose", None, None, None, None);
        }
        assert_eq!(ring.dropped(), 0, "nothing evicted until the ring wraps");
        for i in 3..8 {
            ring.push(i as f64, "propose", None, None, None, None);
        }
        assert_eq!(ring.dropped(), 5);
        assert_eq!(ring.events().len(), 3);
    }

    fn health(session: u64, state: &str, transitions: u64) -> HealthInfo {
        HealthInfo {
            session,
            state: state.into(),
            reason: None,
            records: 0,
            since_best: 0,
            regret_slope: None,
            retries_window: 0,
            faults_window: 0,
            posterior_sd_max: None,
            lp_gap: None,
            band_record: None,
            warm_started: false,
            transitions,
        }
    }

    #[test]
    fn health_publishes_count_transitions_once() {
        let s = ServiceStats::new(1);
        s.set_health(health(1, "ok", 0));
        s.set_health(health(2, "warn", 1));
        // Re-publishing the same report must not recount its transition.
        s.set_health(health(2, "warn", 1));
        s.set_health(health(2, "ok", 2));
        let snap = s.report(false);
        let transitions =
            snap.counters.iter().find(|(k, _)| k == "service.health.transitions").map(|&(_, v)| v);
        assert_eq!(transitions, Some(2.0));
        assert_eq!(s.health_infos().len(), 2);
        s.remove_health(2);
        assert_eq!(s.health_infos().len(), 1);
    }

    #[test]
    fn report_gauges_sessions_per_health_state() {
        let s = ServiceStats::new(1);
        s.set_health(health(1, "ok", 0));
        s.set_health(health(2, "stalled", 1));
        s.set_health(health(3, "ok", 0));
        let p = s.report(false).to_prometheus();
        assert!(p.contains("adaphet_service_health_sessions_ok 2\n"), "{p}");
        assert!(p.contains("adaphet_service_health_sessions_stalled 1\n"), "{p}");
        assert!(p.contains("adaphet_service_health_sessions_diverging 0\n"), "{p}");
    }
}
