//! The wire protocol: length-prefixed JSON frames and the typed
//! request/response vocabulary.
//!
//! # Framing
//!
//! Every message is one frame: a 4-byte big-endian unsigned length
//! followed by exactly that many bytes of UTF-8 JSON (one document, no
//! trailing newline). Frames longer than [`MAX_FRAME`] are rejected
//! before any payload is read. A peer that closes the socket between
//! frames produces a clean end-of-stream ([`read_frame`] returns
//! `Ok(None)`); a close mid-frame is an I/O error.
//!
//! A frame whose payload is not valid JSON, or valid JSON that is not a
//! known message, is answered with an [`ErrorCode::MalformedFrame`] /
//! [`ErrorCode::BadRequest`] reply **on the same connection** — one bad
//! frame never kills the conversation, because the length prefix keeps
//! the stream in sync. Only an oversized length (which makes resync
//! impossible) closes the connection.
//!
//! # Vocabulary
//!
//! Requests ([`Request`]) and responses ([`Response`]) serialize as JSON
//! objects whose `type` field names the variant in `snake_case`. Strategy
//! names travel as their canonical [`StrategyKind`] `Display` spelling and
//! are parsed with its [`FromStr`](std::str::FromStr) — the registry in
//! `adaphet-core` is the single source of truth, aliases included.

use adaphet_analysis::Json;
use adaphet_core::{ActionSpace, PosteriorPoint, PosteriorSnapshot, StrategyKind};
use adaphet_metrics::json_escape;
use std::io::{self, Read, Write};

/// Hard cap on one frame's payload size (1 MiB).
///
/// Every legitimate message is far below this; a larger declared length
/// means a corrupted or hostile stream, and since the length prefix is
/// the only resynchronization point, the connection is closed.
pub const MAX_FRAME: usize = 1 << 20;

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME ({MAX_FRAME})", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Read one length-prefixed frame.
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed between
/// frames). An oversized declared length is an `InvalidData` error — the
/// stream cannot be resynchronized and must be dropped.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // Distinguish "closed between frames" from "closed mid-prefix".
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed inside a frame length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("declared frame length {len} exceeds MAX_FRAME ({MAX_FRAME})"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Everything needed to create a session over the wire — the protocol
/// mirror of the typed `TunerDriver::builder` configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Strategy, by canonical registry name.
    pub strategy: StrategyKind,
    /// Seed for stochastic strategies.
    pub seed: u64,
    /// Cluster size `N` (actions are `1..=N`).
    pub max_nodes: usize,
    /// Homogeneous groups as inclusive 1-based `(first, last)` ranges;
    /// empty means one group covering everything.
    pub groups: Vec<(usize, usize)>,
    /// Optional `LP(n)` lower-bound curve, one value per action.
    pub lp: Option<Vec<f64>>,
    /// Advertised iteration budget (the service never enforces it).
    pub iters: Option<usize>,
    /// Best-known duration, so telemetry carries regret.
    pub best_known: Option<f64>,
    /// Best action for [`StrategyKind::Oracle`].
    pub oracle_best: Option<usize>,
    /// Whether to run the standard resilience policy (timeouts, outlier
    /// fences, retries) instead of the everything-off default.
    pub resilience: bool,
    /// Per-session cap on in-flight proposals (`None` = server default).
    pub max_in_flight: Option<usize>,
    /// Warm-start opt-in: the minimum platform-signature similarity (in
    /// `[0, 1]`) a snapshot in the daemon's surrogate store must reach to
    /// seed this session. `None` (or an absent wire field — old clients
    /// keep working) is a cold start; so is a daemon running without
    /// `--store-dir` or a store with no qualifying snapshot.
    pub warm_start: Option<f64>,
}

impl SessionSpec {
    /// A minimal spec: `strategy` with `seed` over `1..=max_nodes`.
    pub fn new(strategy: StrategyKind, seed: u64, max_nodes: usize) -> Self {
        SessionSpec {
            strategy,
            seed,
            max_nodes,
            groups: Vec::new(),
            lp: None,
            iters: None,
            best_known: None,
            oracle_best: None,
            resilience: false,
            max_in_flight: None,
            warm_start: None,
        }
    }

    /// Validate and build the [`ActionSpace`] this spec describes.
    ///
    /// The wire layer must never feed unvalidated input to
    /// [`ActionSpace::new`] (which panics on bad structure), so the
    /// partition and LP-length checks are re-done here as `Err`s.
    pub fn space(&self) -> Result<ActionSpace, String> {
        if self.max_nodes == 0 {
            return Err("max_nodes must be at least 1".into());
        }
        if !self.groups.is_empty() {
            let mut expect = 1usize;
            for &(lo, hi) in &self.groups {
                if lo != expect || hi < lo || hi > self.max_nodes {
                    return Err(format!(
                        "groups must partition 1..={} contiguously (bad range {lo}..={hi})",
                        self.max_nodes
                    ));
                }
                expect = hi + 1;
            }
            if expect != self.max_nodes + 1 {
                return Err(format!("groups cover 1..={} of 1..={}", expect - 1, self.max_nodes));
            }
        }
        if let Some(lp) = &self.lp {
            if lp.len() != self.max_nodes {
                return Err(format!(
                    "lp curve has {} values for {} actions",
                    lp.len(),
                    self.max_nodes
                ));
            }
        }
        if self.strategy == StrategyKind::Oracle && self.oracle_best.is_none() {
            return Err("oracle strategy needs oracle_best".into());
        }
        Ok(ActionSpace::new(self.max_nodes, self.groups.clone(), self.lp.clone()))
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Create a tuning session from a typed spec.
    CreateSession(SessionSpec),
    /// Ask the session's strategy for the next action (opens a ticket).
    GetProposal {
        /// Target session id.
        session: u64,
    },
    /// Resolve a ticket with its measured duration.
    SubmitObservation {
        /// Target session id.
        session: u64,
        /// The ticket being resolved.
        ticket: u64,
        /// Measured iteration duration in seconds.
        duration: f64,
    },
    /// Fetch the strategy's current posterior snapshot (PR 5 semantics).
    GetPosterior {
        /// Target session id.
        session: u64,
    },
    /// Close a session, returning its final history.
    CloseSession {
        /// Target session id.
        session: u64,
    },
    /// Fetch the service-wide observability snapshot (works while
    /// draining — watching a drain is half the point).
    GetStats,
    /// Fetch one session's recent lifecycle events and ledger state.
    Inspect {
        /// Target session id.
        session: u64,
    },
    /// Fetch one session's convergence-health report (folded state plus
    /// the raw signals behind it).
    GetHealth {
        /// Target session id.
        session: u64,
    },
    /// Liveness probe; the reply carries daemon version and uptime.
    Ping,
    /// Ask the daemon to stop accepting connections and drain.
    Shutdown,
}

/// Latency summary of one protocol verb, derived from the service's
/// log-bucketed latency histograms. Quantiles are bucket-interpolated
/// estimates in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct VerbStats {
    /// Verb name (`"get_proposal"`, `"submit_observation"`, …).
    pub verb: String,
    /// Requests answered.
    pub count: u64,
    /// Median latency estimate (seconds).
    pub p50: f64,
    /// 95th-percentile latency estimate (seconds).
    pub p95: f64,
    /// 99th-percentile latency estimate (seconds).
    pub p99: f64,
}

/// Live state of one shard worker.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard index (sessions are pinned to `id % workers`).
    pub shard: usize,
    /// Sessions currently registered on this shard.
    pub sessions: u64,
    /// Jobs sitting in the shard queue right now.
    pub queue_depth: u64,
}

/// The service-wide observability snapshot answered to [`Request::GetStats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Daemon crate version.
    pub version: String,
    /// Monotonic seconds since the session manager started.
    pub uptime_s: f64,
    /// Whether the daemon is draining (refusing new work).
    pub draining: bool,
    /// Sessions currently registered.
    pub sessions_live: u64,
    /// Sessions created over the daemon's lifetime.
    pub sessions_created: u64,
    /// Sessions closed by clients.
    pub sessions_closed: u64,
    /// Sessions evicted by the idle sweeper.
    pub sessions_evicted: u64,
    /// Sessions flushed by the graceful drain at shutdown.
    pub sessions_drained: u64,
    /// Proposal tickets currently open across all sessions.
    pub in_flight: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Requests handled (all verbs).
    pub requests: u64,
    /// Malformed frames answered with a typed error.
    pub malformed: u64,
    /// Error responses issued.
    pub errors: u64,
    /// Per-verb latency summaries, verb-name-sorted.
    pub verbs: Vec<VerbStats>,
    /// Per-shard queue depth and session count, shard-ordered.
    pub shards: Vec<ShardStats>,
}

/// One entry of a session's bounded lifecycle ring, answered to
/// [`Request::Inspect`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionEvent {
    /// Monotone per-session sequence number (gaps mean evicted entries).
    pub seq: u64,
    /// Seconds since the manager started, at event time.
    pub t_s: f64,
    /// Event kind: `created`, `propose`, `recorded`, `retry`, `error`.
    pub kind: String,
    /// Ticket involved, if any.
    pub ticket: Option<u64>,
    /// Action involved, if any.
    pub action: Option<usize>,
    /// Iteration involved, if any.
    pub iteration: Option<usize>,
    /// Observed duration, for `recorded` events.
    pub duration: Option<f64>,
}

/// One session's convergence-health report, answered to
/// [`Request::GetHealth`] — the wire mirror of
/// [`adaphet_core::HealthReport`]. Field order and the `state` enum
/// spellings (`"ok"`, `"warn"`, `"stalled"`, `"diverging"`) are pinned
/// by the golden test in `tests/health_schema.rs`.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthInfo {
    /// Owning session.
    pub session: u64,
    /// Folded state: `ok`, `warn`, `stalled` or `diverging`.
    pub state: String,
    /// Warn reason slug, when the state is `warn`.
    pub reason: Option<String>,
    /// Observations recorded so far.
    pub records: usize,
    /// Records since the session best last improved.
    pub since_best: usize,
    /// Normalized duration slope over the sliding window (`null` until
    /// the window is full).
    pub regret_slope: Option<f64>,
    /// Retry verdicts inside the window.
    pub retries_window: usize,
    /// Fault-annotated records inside the window.
    pub faults_window: usize,
    /// Posterior sd ceiling from the last snapshot, if any.
    pub posterior_sd_max: Option<f64>,
    /// Gap between the session best and the LP bound minimum, if any.
    pub lp_gap: Option<f64>,
    /// First record (1-based) inside the best-known band, if reached.
    pub band_record: Option<usize>,
    /// Whether the session's surrogate was warm-started.
    pub warm_started: bool,
    /// Published health-state transitions so far.
    pub transitions: u64,
}

impl HealthInfo {
    /// The report's JSON fields without the enclosing braces or a
    /// `type` tag — shared by the `health` wire frame and the sidecar's
    /// `/health` endpoint so both expose the identical pinned schema.
    pub fn json_fields(&self) -> String {
        format!(
            "\"session\":{},\"state\":\"{}\",\"reason\":{},\"records\":{},\"since_best\":{},\
             \"regret_slope\":{},\"retries_window\":{},\"faults_window\":{},\
             \"posterior_sd_max\":{},\"lp_gap\":{},\"band_record\":{},\"warm_started\":{},\
             \"transitions\":{}",
            self.session,
            json_escape(&self.state),
            self.reason.as_deref().map_or("null".into(), |r| format!("\"{}\"", json_escape(r))),
            self.records,
            self.since_best,
            jopt_num(self.regret_slope),
            self.retries_window,
            self.faults_window,
            jopt_num(self.posterior_sd_max),
            jopt_num(self.lp_gap),
            jopt_usize(self.band_record),
            self.warm_started,
            self.transitions,
        )
    }
}

/// Machine-readable error category of an [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame payload was not valid JSON.
    MalformedFrame,
    /// Valid JSON, but not a well-formed request (unknown type, missing
    /// or invalid fields, bad strategy name, bad space structure).
    BadRequest,
    /// The session id is not (or no longer) registered.
    UnknownSession,
    /// The ticket is not in the session's pending-action ledger.
    UnknownTicket,
    /// The session's in-flight proposal cap is reached.
    TooManyInFlight,
    /// The daemon is draining and takes no new work.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::MalformedFrame => "malformed-frame",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::UnknownTicket => "unknown-ticket",
            ErrorCode::TooManyInFlight => "too-many-in-flight",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parse the wire spelling.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "malformed-frame" => ErrorCode::MalformedFrame,
            "bad-request" => ErrorCode::BadRequest,
            "unknown-session" => ErrorCode::UnknownSession,
            "unknown-ticket" => ErrorCode::UnknownTicket,
            "too-many-in-flight" => ErrorCode::TooManyInFlight,
            "shutting-down" => ErrorCode::ShuttingDown,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A session was created.
    SessionCreated {
        /// The new session's id.
        session: u64,
    },
    /// A proposal was issued; measure `action` and submit under `ticket`.
    Proposal {
        /// Owning session.
        session: u64,
        /// Ledger ticket for the in-flight proposal.
        ticket: u64,
        /// 0-based iteration index.
        iteration: usize,
        /// The action (node count) to measure.
        action: usize,
    },
    /// An observation was accepted and recorded; the ticket is closed.
    Recorded {
        /// Owning session.
        session: u64,
        /// Iteration index the observation landed on.
        iteration: usize,
        /// The measured action.
        action: usize,
        /// The recorded duration.
        duration: f64,
        /// Session cumulative time after recording.
        cumulative_time: f64,
    },
    /// The resilience policy wants the measurement re-taken; the ticket
    /// stays open.
    Retry {
        /// Owning session.
        session: u64,
        /// The still-open ticket.
        ticket: u64,
        /// The action to re-measure.
        action: usize,
        /// 1-based retry attempt count.
        attempt: usize,
    },
    /// The strategy's posterior over the live space (`points` is `None`
    /// when the strategy has no surrogate or not enough data yet).
    Posterior {
        /// Owning session.
        session: u64,
        /// One point per action, ascending — or `None`.
        points: Option<Vec<PosteriorPoint>>,
    },
    /// A session was closed; its final state is returned.
    Closed {
        /// The closed session's id.
        session: u64,
        /// Iterations proposed over the session's lifetime.
        iterations: usize,
        /// Sum of all recorded durations.
        total_time: f64,
        /// Action with the lowest mean observed duration, if any.
        best_action: Option<usize>,
        /// Full `(action, duration)` history, in iteration order.
        history: Vec<(usize, f64)>,
    },
    /// The service-wide observability snapshot.
    Stats(StatsSnapshot),
    /// One session's live state and recent lifecycle events.
    Inspected {
        /// The inspected session's id.
        session: u64,
        /// Strategy, by canonical registry name.
        strategy: String,
        /// Iterations proposed so far.
        iterations: usize,
        /// Sum of all recorded durations so far.
        cumulative_time: f64,
        /// Open ledger entries as `(ticket, action)`, in issue order.
        pending: Vec<(u64, usize)>,
        /// Recent lifecycle events, oldest first (bounded ring).
        events: Vec<SessionEvent>,
        /// Events the bounded ring has already evicted (0 until it
        /// wraps) — a non-zero value means `events` is a truncated tail.
        events_dropped: u64,
    },
    /// One session's convergence-health report.
    Health(HealthInfo),
    /// Liveness answer, carrying the daemon's identity.
    Pong {
        /// Daemon crate version (empty when talking to a pre-stats peer).
        version: String,
        /// Monotonic seconds since the daemon's manager started.
        uptime_s: f64,
    },
    /// The daemon acknowledged a shutdown request and is draining.
    ShuttingDown,
    /// The request failed.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// One-line human diagnosis.
        message: String,
    },
}

fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn jopt_num(x: Option<f64>) -> String {
    x.map_or("null".into(), jnum)
}

fn jopt_usize(x: Option<usize>) -> String {
    x.map_or("null".into(), |v| v.to_string())
}

impl Request {
    /// Serialize to the one-line JSON wire form.
    pub fn to_json(&self) -> String {
        match self {
            Request::CreateSession(spec) => {
                let groups = spec
                    .groups
                    .iter()
                    .map(|&(lo, hi)| format!("[{lo},{hi}]"))
                    .collect::<Vec<_>>()
                    .join(",");
                let lp = match &spec.lp {
                    None => "null".to_string(),
                    Some(v) => {
                        format!("[{}]", v.iter().map(|&x| jnum(x)).collect::<Vec<_>>().join(","))
                    }
                };
                format!(
                    "{{\"type\":\"create_session\",\"strategy\":\"{}\",\"seed\":{},\
                     \"max_nodes\":{},\"groups\":[{}],\"lp\":{},\"iters\":{},\
                     \"best_known\":{},\"oracle_best\":{},\"resilience\":\"{}\",\
                     \"max_in_flight\":{},\"warm_start\":{}}}",
                    json_escape(&spec.strategy.to_string()),
                    spec.seed,
                    spec.max_nodes,
                    groups,
                    lp,
                    jopt_usize(spec.iters),
                    jopt_num(spec.best_known),
                    jopt_usize(spec.oracle_best),
                    if spec.resilience { "standard" } else { "off" },
                    jopt_usize(spec.max_in_flight),
                    jopt_num(spec.warm_start),
                )
            }
            Request::GetProposal { session } => {
                format!("{{\"type\":\"get_proposal\",\"session\":{session}}}")
            }
            Request::SubmitObservation { session, ticket, duration } => format!(
                "{{\"type\":\"submit_observation\",\"session\":{session},\"ticket\":{ticket},\
                 \"duration\":{}}}",
                jnum(*duration)
            ),
            Request::GetPosterior { session } => {
                format!("{{\"type\":\"get_posterior\",\"session\":{session}}}")
            }
            Request::CloseSession { session } => {
                format!("{{\"type\":\"close_session\",\"session\":{session}}}")
            }
            Request::GetStats => "{\"type\":\"get_stats\"}".to_string(),
            Request::Inspect { session } => {
                format!("{{\"type\":\"inspect\",\"session\":{session}}}")
            }
            Request::GetHealth { session } => {
                format!("{{\"type\":\"get_health\",\"session\":{session}}}")
            }
            Request::Ping => "{\"type\":\"ping\"}".to_string(),
            Request::Shutdown => "{\"type\":\"shutdown\"}".to_string(),
        }
    }

    /// Parse a request from its JSON document.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let typ = v.get("type").and_then(Json::as_str).ok_or("missing 'type'")?;
        let session = |v: &Json| -> Result<u64, String> {
            v.get("session")
                .and_then(Json::as_f64)
                .filter(|x| *x >= 0.0 && x.fract() == 0.0)
                .map(|x| x as u64)
                .ok_or_else(|| "missing or invalid 'session'".to_string())
        };
        Ok(match typ {
            "create_session" => {
                let strategy_name =
                    v.get("strategy").and_then(Json::as_str).ok_or("missing 'strategy'")?;
                let strategy: StrategyKind = strategy_name.parse().map_err(|e| format!("{e}"))?;
                let max_nodes =
                    v.get("max_nodes").and_then(Json::as_usize).ok_or("missing 'max_nodes'")?;
                let groups = match v.get("groups").and_then(Json::as_arr) {
                    None => Vec::new(),
                    Some(items) => items
                        .iter()
                        .map(|g| {
                            let pair = g.as_arr().filter(|a| a.len() == 2);
                            match pair {
                                Some(a) => Ok((
                                    a[0].as_usize().ok_or("bad group bound")?,
                                    a[1].as_usize().ok_or("bad group bound")?,
                                )),
                                None => Err("groups must be [lo,hi] pairs".to_string()),
                            }
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                };
                let lp = match v.get("lp") {
                    None | Some(Json::Null) => None,
                    Some(arr) => Some(
                        arr.as_arr()
                            .ok_or("'lp' must be an array")?
                            .iter()
                            .map(|x| x.as_f64().ok_or_else(|| "non-numeric lp value".to_string()))
                            .collect::<Result<Vec<_>, String>>()?,
                    ),
                };
                let resilience = match v.get("resilience").and_then(Json::as_str) {
                    None | Some("off") => false,
                    Some("standard") => true,
                    Some(other) => {
                        return Err(format!(
                            "resilience must be \"standard\" or \"off\", got {other:?}"
                        ))
                    }
                };
                // Absent or null = cold start, so specs from clients that
                // predate warm-starting parse unchanged.
                let warm_start = match v.get("warm_start") {
                    None | Some(Json::Null) => None,
                    Some(x) => match x.as_f64() {
                        Some(m) if (0.0..=1.0).contains(&m) => Some(m),
                        _ => return Err("warm_start must be a similarity in [0, 1]".to_string()),
                    },
                };
                Request::CreateSession(SessionSpec {
                    strategy,
                    seed: v.get("seed").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                    max_nodes,
                    groups,
                    lp,
                    iters: v.get("iters").and_then(Json::as_usize),
                    best_known: v.get("best_known").and_then(Json::as_f64),
                    oracle_best: v.get("oracle_best").and_then(Json::as_usize),
                    resilience,
                    max_in_flight: v.get("max_in_flight").and_then(Json::as_usize),
                    warm_start,
                })
            }
            "get_proposal" => Request::GetProposal { session: session(v)? },
            "submit_observation" => Request::SubmitObservation {
                session: session(v)?,
                ticket: v
                    .get("ticket")
                    .and_then(Json::as_f64)
                    .filter(|x| *x >= 0.0 && x.fract() == 0.0)
                    .map(|x| x as u64)
                    .ok_or("missing or invalid 'ticket'")?,
                duration: v.get("duration").and_then(Json::as_f64).ok_or("missing 'duration'")?,
            },
            "get_posterior" => Request::GetPosterior { session: session(v)? },
            "close_session" => Request::CloseSession { session: session(v)? },
            "get_stats" => Request::GetStats,
            "inspect" => Request::Inspect { session: session(v)? },
            "get_health" => Request::GetHealth { session: session(v)? },
            "ping" => Request::Ping,
            "shutdown" => Request::Shutdown,
            other => return Err(format!("unknown request type {other:?}")),
        })
    }
}

impl Response {
    /// Serialize to the one-line JSON wire form.
    pub fn to_json(&self) -> String {
        match self {
            Response::SessionCreated { session } => {
                format!("{{\"type\":\"session_created\",\"session\":{session}}}")
            }
            Response::Proposal { session, ticket, iteration, action } => format!(
                "{{\"type\":\"proposal\",\"session\":{session},\"ticket\":{ticket},\
                 \"iteration\":{iteration},\"action\":{action}}}"
            ),
            Response::Recorded { session, iteration, action, duration, cumulative_time } => {
                format!(
                    "{{\"type\":\"recorded\",\"session\":{session},\"iteration\":{iteration},\
                     \"action\":{action},\"duration\":{},\"cumulative_time\":{}}}",
                    jnum(*duration),
                    jnum(*cumulative_time)
                )
            }
            Response::Retry { session, ticket, action, attempt } => format!(
                "{{\"type\":\"retry\",\"session\":{session},\"ticket\":{ticket},\
                 \"action\":{action},\"attempt\":{attempt}}}"
            ),
            Response::Posterior { session, points } => {
                let body = match points {
                    None => "null".to_string(),
                    Some(ps) => {
                        let items = ps
                            .iter()
                            .map(|p| {
                                format!(
                                    "{{\"action\":{},\"mean\":{},\"sd\":{},\"lp_bound\":{},\
                                     \"excluded\":{}}}",
                                    p.action,
                                    jnum(p.mean),
                                    jnum(p.sd),
                                    jopt_num(p.lp_bound),
                                    p.excluded
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(",");
                        format!("[{items}]")
                    }
                };
                format!("{{\"type\":\"posterior\",\"session\":{session},\"points\":{body}}}")
            }
            Response::Closed { session, iterations, total_time, best_action, history } => {
                let hist = history
                    .iter()
                    .map(|&(a, y)| format!("[{a},{}]", jnum(y)))
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"type\":\"closed\",\"session\":{session},\"iterations\":{iterations},\
                     \"total_time\":{},\"best_action\":{},\"history\":[{hist}]}}",
                    jnum(*total_time),
                    jopt_usize(*best_action)
                )
            }
            Response::Stats(s) => {
                let verbs = s
                    .verbs
                    .iter()
                    .map(|v| {
                        format!(
                            "{{\"verb\":\"{}\",\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                            json_escape(&v.verb),
                            v.count,
                            jnum(v.p50),
                            jnum(v.p95),
                            jnum(v.p99)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                let shards = s
                    .shards
                    .iter()
                    .map(|sh| {
                        format!(
                            "{{\"shard\":{},\"sessions\":{},\"queue_depth\":{}}}",
                            sh.shard, sh.sessions, sh.queue_depth
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"type\":\"stats\",\"version\":\"{}\",\"uptime_s\":{},\
                     \"draining\":{},\"sessions\":{{\"live\":{},\"created\":{},\"closed\":{},\
                     \"evicted\":{},\"drained\":{}}},\"in_flight\":{},\"connections\":{},\
                     \"requests\":{},\"malformed\":{},\"errors\":{},\"verbs\":[{verbs}],\
                     \"shards\":[{shards}]}}",
                    json_escape(&s.version),
                    jnum(s.uptime_s),
                    s.draining,
                    s.sessions_live,
                    s.sessions_created,
                    s.sessions_closed,
                    s.sessions_evicted,
                    s.sessions_drained,
                    s.in_flight,
                    s.connections,
                    s.requests,
                    s.malformed,
                    s.errors,
                )
            }
            Response::Inspected {
                session,
                strategy,
                iterations,
                cumulative_time,
                pending,
                events,
                events_dropped,
            } => {
                let pend = pending
                    .iter()
                    .map(|&(t, a)| format!("[{t},{a}]"))
                    .collect::<Vec<_>>()
                    .join(",");
                let evs = events
                    .iter()
                    .map(|e| {
                        format!(
                            "{{\"seq\":{},\"t_s\":{},\"kind\":\"{}\",\"ticket\":{},\
                             \"action\":{},\"iteration\":{},\"duration\":{}}}",
                            e.seq,
                            jnum(e.t_s),
                            json_escape(&e.kind),
                            e.ticket.map_or("null".into(), |t| t.to_string()),
                            jopt_usize(e.action),
                            jopt_usize(e.iteration),
                            jopt_num(e.duration)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"type\":\"inspected\",\"session\":{session},\"strategy\":\"{}\",\
                     \"iterations\":{iterations},\"cumulative_time\":{},\"pending\":[{pend}],\
                     \"events\":[{evs}],\"events_dropped\":{events_dropped}}}",
                    json_escape(strategy),
                    jnum(*cumulative_time)
                )
            }
            Response::Health(h) => {
                format!("{{\"type\":\"health\",{}}}", h.json_fields())
            }
            Response::Pong { version, uptime_s } => format!(
                "{{\"type\":\"pong\",\"version\":\"{}\",\"uptime_s\":{}}}",
                json_escape(version),
                jnum(*uptime_s)
            ),
            Response::ShuttingDown => "{\"type\":\"shutting_down\"}".to_string(),
            Response::Error { code, message } => format!(
                "{{\"type\":\"error\",\"code\":\"{}\",\"message\":\"{}\"}}",
                code.as_str(),
                json_escape(message)
            ),
        }
    }

    /// Parse a response from its JSON document.
    pub fn from_json(v: &Json) -> Result<Response, String> {
        let typ = v.get("type").and_then(Json::as_str).ok_or("missing 'type'")?;
        let num = |key: &str| v.get(key).and_then(Json::as_f64).ok_or(format!("missing '{key}'"));
        let int = |key: &str| num(key).map(|x| x as u64);
        let us = |key: &str| num(key).map(|x| x as usize);
        Ok(match typ {
            "session_created" => Response::SessionCreated { session: int("session")? },
            "proposal" => Response::Proposal {
                session: int("session")?,
                ticket: int("ticket")?,
                iteration: us("iteration")?,
                action: us("action")?,
            },
            "recorded" => Response::Recorded {
                session: int("session")?,
                iteration: us("iteration")?,
                action: us("action")?,
                duration: num("duration")?,
                cumulative_time: num("cumulative_time")?,
            },
            "retry" => Response::Retry {
                session: int("session")?,
                ticket: int("ticket")?,
                action: us("action")?,
                attempt: us("attempt")?,
            },
            "posterior" => {
                let points = match v.get("points") {
                    None | Some(Json::Null) => None,
                    Some(arr) => Some(
                        arr.as_arr()
                            .ok_or("'points' must be an array")?
                            .iter()
                            .map(|p| {
                                Ok(PosteriorPoint {
                                    action: p
                                        .get("action")
                                        .and_then(Json::as_usize)
                                        .ok_or("point without action")?,
                                    mean: p.get("mean").and_then(Json::as_f64).unwrap_or(f64::NAN),
                                    sd: p.get("sd").and_then(Json::as_f64).unwrap_or(f64::NAN),
                                    lp_bound: p.get("lp_bound").and_then(Json::as_f64),
                                    excluded: p
                                        .get("excluded")
                                        .and_then(Json::as_bool)
                                        .unwrap_or(false),
                                })
                            })
                            .collect::<Result<Vec<_>, String>>()?,
                    ),
                };
                Response::Posterior { session: int("session")?, points }
            }
            "closed" => Response::Closed {
                session: int("session")?,
                iterations: us("iterations")?,
                total_time: num("total_time")?,
                best_action: v.get("best_action").and_then(Json::as_usize),
                history: v
                    .get("history")
                    .and_then(Json::as_arr)
                    .ok_or("missing 'history'")?
                    .iter()
                    .map(|pair| {
                        let a = pair.as_arr().filter(|a| a.len() == 2);
                        match a {
                            Some(a) => Ok((
                                a[0].as_usize().ok_or("bad history action")?,
                                a[1].as_f64().ok_or("bad history duration")?,
                            )),
                            None => Err("history entries must be [action,duration]".to_string()),
                        }
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            },
            "stats" => {
                let sess = |key: &str| {
                    v.get("sessions").and_then(|s| s.get(key)).and_then(Json::as_f64).unwrap_or(0.0)
                        as u64
                };
                let count = |key: &str| v.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64;
                let verbs = v
                    .get("verbs")
                    .and_then(Json::as_arr)
                    .map(|items| {
                        items
                            .iter()
                            .filter_map(|e| {
                                Some(VerbStats {
                                    verb: e.get("verb").and_then(Json::as_str)?.to_string(),
                                    count: e.get("count").and_then(Json::as_f64)? as u64,
                                    p50: e.get("p50").and_then(Json::as_f64).unwrap_or(0.0),
                                    p95: e.get("p95").and_then(Json::as_f64).unwrap_or(0.0),
                                    p99: e.get("p99").and_then(Json::as_f64).unwrap_or(0.0),
                                })
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                let shards = v
                    .get("shards")
                    .and_then(Json::as_arr)
                    .map(|items| {
                        items
                            .iter()
                            .filter_map(|e| {
                                Some(ShardStats {
                                    shard: e.get("shard").and_then(Json::as_usize)?,
                                    sessions: e.get("sessions").and_then(Json::as_f64)? as u64,
                                    queue_depth: e.get("queue_depth").and_then(Json::as_f64)?
                                        as u64,
                                })
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                Response::Stats(StatsSnapshot {
                    version: v
                        .get("version")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    uptime_s: v.get("uptime_s").and_then(Json::as_f64).unwrap_or(0.0),
                    draining: v.get("draining").and_then(Json::as_bool).unwrap_or(false),
                    sessions_live: sess("live"),
                    sessions_created: sess("created"),
                    sessions_closed: sess("closed"),
                    sessions_evicted: sess("evicted"),
                    sessions_drained: sess("drained"),
                    in_flight: count("in_flight"),
                    connections: count("connections"),
                    requests: count("requests"),
                    malformed: count("malformed"),
                    errors: count("errors"),
                    verbs,
                    shards,
                })
            }
            "inspected" => Response::Inspected {
                session: int("session")?,
                strategy: v.get("strategy").and_then(Json::as_str).unwrap_or_default().to_string(),
                iterations: us("iterations")?,
                cumulative_time: num("cumulative_time")?,
                pending: v
                    .get("pending")
                    .and_then(Json::as_arr)
                    .ok_or("missing 'pending'")?
                    .iter()
                    .map(|pair| {
                        let a = pair.as_arr().filter(|a| a.len() == 2);
                        match a {
                            Some(a) => Ok((
                                a[0].as_f64().ok_or("bad pending ticket")? as u64,
                                a[1].as_usize().ok_or("bad pending action")?,
                            )),
                            None => Err("pending entries must be [ticket,action]".to_string()),
                        }
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                events: v
                    .get("events")
                    .and_then(Json::as_arr)
                    .ok_or("missing 'events'")?
                    .iter()
                    .map(|e| {
                        Ok(SessionEvent {
                            seq: e.get("seq").and_then(Json::as_f64).ok_or("event without seq")?
                                as u64,
                            t_s: e.get("t_s").and_then(Json::as_f64).unwrap_or(0.0),
                            kind: e
                                .get("kind")
                                .and_then(Json::as_str)
                                .ok_or("event without kind")?
                                .to_string(),
                            ticket: e.get("ticket").and_then(Json::as_f64).map(|x| x as u64),
                            action: e.get("action").and_then(Json::as_usize),
                            iteration: e.get("iteration").and_then(Json::as_usize),
                            duration: e.get("duration").and_then(Json::as_f64),
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                // Absent on frames from daemons that predate drop
                // accounting: nothing evicted is the only safe reading.
                events_dropped: match v.get("events_dropped") {
                    None | Some(Json::Null) => 0,
                    Some(x) => x
                        .as_f64()
                        .filter(|d| *d >= 0.0 && d.fract() == 0.0)
                        .ok_or("invalid 'events_dropped'")? as u64,
                },
            },
            "health" => Response::Health(HealthInfo {
                session: int("session")?,
                state: v.get("state").and_then(Json::as_str).ok_or("missing 'state'")?.to_string(),
                reason: match v.get("reason") {
                    None | Some(Json::Null) => None,
                    Some(x) => Some(x.as_str().ok_or("'reason' must be a string")?.to_string()),
                },
                records: us("records")?,
                since_best: us("since_best")?,
                regret_slope: v.get("regret_slope").and_then(Json::as_f64),
                retries_window: us("retries_window")?,
                faults_window: us("faults_window")?,
                posterior_sd_max: v.get("posterior_sd_max").and_then(Json::as_f64),
                lp_gap: v.get("lp_gap").and_then(Json::as_f64),
                band_record: v.get("band_record").and_then(Json::as_usize),
                warm_started: v.get("warm_started").and_then(Json::as_bool).unwrap_or(false),
                transitions: v.get("transitions").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            }),
            "pong" => Response::Pong {
                version: v.get("version").and_then(Json::as_str).unwrap_or_default().to_string(),
                uptime_s: v.get("uptime_s").and_then(Json::as_f64).unwrap_or(0.0),
            },
            "shutting_down" => Response::ShuttingDown,
            "error" => Response::Error {
                code: v
                    .get("code")
                    .and_then(Json::as_str)
                    .and_then(ErrorCode::parse)
                    .unwrap_or(ErrorCode::Internal),
                message: v
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified error")
                    .to_string(),
            },
            other => return Err(format!("unknown response type {other:?}")),
        })
    }
}

/// Build a full posterior response from a core snapshot.
pub fn posterior_response(session: u64, snap: Option<PosteriorSnapshot>) -> Response {
    Response::Posterior { session, points: snap.map(|s| s.points) }
}

/// Build a [`Response::Health`] from a session's core health report.
pub fn health_response(session: u64, report: &adaphet_core::HealthReport) -> Response {
    Response::Health(health_info(session, report))
}

/// Flatten a session's core health report into its wire mirror.
pub fn health_info(session: u64, report: &adaphet_core::HealthReport) -> HealthInfo {
    let s = &report.signals;
    HealthInfo {
        session,
        state: report.state.as_str().to_string(),
        reason: report.state.reason().map(str::to_string),
        records: s.records,
        since_best: s.since_best,
        regret_slope: s.regret_slope,
        retries_window: s.retries_window,
        faults_window: s.faults_window,
        posterior_sd_max: s.posterior_sd_max,
        lp_gap: s.lp_gap,
        band_record: s.band_record,
        warm_started: s.warm_started,
        transitions: report.transitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SessionSpec {
        SessionSpec {
            strategy: StrategyKind::GpDiscontinuous,
            seed: 7,
            max_nodes: 10,
            groups: vec![(1, 5), (6, 10)],
            lp: Some((1..=10).map(|n| 30.0 / n as f64).collect()),
            iters: Some(40),
            best_known: Some(5.5),
            oracle_best: None,
            resilience: true,
            max_in_flight: Some(4),
            warm_start: Some(0.8),
        }
    }

    fn round_trip_request(req: Request) {
        let j = req.to_json();
        let parsed = Request::from_json(&Json::parse(&j).unwrap()).unwrap();
        assert_eq!(parsed, req, "wire form: {j}");
    }

    fn round_trip_response(resp: Response) {
        let j = resp.to_json();
        let parsed = Response::from_json(&Json::parse(&j).unwrap()).unwrap();
        assert_eq!(parsed, resp, "wire form: {j}");
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::CreateSession(spec()));
        round_trip_request(Request::CreateSession(SessionSpec::new(StrategyKind::Ucb, 0, 3)));
        round_trip_request(Request::GetProposal { session: 12 });
        round_trip_request(Request::SubmitObservation { session: 12, ticket: 3, duration: 1.25 });
        round_trip_request(Request::GetPosterior { session: 12 });
        round_trip_request(Request::CloseSession { session: 12 });
        round_trip_request(Request::GetStats);
        round_trip_request(Request::Inspect { session: 12 });
        round_trip_request(Request::GetHealth { session: 12 });
        round_trip_request(Request::Ping);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn warm_start_field_is_backward_compatible() {
        // A spec from a client that predates warm-starting (no field at
        // all) parses to a cold start.
        let old = "{\"type\":\"create_session\",\"strategy\":\"UCB\",\"seed\":1,\"max_nodes\":4}";
        match Request::from_json(&Json::parse(old).unwrap()).unwrap() {
            Request::CreateSession(s) => assert_eq!(s.warm_start, None),
            other => panic!("{other:?}"),
        }
        // An explicit null likewise.
        let null = "{\"type\":\"create_session\",\"strategy\":\"UCB\",\"seed\":1,\
                     \"max_nodes\":4,\"warm_start\":null}";
        match Request::from_json(&Json::parse(null).unwrap()).unwrap() {
            Request::CreateSession(s) => assert_eq!(s.warm_start, None),
            other => panic!("{other:?}"),
        }
        // Out-of-range similarities are a typed parse error.
        let bad = "{\"type\":\"create_session\",\"strategy\":\"UCB\",\"seed\":1,\
                    \"max_nodes\":4,\"warm_start\":1.5}";
        assert!(Request::from_json(&Json::parse(bad).unwrap()).is_err());
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::SessionCreated { session: 5 });
        round_trip_response(Response::Proposal { session: 5, ticket: 0, iteration: 0, action: 7 });
        round_trip_response(Response::Recorded {
            session: 5,
            iteration: 3,
            action: 7,
            duration: 1.5,
            cumulative_time: 6.25,
        });
        round_trip_response(Response::Retry { session: 5, ticket: 2, action: 7, attempt: 1 });
        round_trip_response(Response::Posterior { session: 5, points: None });
        round_trip_response(Response::Posterior {
            session: 5,
            points: Some(vec![PosteriorPoint {
                action: 1,
                mean: 2.5,
                sd: 0.25,
                lp_bound: Some(1.5),
                excluded: true,
            }]),
        });
        round_trip_response(Response::Closed {
            session: 5,
            iterations: 40,
            total_time: 123.5,
            best_action: Some(6),
            history: vec![(10, 3.25), (6, 2.0)],
        });
        round_trip_response(Response::Stats(StatsSnapshot {
            version: "0.1.0".into(),
            uptime_s: 12.5,
            draining: true,
            sessions_live: 3,
            sessions_created: 8,
            sessions_closed: 4,
            sessions_evicted: 1,
            sessions_drained: 2,
            in_flight: 5,
            connections: 9,
            requests: 120,
            malformed: 1,
            errors: 2,
            verbs: vec![VerbStats {
                verb: "get_proposal".into(),
                count: 40,
                p50: 0.001,
                p95: 0.01,
                p99: 0.05,
            }],
            shards: vec![
                ShardStats { shard: 0, sessions: 2, queue_depth: 1 },
                ShardStats { shard: 1, sessions: 1, queue_depth: 0 },
            ],
        }));
        round_trip_response(Response::Stats(StatsSnapshot::default()));
        round_trip_response(Response::Inspected {
            session: 5,
            strategy: "gp-discontinuous".into(),
            iterations: 7,
            cumulative_time: 12.25,
            pending: vec![(3, 8), (4, 2)],
            events: vec![
                SessionEvent {
                    seq: 0,
                    t_s: 0.5,
                    kind: "created".into(),
                    ticket: None,
                    action: None,
                    iteration: None,
                    duration: None,
                },
                SessionEvent {
                    seq: 1,
                    t_s: 0.75,
                    kind: "recorded".into(),
                    ticket: Some(0),
                    action: Some(8),
                    iteration: Some(0),
                    duration: Some(1.5),
                },
            ],
            events_dropped: 17,
        });
        round_trip_response(Response::Health(HealthInfo {
            session: 5,
            state: "warn".into(),
            reason: Some("fault-pressure".into()),
            records: 20,
            since_best: 4,
            regret_slope: Some(-0.015),
            retries_window: 1,
            faults_window: 2,
            posterior_sd_max: Some(0.75),
            lp_gap: Some(2.5),
            band_record: Some(9),
            warm_started: true,
            transitions: 3,
        }));
        round_trip_response(Response::Health(HealthInfo {
            session: 0,
            state: "ok".into(),
            reason: None,
            records: 0,
            since_best: 0,
            regret_slope: None,
            retries_window: 0,
            faults_window: 0,
            posterior_sd_max: None,
            lp_gap: None,
            band_record: None,
            warm_started: false,
            transitions: 0,
        }));
        round_trip_response(Response::Pong { version: "0.1.0".into(), uptime_s: 3.5 });
        round_trip_response(Response::ShuttingDown);
        round_trip_response(Response::Error {
            code: ErrorCode::UnknownSession,
            message: "session 99 is not registered".into(),
        });
    }

    #[test]
    fn events_dropped_field_is_backward_compatible() {
        // Daemons that predate drop accounting omit the field; reading
        // that frame must not fail and must report zero drops.
        let old = "{\"type\":\"inspected\",\"session\":5,\"strategy\":\"ucb\",\
                   \"iterations\":2,\"cumulative_time\":1.5,\"pending\":[],\"events\":[]}";
        match Response::from_json(&Json::parse(old).unwrap()).unwrap() {
            Response::Inspected { events_dropped, .. } => assert_eq!(events_dropped, 0),
            other => panic!("unexpected parse: {other:?}"),
        }
        // Explicit null is treated the same way.
        let nulled = "{\"type\":\"inspected\",\"session\":5,\"strategy\":\"ucb\",\
                      \"iterations\":2,\"cumulative_time\":1.5,\"pending\":[],\"events\":[],\
                      \"events_dropped\":null}";
        match Response::from_json(&Json::parse(nulled).unwrap()).unwrap() {
            Response::Inspected { events_dropped, .. } => assert_eq!(events_dropped, 0),
            other => panic!("unexpected parse: {other:?}"),
        }
        // Negative or fractional counts are a typed parse error.
        let bad = "{\"type\":\"inspected\",\"session\":5,\"strategy\":\"ucb\",\
                   \"iterations\":2,\"cumulative_time\":1.5,\"pending\":[],\"events\":[],\
                   \"events_dropped\":-3}";
        assert!(Response::from_json(&Json::parse(bad).unwrap()).is_err());
    }

    #[test]
    fn bare_pong_from_an_older_daemon_still_parses() {
        // Pre-stats daemons answered `{"type":"pong"}`; the fields default.
        let parsed = Response::from_json(&Json::parse("{\"type\":\"pong\"}").unwrap()).unwrap();
        assert_eq!(parsed, Response::Pong { version: String::new(), uptime_s: 0.0 });
    }

    #[test]
    fn every_strategy_kind_travels_by_canonical_name() {
        for kind in StrategyKind::all() {
            let mut s = SessionSpec::new(kind, 1, 8);
            s.oracle_best = Some(3); // keeps the oracle spec valid
            round_trip_request(Request::CreateSession(s));
        }
    }

    #[test]
    fn unknown_strategy_name_is_a_parse_error() {
        let j = r#"{"type":"create_session","strategy":"nope","max_nodes":4}"#;
        let err = Request::from_json(&Json::parse(j).unwrap()).unwrap_err();
        assert!(err.contains("unknown strategy"), "{err}");
    }

    #[test]
    fn spec_validation_rejects_bad_spaces() {
        let mut s = spec();
        s.groups = vec![(1, 4), (6, 10)]; // gap at 5
        assert!(s.space().is_err());
        let mut s = spec();
        s.lp = Some(vec![1.0; 3]);
        assert!(s.space().is_err());
        let mut s = spec();
        s.max_nodes = 0;
        assert!(s.space().is_err());
        let mut s = spec();
        s.strategy = StrategyKind::Oracle;
        assert!(s.space().is_err(), "oracle without best");
        s.oracle_best = Some(3);
        assert!(s.space().is_ok());
        assert!(spec().space().is_ok());
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"type\":\"ping\"}").unwrap();
        write_frame(&mut buf, "{\"type\":\"shutdown\"}").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"{\"type\":\"ping\"}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"{\"type\":\"shutdown\"}");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF between frames");
    }

    #[test]
    fn oversized_frame_length_is_rejected_without_reading_payload() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&((MAX_FRAME as u32) + 1).to_be_bytes());
        buf.extend_from_slice(b"garbage");
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_prefix_is_an_unexpected_eof() {
        let buf = [0u8, 0, 1]; // 3 of 4 length bytes
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
