//! The multi-tenant session manager: a fixed worker-thread pool that
//! owns every live [`Session`], sharded by session id.
//!
//! # Threading model
//!
//! Connection handlers (and the in-process client) never touch a
//! [`Session`] directly. Every request is routed by `session_id %
//! workers` onto that shard's unbounded job channel and answered over a
//! one-shot reply channel. Because a given session's requests all land on
//! the same single-threaded worker, per-session operations are totally
//! ordered without any per-session lock — two clients racing
//! `GetProposal` against one session are serialized by the shard queue,
//! and determinism (same seed → same proposal stream) is preserved no
//! matter how many connections share the session.
//!
//! # Lifecycle
//!
//! Sessions that go untouched for [`ServiceConfig::idle_timeout`] are
//! evicted by periodic sweeps (a ticker thread, plus [`SessionManager::sweep_now`]
//! for deterministic tests): open tickets are abandoned, telemetry sinks
//! are flushed, and the id is forgotten. [`SessionManager::shutdown`] is
//! graceful by construction — the stop sentinel enters each shard queue
//! *behind* all previously submitted work, so in-flight requests drain
//! before the workers flush remaining sessions and exit.

use crate::protocol::{
    health_info, health_response, posterior_response, ErrorCode, Request, Response, SessionSpec,
};
use crate::stats::{EventRing, ServiceStats};
use adaphet_core::{
    JsonlSink, Observation, Observed, ResiliencePolicy, Session, SessionError, SurrogateStore,
    Ticket, TunerDriver, WarmStart,
};
use adaphet_metrics::Span;
use adaphet_tsdb::{TimeSeriesStore, TsdbConfig};
use crossbeam::channel::{unbounded, Sender};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of the embedded metrics-history sampler.
///
/// When attached to a [`ServiceConfig`], the manager spawns one sampler
/// thread that freezes the service metrics every `interval` into a
/// bounded [`TimeSeriesStore`] — the backing data of the sidecar's
/// `/metrics/history` endpoint and `adaphet-top`'s sparklines. With
/// `persist` set, the store is loaded at startup and saved at shutdown,
/// so a restarted daemon keeps its history.
#[derive(Debug, Clone)]
pub struct HistoryConfig {
    /// Sampling period of the background thread.
    pub interval: Duration,
    /// Raw samples retained per series (coarse rings share the bound).
    pub capacity: usize,
    /// Downsampling bucket widths, seconds per point.
    pub resolutions: Vec<f64>,
    /// When set, the store persists to this file across restarts.
    pub persist: Option<PathBuf>,
}

impl Default for HistoryConfig {
    fn default() -> Self {
        let tsdb = TsdbConfig::default();
        HistoryConfig {
            interval: Duration::from_secs(5),
            capacity: tsdb.capacity,
            resolutions: tsdb.resolutions,
            persist: None,
        }
    }
}

impl HistoryConfig {
    fn tsdb_config(&self) -> TsdbConfig {
        TsdbConfig { capacity: self.capacity, resolutions: self.resolutions.clone() }
    }
}

/// Tuning knobs for a [`SessionManager`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (shards). Sessions are pinned to `id % workers`.
    pub workers: usize,
    /// In-flight proposal cap applied when a `CreateSession` does not
    /// specify its own.
    pub default_max_in_flight: usize,
    /// Evict sessions untouched for this long (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// When set, every session writes its telemetry to
    /// `<dir>/session-<id>.jsonl`.
    pub telemetry_dir: Option<PathBuf>,
    /// Lifecycle events retained per session for `Inspect`.
    pub events_capacity: usize,
    /// When set, a [`SurrogateStore`] is opened at this directory: every
    /// closing/evicted/drained session persists its surrogate snapshot
    /// there, and `CreateSession` specs carrying `warm_start` seed their
    /// strategy from the nearest stored snapshot — including snapshots
    /// left by a previous daemon run on the same directory.
    pub store_dir: Option<PathBuf>,
    /// When set, a background sampler records metrics history into an
    /// embedded [`TimeSeriesStore`] (`None` = no sampler thread, no
    /// history state: the zero-perturbation default).
    pub history: Option<HistoryConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            default_max_in_flight: 8,
            idle_timeout: Some(Duration::from_secs(600)),
            telemetry_dir: None,
            events_capacity: 64,
            store_dir: None,
            history: None,
        }
    }
}

/// Queue-crossing observability baggage for one routed job: the
/// queue-wait span guard travels with the job (a [`Span`] is `Send`) and
/// drops — recording the wait — the moment the worker dequeues it.
struct Trace {
    shard: usize,
    parent: Option<u64>,
    queue_span: Span,
}

/// One unit of work for a shard worker.
enum Job {
    Create { id: u64, spec: SessionSpec, reply: mpsc::Sender<Response>, trace: Trace },
    Session { request: Request, session: u64, reply: mpsc::Sender<Response>, trace: Trace },
    Sweep { reply: Option<mpsc::Sender<Response>> },
    Stop,
}

struct Entry {
    session: Session,
    last_touch: Instant,
    /// Strategy by canonical name, echoed by `Inspect`.
    strategy: String,
    /// Recent lifecycle events, for `Inspect`.
    events: EventRing,
}

/// The shared multi-tenant session registry. Cheap to share behind an
/// [`Arc`]; all methods take `&self`.
pub struct SessionManager {
    shards: Vec<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    ticker: Option<(mpsc::Sender<()>, JoinHandle<()>)>,
    sampler: Option<(mpsc::Sender<()>, JoinHandle<()>)>,
    history: Option<Arc<Mutex<TimeSeriesStore>>>,
    history_persist: Option<PathBuf>,
    next_id: AtomicU64,
    draining: Arc<AtomicBool>,
    stats: Arc<ServiceStats>,
}

// Error responses are counted centrally in `handle_traced`, which every
// path returns through — `err` only shapes the reply.
fn err(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error { code, message: message.into() }
}

/// The stable verb name of a request, as spelled on the wire — keys the
/// per-verb latency histograms (`service.verb.<name>_s`).
fn verb_name(request: &Request) -> &'static str {
    match request {
        Request::CreateSession(_) => "create_session",
        Request::GetProposal { .. } => "get_proposal",
        Request::SubmitObservation { .. } => "submit_observation",
        Request::GetPosterior { .. } => "get_posterior",
        Request::CloseSession { .. } => "close_session",
        Request::GetStats => "get_stats",
        Request::Inspect { .. } => "inspect",
        Request::GetHealth { .. } => "get_health",
        Request::Ping => "ping",
        Request::Shutdown => "shutdown",
    }
}

fn session_err(id: u64, e: SessionError) -> Response {
    match e {
        SessionError::UnknownTicket(t) => err(
            ErrorCode::UnknownTicket,
            format!("session {id}: {}", SessionError::UnknownTicket(t)),
        ),
        SessionError::TooManyInFlight { limit } => err(
            ErrorCode::TooManyInFlight,
            format!("session {id}: {}", SessionError::TooManyInFlight { limit }),
        ),
    }
}

/// Build a [`Session`] from a validated wire spec.
fn build_session(
    spec: &SessionSpec,
    default_max_in_flight: usize,
    store: Option<&SurrogateStore>,
) -> Result<Session, String> {
    let space = spec.space()?;
    let mut b = TunerDriver::builder(&space)
        .kind(spec.strategy)
        .seed(spec.seed)
        .max_in_flight(spec.max_in_flight.unwrap_or(default_max_in_flight));
    if let Some(store) = store {
        // Attaching the store alone makes the session persist a snapshot
        // when it retires; warm-starting from it is the spec's opt-in.
        b = b.store(store);
        if let Some(min_similarity) = spec.warm_start {
            b = b.warm_start(WarmStart::FromStore { min_similarity });
        }
    }
    if let Some(iters) = spec.iters {
        b = b.iters(iters);
    }
    if let Some(best) = spec.best_known {
        b = b.best_known(best);
    }
    if let Some(best) = spec.oracle_best {
        b = b.oracle_best(best);
    }
    if spec.resilience {
        b = b.resilience(ResiliencePolicy::standard());
    }
    b.build_session().map_err(|e| e.to_string())
}

/// Flush a session's sinks and drop it, abandoning open tickets.
fn retire(mut entry: Entry, stats: &ServiceStats) {
    for ticket in entry.session.pending_tickets() {
        if entry.session.abandon(ticket).is_ok() {
            stats.in_flight_add(-1);
        }
    }
    if entry.session.finish().is_err() {
        stats.count("service.sink_error", 1.0);
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    shard: usize,
    rx: crossbeam::channel::Receiver<Job>,
    idle_timeout: Option<Duration>,
    telemetry_dir: Option<PathBuf>,
    default_max_in_flight: usize,
    events_capacity: usize,
    store: Option<SurrogateStore>,
    stats: Arc<ServiceStats>,
) {
    let mut sessions: HashMap<u64, Entry> = HashMap::new();
    while let Ok(job) = rx.recv() {
        match job {
            Job::Stop => break,
            Job::Sweep { reply } => {
                if let Some(timeout) = idle_timeout {
                    let now = Instant::now();
                    let stale: Vec<u64> = sessions
                        .iter()
                        .filter(|(_, e)| now.duration_since(e.last_touch) >= timeout)
                        .map(|(&id, _)| id)
                        .collect();
                    for id in stale {
                        if let Some(entry) = sessions.remove(&id) {
                            retire(entry, &stats);
                            stats.remove_health(id);
                            stats.count("service.session.evicted", 1.0);
                        }
                    }
                    stats.set_shard_sessions(shard, sessions.len() as u64);
                }
                if let Some(reply) = reply {
                    let _ = reply.send(Response::Pong { version: String::new(), uptime_s: 0.0 });
                }
            }
            Job::Create { id, spec, reply, trace } => {
                // Dequeued: the queue-wait span records itself now.
                drop(trace.queue_span);
                stats.queue_pop(trace.shard);
                let response = match build_session(&spec, default_max_in_flight, store.as_ref()) {
                    Err(message) => err(ErrorCode::BadRequest, message),
                    Ok(mut session) => {
                        if let Some(dir) = &telemetry_dir {
                            match JsonlSink::create(dir.join(format!("session-{id}.jsonl"))) {
                                Ok(sink) => session.add_sink(Box::new(sink)),
                                Err(_) => stats.count("service.sink_error", 1.0),
                            }
                        }
                        let mut events = EventRing::new(events_capacity);
                        events.push(stats.uptime_s(), "created", None, None, None, None);
                        stats.set_health(health_info(id, &session.health()));
                        sessions.insert(
                            id,
                            Entry {
                                session,
                                last_touch: Instant::now(),
                                strategy: spec.strategy.to_string(),
                                events,
                            },
                        );
                        stats.count("service.session.created", 1.0);
                        stats.set_shard_sessions(shard, sessions.len() as u64);
                        Response::SessionCreated { session: id }
                    }
                };
                let _ = reply.send(response);
            }
            Job::Session { request, session: id, reply, trace } => {
                drop(trace.queue_span);
                stats.queue_pop(trace.shard);
                let response = match sessions.get_mut(&id) {
                    None => {
                        err(ErrorCode::UnknownSession, format!("session {id} is not registered"))
                    }
                    Some(entry) => {
                        // Inspect and GetHealth are read-only observers;
                        // they must not keep an otherwise-idle session
                        // alive.
                        if !matches!(request, Request::Inspect { .. } | Request::GetHealth { .. }) {
                            entry.last_touch = Instant::now();
                        }
                        answer(id, entry, &request, &stats, trace.parent)
                    }
                };
                // CloseSession retires the entry after answering from it.
                if matches!(request, Request::CloseSession { .. }) {
                    if let Some(entry) = sessions.remove(&id) {
                        retire(entry, &stats);
                        stats.remove_health(id);
                        stats.count("service.session.closed", 1.0);
                        stats.set_shard_sessions(shard, sessions.len() as u64);
                    }
                }
                let _ = reply.send(response);
            }
        }
    }
    // Drain: flush whatever is still registered before the thread exits.
    for (id, entry) in sessions.drain() {
        retire(entry, &stats);
        stats.remove_health(id);
        stats.count("service.session.drained", 1.0);
    }
    stats.set_shard_sessions(shard, 0);
}

/// Answer one session-routed request against its live session, recording
/// the session's lifecycle events and the propose/observe spans.
fn answer(
    id: u64,
    entry: &mut Entry,
    request: &Request,
    stats: &ServiceStats,
    parent: Option<u64>,
) -> Response {
    let session = &mut entry.session;
    match request {
        Request::GetProposal { .. } => {
            let span = stats.spans().enter("session.propose", parent);
            let proposed = session.propose();
            span.exit();
            match proposed {
                Ok(p) => {
                    stats.count("service.proposal", 1.0);
                    stats.in_flight_add(1);
                    entry.events.push(
                        stats.uptime_s(),
                        "propose",
                        Some(p.ticket.id()),
                        Some(p.action),
                        Some(p.iteration),
                        None,
                    );
                    Response::Proposal {
                        session: id,
                        ticket: p.ticket.id(),
                        iteration: p.iteration,
                        action: p.action,
                    }
                }
                Err(e) => {
                    entry.events.push(stats.uptime_s(), "error", None, None, None, None);
                    session_err(id, e)
                }
            }
        }
        Request::SubmitObservation { ticket, duration, .. } => {
            let span = stats.spans().enter("session.observe", parent);
            let observed = session.observe(Ticket::from_id(*ticket), Observation::of(*duration));
            span.exit();
            match observed {
                Ok(Observed::Recorded(out)) => {
                    stats.count("service.observation", 1.0);
                    stats.in_flight_add(-1);
                    // The health engine folds on the record path, so the
                    // published summary tracks every observation.
                    stats.set_health(health_info(id, &session.health()));
                    entry.events.push(
                        stats.uptime_s(),
                        "recorded",
                        Some(*ticket),
                        Some(out.action),
                        Some(out.iteration),
                        Some(out.duration),
                    );
                    Response::Recorded {
                        session: id,
                        iteration: out.iteration,
                        action: out.action,
                        duration: out.duration,
                        cumulative_time: session.cumulative_time(),
                    }
                }
                Ok(Observed::Retry { ticket, action, attempt }) => {
                    stats.count("service.retry", 1.0);
                    entry.events.push(
                        stats.uptime_s(),
                        "retry",
                        Some(ticket.id()),
                        Some(action),
                        None,
                        Some(*duration),
                    );
                    Response::Retry { session: id, ticket: ticket.id(), action, attempt }
                }
                Err(e) => {
                    entry.events.push(stats.uptime_s(), "error", Some(*ticket), None, None, None);
                    session_err(id, e)
                }
            }
        }
        Request::GetPosterior { .. } => posterior_response(id, session.posterior()),
        Request::GetHealth { .. } => {
            let report = session.health();
            stats.set_health(health_info(id, &report));
            health_response(id, &report)
        }
        Request::Inspect { .. } => Response::Inspected {
            session: id,
            strategy: entry.strategy.clone(),
            iterations: session.iterations_proposed(),
            cumulative_time: session.cumulative_time(),
            pending: session.pending().iter().map(|&(t, a)| (t.id(), a)).collect(),
            events: entry.events.events(),
            events_dropped: entry.events.dropped(),
        },
        Request::CloseSession { .. } => Response::Closed {
            session: id,
            iterations: session.iterations_proposed(),
            total_time: session.history().total_time(),
            best_action: session.history().best_action(),
            history: session.history().records().to_vec(),
        },
        // Routed requests are exactly the six above; `route` never sends
        // anything else.
        _ => err(ErrorCode::Internal, "request routed to a session worker by mistake"),
    }
}

impl SessionManager {
    /// Spin up the worker pool (and the idle-eviction ticker, when an
    /// idle timeout is configured).
    pub fn new(config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let stats = Arc::new(ServiceStats::new(workers));
        // One store handle, cloned per shard: `SurrogateStore` is a thin
        // directory handle, and its writes are atomic (tmp + rename), so
        // shards never see each other's half-written snapshots.
        let store = config.store_dir.as_ref().and_then(|dir| {
            let opened = SurrogateStore::open(dir).ok();
            if opened.is_none() {
                stats.count("service.store_error", 1.0);
            }
            opened
        });
        let mut shards = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for shard in 0..workers {
            let (tx, rx) = unbounded::<Job>();
            let idle = config.idle_timeout;
            let dir = config.telemetry_dir.clone();
            let cap = config.default_max_in_flight.max(1);
            let events = config.events_capacity;
            let store = store.clone();
            let stats = Arc::clone(&stats);
            shards.push(tx);
            handles.push(std::thread::spawn(move || {
                worker_loop(shard, rx, idle, dir, cap, events, store, stats)
            }));
        }
        let ticker = config.idle_timeout.map(|timeout| {
            let tick = (timeout / 4).clamp(Duration::from_millis(50), Duration::from_secs(30));
            let shard_txs = shards.clone();
            let (stop_tx, stop_rx) = mpsc::channel::<()>();
            let handle = std::thread::spawn(move || {
                while let Err(mpsc::RecvTimeoutError::Timeout) = stop_rx.recv_timeout(tick) {
                    for tx in &shard_txs {
                        let _ = tx.send(Job::Sweep { reply: None });
                    }
                }
            });
            (stop_tx, handle)
        });
        let draining = Arc::new(AtomicBool::new(false));
        // The history plane only exists when asked for: no config means
        // no store, no mutex, no sampler thread — nothing for the
        // session hot path to even share a cache line with.
        let mut history = None;
        let mut history_persist = None;
        let mut sampler = None;
        if let Some(h) = &config.history {
            let store = match &h.persist {
                None => TimeSeriesStore::new(h.tsdb_config()),
                Some(path) => {
                    let (store, warn) = TimeSeriesStore::load_or_new(path, h.tsdb_config());
                    if warn.is_some() {
                        stats.count("service.history.load_error", 1.0);
                    }
                    store
                }
            };
            let store = Arc::new(Mutex::new(store));
            let (stop_tx, stop_rx) = mpsc::channel::<()>();
            let interval = h.interval.max(Duration::from_millis(10));
            let thread_store = Arc::clone(&store);
            let thread_stats = Arc::clone(&stats);
            let thread_draining = Arc::clone(&draining);
            let handle = std::thread::spawn(move || {
                while let Err(mpsc::RecvTimeoutError::Timeout) = stop_rx.recv_timeout(interval) {
                    let report = thread_stats.report(thread_draining.load(Ordering::SeqCst));
                    thread_store.lock().unwrap().ingest(&report);
                }
            });
            history = Some(store);
            history_persist = h.persist.clone();
            sampler = Some((stop_tx, handle));
        }
        SessionManager {
            shards,
            workers: handles,
            ticker,
            sampler,
            history,
            history_persist,
            next_id: AtomicU64::new(1),
            draining,
            stats,
        }
    }

    /// Whether the metrics-history sampler is configured.
    pub fn history_enabled(&self) -> bool {
        self.history.is_some()
    }

    /// Take one history sample right now, bypassing the sampler's clock
    /// (deterministic alternative for tests and operator tooling).
    /// Returns `false` when history is disabled.
    pub fn sample_history_now(&self) -> bool {
        match &self.history {
            None => false,
            Some(store) => {
                let report = self.stats.report(self.is_draining());
                store.lock().unwrap().ingest(&report);
                true
            }
        }
    }

    /// The history store's full JSON document (the `/metrics/history`
    /// body), or `None` when no sampler is configured.
    pub fn history_json(&self) -> Option<String> {
        self.history.as_ref().map(|store| store.lock().unwrap().to_json())
    }

    /// The `/health` endpoint body: every live session's latest health
    /// report, ordered by session id. Field order inside each session
    /// object matches the `health` wire frame exactly.
    pub fn health_json(&self) -> String {
        let sessions = self
            .stats
            .health_infos()
            .iter()
            .map(|h| format!("{{{}}}", h.json_fields()))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"uptime_s\":{:.3},\"draining\":{},\"sessions\":[{sessions}]}}",
            self.stats.uptime_s(),
            self.is_draining()
        )
    }

    /// Whether [`Request::Shutdown`] was received (new work is refused).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// The manager's observability state (always collecting).
    pub fn stats(&self) -> &Arc<ServiceStats> {
        &self.stats
    }

    /// The service-wide snapshot answered to [`Request::GetStats`].
    pub fn stats_snapshot(&self) -> crate::protocol::StatsSnapshot {
        self.stats.snapshot(env!("CARGO_PKG_VERSION"), self.is_draining())
    }

    /// Route one request and block for its answer. This is the entire
    /// service semantics; the wire server and the in-process client are
    /// both thin shells around it.
    pub fn handle(&self, request: Request) -> Response {
        self.handle_traced(request, None)
    }

    /// [`handle`](Self::handle) with an explicit parent span id, so the
    /// wire server's per-request root span encloses the dispatch,
    /// queue-wait and session spans.
    pub fn handle_traced(&self, request: Request, parent: Option<u64>) -> Response {
        let verb = verb_name(&request);
        self.stats.count("service.request", 1.0);
        let span = self.stats.spans().enter("dispatch", parent);
        let span_id = span.id();
        let start = Instant::now();
        let response = self.dispatch(request, span_id);
        span.exit();
        self.stats.observe(&format!("service.verb.{verb}_s"), start.elapsed().as_secs_f64());
        if matches!(response, Response::Error { .. }) {
            self.stats.count("service.error", 1.0);
        }
        response
    }

    fn dispatch(&self, request: Request, parent: Option<u64>) -> Response {
        match request {
            Request::Ping => Response::Pong {
                version: env!("CARGO_PKG_VERSION").to_string(),
                uptime_s: self.stats.uptime_s(),
            },
            // Answered inline so the snapshot works mid-drain — watching
            // a drain finish is half the point of the endpoint.
            Request::GetStats => Response::Stats(self.stats_snapshot()),
            Request::Shutdown => {
                self.draining.store(true, Ordering::SeqCst);
                Response::ShuttingDown
            }
            Request::CreateSession(spec) => {
                if self.is_draining() {
                    return err(ErrorCode::ShuttingDown, "daemon is draining; no new sessions");
                }
                // Validate before consuming an id, so bad specs are
                // rejected without touching a worker.
                if let Err(message) = spec.space() {
                    return err(ErrorCode::BadRequest, message);
                }
                let id = self.next_id.fetch_add(1, Ordering::SeqCst);
                self.route(id, parent, |reply, trace| Job::Create { id, spec, reply, trace })
            }
            // Draining still resolves open tickets, but issues no new
            // proposals.
            Request::GetProposal { .. } if self.is_draining() => {
                err(ErrorCode::ShuttingDown, "daemon is draining; no new proposals")
            }
            Request::GetProposal { session }
            | Request::SubmitObservation { session, .. }
            | Request::GetPosterior { session }
            | Request::Inspect { session }
            | Request::GetHealth { session }
            | Request::CloseSession { session } => self.route(session, parent, |reply, trace| {
                Job::Session { request, session, reply, trace }
            }),
        }
    }

    /// Run an idle-eviction sweep on every shard and wait for it to
    /// finish (deterministic alternative to the ticker, for tests and
    /// operator tooling).
    pub fn sweep_now(&self) {
        let acks: Vec<mpsc::Receiver<Response>> = self
            .shards
            .iter()
            .map(|tx| {
                let (ack_tx, ack_rx) = mpsc::channel();
                let _ = tx.send(Job::Sweep { reply: Some(ack_tx) });
                ack_rx
            })
            .collect();
        for ack in acks {
            let _ = ack.recv();
        }
    }

    fn route(
        &self,
        id: u64,
        parent: Option<u64>,
        job: impl FnOnce(mpsc::Sender<Response>, Trace) -> Job,
    ) -> Response {
        let shard = (id % self.shards.len() as u64) as usize;
        let (reply_tx, reply_rx) = mpsc::channel();
        self.stats.queue_push(shard);
        let trace = Trace {
            shard,
            parent,
            queue_span: self.stats.spans().enter("shard.queue_wait", parent),
        };
        if self.shards[shard].send(job(reply_tx, trace)).is_err() {
            // The job never entered a live queue; undo its depth tick.
            self.stats.queue_pop(shard);
            return err(ErrorCode::ShuttingDown, "worker pool is stopped");
        }
        match reply_rx.recv() {
            Ok(response) => response,
            Err(_) => err(ErrorCode::Internal, "worker dropped the request"),
        }
    }

    /// Graceful shutdown: stop the ticker, let every shard drain its
    /// queued jobs, flush all remaining sessions, and join the workers.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.draining.store(true, Ordering::SeqCst);
        if let Some((stop, handle)) = self.ticker.take() {
            let _ = stop.send(());
            let _ = handle.join();
        }
        if let Some((stop, handle)) = self.sampler.take() {
            let _ = stop.send(());
            let _ = handle.join();
        }
        for tx in &self.shards {
            // FIFO: the sentinel lands behind all in-flight jobs, so they
            // drain before the worker exits.
            let _ = tx.send(Job::Stop);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Persist the history last, with a final sample covering the
        // drain itself, so a restarted daemon resumes a complete record.
        if let (Some(store), Some(path)) = (&self.history, &self.history_persist) {
            let report = self.stats.report(true);
            let mut store = store.lock().unwrap();
            store.ingest(&report);
            if store.save(path).is_err() {
                self.stats.count("service.history.save_error", 1.0);
            }
        }
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaphet_core::StrategyKind;
    use std::sync::Arc;

    fn response_curve(n: usize) -> f64 {
        30.0 / n as f64 + 0.8 * n as f64
    }

    fn spec(kind: StrategyKind, seed: u64) -> SessionSpec {
        let mut s = SessionSpec::new(kind, seed, 10);
        s.groups = vec![(1, 5), (6, 10)];
        s.lp = Some((1..=10).map(|n| 30.0 / n as f64).collect());
        s
    }

    fn manager() -> SessionManager {
        SessionManager::new(ServiceConfig { idle_timeout: None, ..ServiceConfig::default() })
    }

    fn create(m: &SessionManager, s: SessionSpec) -> u64 {
        match m.handle(Request::CreateSession(s)) {
            Response::SessionCreated { session } => session,
            other => panic!("expected session_created, got {other:?}"),
        }
    }

    /// Drive one managed session for `iters` iterations, returning its
    /// closing history.
    fn drive(m: &SessionManager, id: u64, iters: usize) -> Vec<(usize, f64)> {
        for _ in 0..iters {
            let (ticket, action) = match m.handle(Request::GetProposal { session: id }) {
                Response::Proposal { ticket, action, .. } => (ticket, action),
                other => panic!("expected proposal, got {other:?}"),
            };
            match m.handle(Request::SubmitObservation {
                session: id,
                ticket,
                duration: response_curve(action),
            }) {
                Response::Recorded { .. } => {}
                other => panic!("expected recorded, got {other:?}"),
            }
        }
        match m.handle(Request::CloseSession { session: id }) {
            Response::Closed { history, iterations, .. } => {
                assert_eq!(iterations, iters);
                history
            }
            other => panic!("expected closed, got {other:?}"),
        }
    }

    /// The acceptance criterion's in-process half: concurrent managed
    /// sessions are bit-identical to sequential single-threaded drivers
    /// with the same seeds.
    #[test]
    fn concurrent_sessions_match_sequential_drivers_bitwise() {
        let kinds = [
            StrategyKind::GpDiscontinuous,
            StrategyKind::Ucb,
            StrategyKind::GpUcb,
            StrategyKind::DivideConquer,
        ];
        type RunOutcome = (u64, StrategyKind, Vec<(usize, f64)>);
        let m = Arc::new(manager());
        let joined: Vec<RunOutcome> = {
            let handles: Vec<_> = (0..8u64)
                .map(|i| {
                    let m = Arc::clone(&m);
                    let kind = kinds[i as usize % kinds.len()];
                    std::thread::spawn(move || {
                        let id = create(&m, spec(kind, i));
                        (i, kind, drive(&m, id, 30))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        };
        for (seed, kind, history) in joined {
            let mut d = TunerDriver::builder(&spec(kind, seed).space().unwrap())
                .kind(kind)
                .seed(seed)
                .build()
                .unwrap();
            d.run(30, |n| Observation::of(response_curve(n)));
            assert_eq!(
                history,
                d.history().records(),
                "{kind} seed {seed}: service history diverged from the driver loop"
            );
        }
    }

    #[test]
    fn multi_in_flight_tickets_resolve_out_of_order() {
        let m = manager();
        let id = create(&m, spec(StrategyKind::Ucb, 1));
        let p0 = m.handle(Request::GetProposal { session: id });
        let p1 = m.handle(Request::GetProposal { session: id });
        let (t0, t1, a0, a1) = match (&p0, &p1) {
            (
                Response::Proposal { ticket: t0, action: a0, .. },
                Response::Proposal { ticket: t1, action: a1, .. },
            ) => (*t0, *t1, *a0, *a1),
            other => panic!("expected two proposals, got {other:?}"),
        };
        assert_ne!(t0, t1);
        // Resolve in reverse order; each lands on its own iteration.
        match m.handle(Request::SubmitObservation { session: id, ticket: t1, duration: 2.0 }) {
            Response::Recorded { iteration, action, .. } => {
                assert_eq!((iteration, action), (1, a1));
            }
            other => panic!("{other:?}"),
        }
        match m.handle(Request::SubmitObservation { session: id, ticket: t0, duration: 1.0 }) {
            Response::Recorded { iteration, action, .. } => {
                assert_eq!((iteration, action), (0, a0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn in_flight_cap_is_a_typed_wire_error() {
        let m = manager();
        let mut s = spec(StrategyKind::Ucb, 1);
        s.max_in_flight = Some(1);
        let id = create(&m, s);
        assert!(matches!(
            m.handle(Request::GetProposal { session: id }),
            Response::Proposal { .. }
        ));
        match m.handle(Request::GetProposal { session: id }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::TooManyInFlight),
            other => panic!("expected too-many-in-flight, got {other:?}"),
        }
    }

    #[test]
    fn unknown_ids_get_typed_errors() {
        let m = manager();
        match m.handle(Request::GetProposal { session: 999 }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownSession),
            other => panic!("{other:?}"),
        }
        let id = create(&m, spec(StrategyKind::Ucb, 1));
        match m.handle(Request::SubmitObservation { session: id, ticket: 42, duration: 1.0 }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownTicket),
            other => panic!("{other:?}"),
        }
        match m.handle(Request::CreateSession(SessionSpec::new(StrategyKind::Oracle, 0, 4))) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn idle_sessions_are_evicted_and_closed_ids_forgotten() {
        let m = SessionManager::new(ServiceConfig {
            idle_timeout: Some(Duration::from_millis(20)),
            ..ServiceConfig::default()
        });
        let id = create(&m, spec(StrategyKind::Ucb, 1));
        std::thread::sleep(Duration::from_millis(40));
        m.sweep_now();
        match m.handle(Request::GetProposal { session: id }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownSession),
            other => panic!("expected eviction, got {other:?}"),
        }
        // A closed id is likewise gone.
        let id2 = create(&m, spec(StrategyKind::Ucb, 2));
        drive(&m, id2, 2);
        match m.handle(Request::GetPosterior { session: id2 }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownSession),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shutdown_refuses_new_work_but_drains_open_tickets() {
        let m = manager();
        let id = create(&m, spec(StrategyKind::Ucb, 1));
        let (ticket, action) = match m.handle(Request::GetProposal { session: id }) {
            Response::Proposal { ticket, action, .. } => (ticket, action),
            other => panic!("{other:?}"),
        };
        assert_eq!(m.handle(Request::Shutdown), Response::ShuttingDown);
        assert!(m.is_draining());
        match m.handle(Request::CreateSession(spec(StrategyKind::Ucb, 2))) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::ShuttingDown),
            other => panic!("{other:?}"),
        }
        match m.handle(Request::GetProposal { session: id }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::ShuttingDown),
            other => panic!("{other:?}"),
        }
        // The open ticket still drains to a recorded observation.
        match m.handle(Request::SubmitObservation { session: id, ticket, duration: 1.5 }) {
            Response::Recorded { action: a, .. } => assert_eq!(a, action),
            other => panic!("{other:?}"),
        }
        match m.handle(Request::CloseSession { session: id }) {
            Response::Closed { history, .. } => assert_eq!(history.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn posterior_endpoint_mirrors_the_session_surrogate() {
        let m = manager();
        let id = create(&m, spec(StrategyKind::GpDiscontinuous, 3));
        match m.handle(Request::GetPosterior { session: id }) {
            Response::Posterior { points, .. } => assert!(points.is_none()),
            other => panic!("{other:?}"),
        }
        for _ in 0..12 {
            let (ticket, action) = match m.handle(Request::GetProposal { session: id }) {
                Response::Proposal { ticket, action, .. } => (ticket, action),
                other => panic!("{other:?}"),
            };
            m.handle(Request::SubmitObservation {
                session: id,
                ticket,
                duration: response_curve(action),
            });
        }
        match m.handle(Request::GetPosterior { session: id }) {
            Response::Posterior { points: Some(points), .. } => assert_eq!(points.len(), 10),
            other => panic!("expected a fitted posterior, got {other:?}"),
        }
    }

    #[test]
    fn sessions_persist_to_the_store_and_warm_start_across_manager_restarts() {
        let dir = std::env::temp_dir().join(format!("adaphet-mgr-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServiceConfig {
            idle_timeout: None,
            store_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        };
        // First "daemon run": a cold session leaves a snapshot behind.
        let cold = {
            let m = SessionManager::new(cfg.clone());
            let id = create(&m, spec(StrategyKind::GpDiscontinuous, 9));
            drive(&m, id, 20)
        };
        assert!(
            std::fs::read_dir(&dir).map(|d| d.count() > 0).unwrap_or(false),
            "closing a session must persist a snapshot"
        );
        // Second "daemon run" over the same directory: an opted-in spec
        // warm-starts from the persisted snapshot.
        let m2 = SessionManager::new(cfg);
        let mut warm_spec = spec(StrategyKind::GpDiscontinuous, 9);
        warm_spec.warm_start = Some(0.9);
        let id = create(&m2, warm_spec);
        let warm = drive(&m2, id, 8);
        assert_eq!(warm[0].0, 10, "warm sessions still measure the all-nodes baseline");
        assert_ne!(
            warm.iter().map(|r| r.0).collect::<Vec<_>>(),
            cold.iter().take(8).map(|r| r.0).collect::<Vec<_>>(),
            "the warm session must not replay the cold initialization"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn telemetry_dir_writes_one_jsonl_per_session() {
        let dir = std::env::temp_dir().join(format!("adaphet-mgr-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let m = SessionManager::new(ServiceConfig {
            idle_timeout: None,
            telemetry_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        });
        let id = create(&m, spec(StrategyKind::Ucb, 5));
        drive(&m, id, 3);
        let text = std::fs::read_to_string(dir.join(format!("session-{id}.jsonl"))).unwrap();
        assert_eq!(text.lines().count(), 3, "one event per recorded iteration");
        assert!(text.lines().all(|l| l.contains("\"iteration\":")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
