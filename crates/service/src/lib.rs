#![warn(missing_docs)]

//! `adaphet-service` — a multi-tenant async tuning daemon on top of the
//! [`Session`](adaphet_core::Session)-split driver API.
//!
//! The paper's tuning loop is synchronous: the driver proposes a node
//! count, runs the iteration, records the duration. A real deployment
//! inverts that control flow — applications run on their own clusters
//! and merely *consult* a tuner between iterations. This crate is that
//! tuner as a daemon:
//!
//! * [`SessionManager`] — a fixed worker-thread pool owning every live
//!   session, sharded by session id so per-session operations are
//!   totally ordered (and therefore exactly as deterministic as the
//!   single-threaded driver — pinned by equivalence tests, bit for bit);
//! * [`protocol`] — the length-prefixed JSON wire vocabulary
//!   (`create_session`, `get_proposal`, `submit_observation`,
//!   `get_posterior`, `close_session`, plus typed errors), with
//!   multiple proposals in flight per session via the pending-action
//!   ledger's tickets;
//! * [`Server`] — TCP and Unix-domain-socket accept loops (the
//!   `adaphet-serve` binary is a thin flag parser around them);
//! * [`Client`] — the blocking typed client used by tests, the
//!   `uds_client` example, and embedders.
//!
//! Sessions are keyed by id, not by connection: clients may disconnect
//! mid-measurement and resolve their tickets over a fresh connection.
//! Idle sessions are evicted after [`ServiceConfig::idle_timeout`];
//! shutdown drains in-flight work before the workers exit.
//!
//! # Observability plane
//!
//! The daemon watches itself: [`ServiceStats`] keeps an always-on
//! registry of `service.*` counters, per-verb latency histograms
//! (surfaced as p50/p95/p99), per-shard queue-depth gauges and a ring of
//! recent request-lifecycle spans; each session carries a bounded
//! [`EventRing`] of its recent lifecycle events. The `get_stats` and
//! `inspect` verbs expose all of that over the ordinary wire protocol,
//! [`MetricsServer`] serves the Prometheus text exposition on
//! `GET /metrics`, and the `adaphet-top` binary renders it as a live
//! terminal dashboard.
//!
//! # Health & history
//!
//! Each session carries a convergence [`HealthTracker`](adaphet_core::HealthTracker)
//! folded to `ok / warn / stalled / diverging`; the `get_health` verb,
//! the sidecar's `GET /health` endpoint, and per-state gauges in the
//! exposition all read from the same published summaries. With
//! [`HistoryConfig`] attached, a background sampler freezes the metrics
//! registry into an embedded bounded time-series store
//! ([`adaphet_tsdb::TimeSeriesStore`]) served on `GET /metrics/history`
//! and optionally persisted across daemon restarts.
//!
//! ```no_run
//! use adaphet_core::StrategyKind;
//! use adaphet_service::{Client, SessionSpec};
//!
//! let mut client = Client::connect_uds("/tmp/adaphet.sock").unwrap();
//! let spec = SessionSpec::new(StrategyKind::GpDiscontinuous, 42, 32);
//! let id = client.create_session(spec).unwrap();
//! for _ in 0..40 {
//!     let (ticket, _iter, action) = client.get_proposal(id).unwrap();
//!     let duration = run_my_iteration_on(action); // your application
//!     client.submit(id, ticket, duration).unwrap();
//! }
//! let closed = client.close_session(id).unwrap();
//! println!("best node count: {:?}", closed.best_action);
//! # fn run_my_iteration_on(_n: usize) -> f64 { 1.0 }
//! ```

pub mod client;
pub mod http;
pub mod manager;
pub mod protocol;
pub mod server;
pub mod stats;
pub mod top;

pub use client::{Client, ClientError, ClosedSession, InspectedSession, PongInfo, Submitted};
pub use http::MetricsServer;
pub use manager::{HistoryConfig, ServiceConfig, SessionManager};
pub use protocol::{
    ErrorCode, HealthInfo, Request, Response, SessionEvent, SessionSpec, ShardStats, StatsSnapshot,
    VerbStats, MAX_FRAME,
};
pub use server::{Endpoint, Server};
pub use stats::{EventRing, ServiceStats};
