//! The wire server: accept loops for TCP and Unix-domain sockets, one
//! handler thread per connection, all semantics delegated to the shared
//! [`SessionManager`].
//!
//! Connections are stateless: a session belongs to the manager, not to
//! the socket that created it, so a client may disconnect mid-measurement
//! and resolve its ticket over a fresh connection (or hand the session id
//! to another process entirely). Malformed frames are answered with a
//! typed error *on the same connection* — only an oversized length prefix
//! (which makes the stream impossible to resynchronize) or an I/O error
//! drops the socket.

use crate::manager::SessionManager;
use crate::protocol::{read_frame, write_frame, ErrorCode, Request, Response};
use adaphet_analysis::Json;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Where a [`Server`] listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7601`.
    Tcp(String),
    /// A Unix-domain socket path (removed and re-created on bind).
    #[cfg(unix)]
    Uds(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            #[cfg(unix)]
            Endpoint::Uds(path) => write!(f, "uds:{}", path.display()),
        }
    }
}

enum AnyListener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(UnixListener),
}

/// A running daemon: an accept loop plus per-connection handler threads.
///
/// Dropping (or calling [`Server::wait`] after a client sent
/// [`Request::Shutdown`]) stops accepting; draining the manager is the
/// owner's job, because the manager is shared.
pub struct Server {
    manager: Arc<SessionManager>,
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `endpoint` and start accepting. For UDS endpoints a stale
    /// socket file is removed first.
    pub fn bind(endpoint: Endpoint, manager: Arc<SessionManager>) -> std::io::Result<Server> {
        let (listener, endpoint) = match endpoint {
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(&addr)?;
                // Re-advertise the resolved address so `…:0` binds (OS-
                // assigned port) are discoverable via `endpoint()`.
                let actual = listener.local_addr()?.to_string();
                (AnyListener::Tcp(listener), Endpoint::Tcp(actual))
            }
            #[cfg(unix)]
            Endpoint::Uds(path) => {
                let _ = std::fs::remove_file(&path);
                (AnyListener::Uds(UnixListener::bind(&path)?), Endpoint::Uds(path))
            }
        };
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let manager = Arc::clone(&manager);
            let stop = Arc::clone(&stop);
            let endpoint = endpoint.clone();
            Some(std::thread::spawn(move || accept_loop(listener, endpoint, manager, stop)))
        };
        Ok(Server { manager, endpoint, stop, accept_thread })
    }

    /// The endpoint this server is bound to. For TCP this is the
    /// *resolved* address — bind to `…:0` and read the OS-assigned port
    /// back from here.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The shared session manager.
    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.manager
    }

    /// Block until the accept loop exits — i.e. until some client sends
    /// [`Request::Shutdown`] or [`Server::stop`] is called.
    pub fn wait(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Ask the accept loop to exit and wake it with a self-connection.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        wake(&self.endpoint);
        self.wait();
        #[cfg(unix)]
        if let Endpoint::Uds(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Wake a blocked `accept()` with a throwaway self-connection —
/// `accept()` has no timeout, so this is how the stop flag gets observed.
fn wake(endpoint: &Endpoint) {
    match endpoint {
        Endpoint::Tcp(addr) => drop(TcpStream::connect(addr)),
        #[cfg(unix)]
        Endpoint::Uds(path) => drop(UnixStream::connect(path)),
    }
}

fn accept_loop(
    listener: AnyListener,
    endpoint: Endpoint,
    manager: Arc<SessionManager>,
    stop: Arc<AtomicBool>,
) {
    loop {
        let conn: Option<Box<dyn Conn>> = match &listener {
            AnyListener::Tcp(l) => l.accept().ok().map(|(s, _)| Box::new(s) as Box<dyn Conn>),
            #[cfg(unix)]
            AnyListener::Uds(l) => l.accept().ok().map(|(s, _)| Box::new(s) as Box<dyn Conn>),
        };
        if stop.load(Ordering::SeqCst) || manager.is_draining() {
            break;
        }
        let Some(stream) = conn else { continue };
        manager.stats().count("service.connection", 1.0);
        let manager = Arc::clone(&manager);
        let stop = Arc::clone(&stop);
        let endpoint = endpoint.clone();
        std::thread::spawn(move || serve_connection(stream, &endpoint, &manager, &stop));
    }
}

/// The object-safe connection bound: both socket kinds, plus in-memory
/// duplex streams in tests.
trait Conn: Read + Write + Send {}
impl<T: Read + Write + Send> Conn for T {}

/// Decode one frame's payload into a request, or the error reply to
/// send (boxed: `Response` carries whole stats snapshots these days).
fn decode(payload: &[u8]) -> Result<Request, Box<Response>> {
    let text = std::str::from_utf8(payload).map_err(|_| {
        Box::new(Response::Error {
            code: ErrorCode::MalformedFrame,
            message: "frame payload is not UTF-8".into(),
        })
    })?;
    let json = Json::parse(text).map_err(|e| {
        Box::new(Response::Error {
            code: ErrorCode::MalformedFrame,
            message: format!("frame payload is not JSON: {e}"),
        })
    })?;
    Request::from_json(&json)
        .map_err(|e| Box::new(Response::Error { code: ErrorCode::BadRequest, message: e }))
}

fn serve_connection(
    mut stream: Box<dyn Conn>,
    endpoint: &Endpoint,
    manager: &SessionManager,
    stop: &AtomicBool,
) {
    // A clean disconnect, an unresynchronizable stream, or an I/O error
    // ends the connection; sessions live on in the manager.
    let spans = manager.stats().spans().clone();
    while let Ok(Some(payload)) = read_frame(&mut stream) {
        // The root span covers decode → dispatch → encode/write; the
        // frame read is excluded because it is mostly the client
        // thinking, not the daemon working.
        let request_span = spans.enter("request", None);
        let root = request_span.id();
        let mut initiated_shutdown = false;
        let decode_span = spans.enter("decode", root);
        let decoded = decode(&payload);
        decode_span.exit();
        let reply = match decoded {
            Ok(request) => {
                initiated_shutdown = request == Request::Shutdown;
                manager.handle_traced(request, root)
            }
            Err(error_reply) => {
                manager.stats().count("service.malformed", 1.0);
                *error_reply
            }
        };
        let encode_span = spans.enter("encode", root);
        let write_ok = write_frame(&mut stream, &reply.to_json()).is_ok();
        encode_span.exit();
        request_span.exit();
        if initiated_shutdown {
            // The acknowledgement is this connection's last frame; wake
            // the accept loop so it can observe the stop flag and exit.
            stop.store(true, Ordering::SeqCst);
            wake(endpoint);
            break;
        }
        if !write_ok {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::ServiceConfig;

    #[cfg(unix)]
    fn uds_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("adaphet-srv-{}-{tag}.sock", std::process::id()))
    }

    #[cfg(unix)]
    #[test]
    fn uds_server_answers_ping_and_survives_garbage_frames() {
        let manager = Arc::new(SessionManager::new(ServiceConfig::default()));
        let path = uds_path("ping");
        let mut server = Server::bind(Endpoint::Uds(path.clone()), manager).unwrap();
        let mut conn = UnixStream::connect(&path).unwrap();

        // Garbage JSON: typed malformed-frame error, connection stays up.
        write_frame(&mut conn, "this is not json").unwrap();
        let reply = read_frame(&mut conn).unwrap().unwrap();
        let parsed =
            Response::from_json(&Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap())
                .unwrap();
        assert!(matches!(parsed, Response::Error { code: ErrorCode::MalformedFrame, .. }));

        // Valid JSON, unknown request: bad-request, connection stays up.
        write_frame(&mut conn, "{\"type\":\"frobnicate\"}").unwrap();
        let reply = read_frame(&mut conn).unwrap().unwrap();
        let parsed =
            Response::from_json(&Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap())
                .unwrap();
        assert!(matches!(parsed, Response::Error { code: ErrorCode::BadRequest, .. }));

        // The same connection still answers a well-formed ping, and the
        // pong identifies the daemon.
        write_frame(&mut conn, &Request::Ping.to_json()).unwrap();
        let reply = read_frame(&mut conn).unwrap().unwrap();
        let parsed =
            Response::from_json(&Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap())
                .unwrap();
        match parsed {
            Response::Pong { version, uptime_s } => {
                assert_eq!(version, env!("CARGO_PKG_VERSION"));
                assert!(uptime_s >= 0.0);
            }
            other => panic!("expected pong, got {other:?}"),
        }

        server.stop();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tcp_server_answers_on_an_os_assigned_port() {
        let manager = Arc::new(SessionManager::new(ServiceConfig::default()));
        let mut server = Server::bind(Endpoint::Tcp("127.0.0.1:0".into()), manager).unwrap();
        let Endpoint::Tcp(addr) = server.endpoint().clone() else { unreachable!() };
        let mut conn = TcpStream::connect(&addr).unwrap();
        write_frame(&mut conn, &Request::Ping.to_json()).unwrap();
        let reply = read_frame(&mut conn).unwrap().unwrap();
        let parsed =
            Response::from_json(&Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap())
                .unwrap();
        assert!(matches!(parsed, Response::Pong { .. }));
        server.stop();
    }
}
