//! Renderers for `adaphet-top`: turn a [`StatsSnapshot`] into a
//! fixed-width ASCII dashboard or a self-contained HTML page.
//!
//! Pure functions of the snapshot — the binary owns polling, screen
//! clearing and file writing — so the exact layout is unit-testable
//! without a daemon.

use crate::protocol::StatsSnapshot;
use adaphet_analysis::{html_escape, Json, STYLE};
use std::time::Duration;

/// Parse the `--interval SECS` flag value shared by the top binaries:
/// a positive, finite number of seconds (fractions allowed).
pub fn parse_interval(value: &str) -> Result<Duration, String> {
    let secs: f64 =
        value.parse().map_err(|_| "--interval needs a number of seconds".to_string())?;
    if !secs.is_finite() || secs <= 0.0 {
        return Err("--interval must be positive".into());
    }
    Ok(Duration::from_secs_f64(secs))
}

/// Format a duration in seconds with an adaptive unit (`ns`/`us`/`ms`/`s`).
pub fn fmt_duration(seconds: f64) -> String {
    let s = seconds.abs();
    if s == 0.0 {
        "0".to_string()
    } else if s < 1e-6 {
        format!("{:.0} ns", seconds * 1e9)
    } else if s < 1e-3 {
        format!("{:.1} us", seconds * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

/// A crude bar of `#` marks: `value` out of `max`, `width` cells.
fn bar(value: u64, max: u64, width: usize) -> String {
    let max = max.max(1);
    let filled = ((value as f64 / max as f64) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled.min(width) { '#' } else { '.' });
    }
    s
}

/// Render the dashboard as plain fixed-width text, one trailing newline.
pub fn render_ascii(snap: &StatsSnapshot) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str(&format!(
        "adaphet-serve {} | up {} | {}\n",
        if snap.version.is_empty() { "?" } else { &snap.version },
        fmt_duration(snap.uptime_s),
        if snap.draining { "DRAINING" } else { "serving" },
    ));
    out.push_str(&format!(
        "sessions {} live ({} created, {} closed, {} evicted, {} drained) | in-flight {}\n",
        snap.sessions_live,
        snap.sessions_created,
        snap.sessions_closed,
        snap.sessions_evicted,
        snap.sessions_drained,
        snap.in_flight,
    ));
    out.push_str(&format!(
        "traffic  {} requests on {} connections | {} malformed, {} errors\n",
        snap.requests, snap.connections, snap.malformed, snap.errors,
    ));
    if !snap.verbs.is_empty() {
        out.push('\n');
        out.push_str(&format!(
            "{:<20} {:>8} {:>10} {:>10} {:>10}\n",
            "verb", "count", "p50", "p95", "p99"
        ));
        for v in &snap.verbs {
            out.push_str(&format!(
                "{:<20} {:>8} {:>10} {:>10} {:>10}\n",
                v.verb,
                v.count,
                fmt_duration(v.p50),
                fmt_duration(v.p95),
                fmt_duration(v.p99),
            ));
        }
    }
    if !snap.shards.is_empty() {
        let max_depth = snap.shards.iter().map(|s| s.queue_depth).max().unwrap_or(0);
        out.push('\n');
        out.push_str(&format!("{:<6} {:>8} {:>6}  queue\n", "shard", "sessions", "depth"));
        for s in &snap.shards {
            out.push_str(&format!(
                "{:<6} {:>8} {:>6}  {}\n",
                s.shard,
                s.sessions,
                s.queue_depth,
                bar(s.queue_depth, max_depth, 20),
            ));
        }
    }
    out
}

/// A fixed-width ASCII sparkline of `values` (oldest first): each cell
/// maps the value onto `" .:-=+*#%@"`, scaled to the series' own
/// min..max. More values than `width` keeps the most recent `width`.
pub fn sparkline(values: &[f64], width: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let width = width.max(1);
    let tail: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect::<Vec<_>>();
    let tail = &tail[tail.len().saturating_sub(width)..];
    if tail.is_empty() {
        return " ".repeat(width);
    }
    let (min, max) =
        tail.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = max - min;
    let mut out = String::with_capacity(width);
    for &v in tail {
        let idx = if span <= 0.0 {
            // A flat series renders mid-ramp, not blank.
            RAMP.len() / 2
        } else {
            (((v - min) / span) * (RAMP.len() - 1) as f64).round() as usize
        };
        out.push(RAMP[idx.min(RAMP.len() - 1)] as char);
    }
    // Pad short histories on the left so sparklines align right.
    format!("{}{out}", " ".repeat(width - tail.len().min(width)))
}

/// Parse a `/metrics/history` document into `(series name, raw values
/// oldest-first)` pairs, in document order. Unparseable input yields an
/// empty list rather than an error — the dashboard degrades, it does
/// not die.
pub fn parse_history(json: &str) -> Vec<(String, Vec<f64>)> {
    let Ok(doc) = Json::parse(json) else { return Vec::new() };
    let Some(series) = doc.get("series").and_then(Json::as_arr) else { return Vec::new() };
    series
        .iter()
        .filter_map(|s| {
            let name = s.get("name").and_then(Json::as_str)?.to_string();
            let values = s
                .get("points")
                .and_then(Json::as_arr)?
                .iter()
                .filter_map(|p| p.as_arr().filter(|a| a.len() == 2).and_then(|a| a[1].as_f64()))
                .collect();
            Some((name, values))
        })
        .collect()
}

/// The metric series the history panel highlights, in display order.
pub const HISTORY_PANEL: &[&str] = &[
    "service.request",
    "service.sessions.live",
    "service.in_flight",
    "service.health.sessions.warn",
    "service.health.sessions.stalled",
];

/// Render the history panel: one sparkline row per panel series present
/// in the document (plus the latest value). Empty when nothing matches.
pub fn render_history_ascii(history_json: &str, width: usize) -> String {
    let all = parse_history(history_json);
    let mut out = String::new();
    for &name in HISTORY_PANEL {
        let Some((_, values)) = all.iter().find(|(n, _)| n == name) else { continue };
        if values.is_empty() {
            continue;
        }
        out.push_str(&format!(
            "{:<32} {} {:>10.2}\n",
            name,
            sparkline(values, width),
            values.last().copied().unwrap_or(0.0),
        ));
    }
    if !out.is_empty() {
        out = format!("\nhistory ({} series sampled)\n{out}", all.len());
    }
    out
}

/// Render the `/health` document as a fixed-width session table. Empty
/// string when the daemon has no live sessions.
pub fn render_health_ascii(health_json: &str) -> String {
    let Ok(doc) = Json::parse(health_json) else { return String::new() };
    let Some(sessions) = doc.get("sessions").and_then(Json::as_arr) else {
        return String::new();
    };
    if sessions.is_empty() {
        return String::new();
    }
    let mut out = String::from("\n");
    out.push_str(&format!(
        "{:<8} {:<10} {:<24} {:>8} {:>10} {:>6}\n",
        "session", "state", "reason", "records", "since-best", "trans"
    ));
    for s in sessions {
        let num = |key: &str| s.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        out.push_str(&format!(
            "{:<8} {:<10} {:<24} {:>8} {:>10} {:>6}\n",
            num("session") as u64,
            s.get("state").and_then(Json::as_str).unwrap_or("?"),
            s.get("reason").and_then(Json::as_str).unwrap_or("-"),
            num("records") as u64,
            num("since_best") as u64,
            num("transitions") as u64,
        ));
    }
    out
}

/// Render the dashboard as a self-contained HTML page (inline CSS shared
/// with the `adaphet report` output, no scripts, no external fetches).
pub fn render_html(snap: &StatsSnapshot) -> String {
    render_html_full(snap, None, None)
}

/// [`render_html`] plus optional health and history sections sourced
/// from the sidecar's `/health` and `/metrics/history` documents.
pub fn render_html_full(
    snap: &StatsSnapshot,
    health_json: Option<&str>,
    history_json: Option<&str>,
) -> String {
    let mut out = render_html_base(snap);
    let tail = "<p class=\"meta\">generated by";
    let split = out.find(tail).unwrap_or(out.len());
    let mut extra = String::new();
    if let Some(health) = health_json {
        let table = render_health_ascii(health);
        if !table.is_empty() {
            extra.push_str("<h2>Session health</h2>\n<pre>");
            extra.push_str(&html_escape(table.trim_start_matches('\n')));
            extra.push_str("</pre>\n");
        }
    }
    if let Some(history) = history_json {
        let panel = render_history_ascii(history, 48);
        if !panel.is_empty() {
            extra.push_str("<h2>Metric history</h2>\n<pre>");
            extra.push_str(&html_escape(panel.trim_start_matches('\n')));
            extra.push_str("</pre>\n");
        }
    }
    out.insert_str(split, &extra);
    out
}

fn render_html_base(snap: &StatsSnapshot) -> String {
    let mut out = String::with_capacity(8 * 1024);
    out.push_str("<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n");
    out.push_str("<title>adaphet-top</title>\n");
    out.push_str(STYLE);
    out.push_str("</head><body>\n<h1>adaphet-top</h1>\n");
    out.push_str(&format!(
        "<p class=\"meta\">adaphet-serve <code>{}</code> &middot; up {} &middot; {}</p>\n",
        html_escape(if snap.version.is_empty() { "?" } else { &snap.version }),
        html_escape(&fmt_duration(snap.uptime_s)),
        if snap.draining { "<strong>draining</strong>" } else { "serving" },
    ));

    out.push_str("<h2>Service</h2>\n<table>\n<tr><th>metric</th><th>value</th></tr>\n");
    for (name, value) in [
        ("sessions live", snap.sessions_live),
        ("sessions created", snap.sessions_created),
        ("sessions closed", snap.sessions_closed),
        ("sessions evicted", snap.sessions_evicted),
        ("sessions drained", snap.sessions_drained),
        ("proposals in flight", snap.in_flight),
        ("requests", snap.requests),
        ("connections", snap.connections),
        ("malformed frames", snap.malformed),
        ("errors", snap.errors),
    ] {
        out.push_str(&format!("<tr><td>{name}</td><td>{value}</td></tr>\n"));
    }
    out.push_str("</table>\n");

    if !snap.verbs.is_empty() {
        out.push_str(
            "<h2>Verb latency</h2>\n<table>\n\
             <tr><th>verb</th><th>count</th><th>p50</th><th>p95</th><th>p99</th></tr>\n",
        );
        for v in &snap.verbs {
            out.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                html_escape(&v.verb),
                v.count,
                fmt_duration(v.p50),
                fmt_duration(v.p95),
                fmt_duration(v.p99),
            ));
        }
        out.push_str("</table>\n");
    }

    if !snap.shards.is_empty() {
        out.push_str(
            "<h2>Shards</h2>\n<table>\n\
             <tr><th>shard</th><th>sessions</th><th>queue depth</th></tr>\n",
        );
        for s in &snap.shards {
            out.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                s.shard, s.sessions, s.queue_depth,
            ));
        }
        out.push_str("</table>\n");
    }

    out.push_str(
        "<p class=\"meta\">generated by <code>adaphet-top --html</code> — \
         self-contained file, no scripts, no external resources.</p>\n",
    );
    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ShardStats, VerbStats};

    fn snap() -> StatsSnapshot {
        StatsSnapshot {
            version: "0.1.0".into(),
            uptime_s: 12.5,
            draining: false,
            sessions_live: 2,
            sessions_created: 3,
            sessions_closed: 1,
            sessions_evicted: 0,
            sessions_drained: 0,
            in_flight: 4,
            connections: 2,
            requests: 50,
            malformed: 0,
            errors: 1,
            verbs: vec![VerbStats {
                verb: "get_proposal".into(),
                count: 20,
                p50: 0.0004,
                p95: 0.003,
                p99: 0.02,
            }],
            shards: vec![
                ShardStats { shard: 0, sessions: 1, queue_depth: 2 },
                ShardStats { shard: 1, sessions: 1, queue_depth: 0 },
            ],
        }
    }

    #[test]
    fn durations_format_with_adaptive_units() {
        assert_eq!(fmt_duration(0.0), "0");
        assert_eq!(fmt_duration(2.5e-9), "2 ns");
        assert_eq!(fmt_duration(3.2e-5), "32.0 us");
        assert_eq!(fmt_duration(0.004), "4.00 ms");
        assert_eq!(fmt_duration(1.75), "1.75 s");
    }

    #[test]
    fn ascii_dashboard_carries_every_section() {
        let text = render_ascii(&snap());
        assert!(text.contains("adaphet-serve 0.1.0"), "{text}");
        assert!(text.contains("sessions 2 live"), "{text}");
        assert!(text.contains("get_proposal"), "{text}");
        assert!(text.contains("400.0 us"), "p50 column: {text}");
        // The busiest shard fills its whole bar; the idle one is empty.
        assert!(text.contains("####################"), "{text}");
        assert!(text.contains("...................."), "{text}");
        assert!(text.ends_with('\n'));
        assert!(text.is_ascii(), "terminal-safe output");
    }

    #[test]
    fn html_dashboard_is_self_contained() {
        let html = render_html(&snap());
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("<style>"), "inline CSS only");
        assert!(!html.contains("<script"), "no scripts");
        assert!(!html.contains("http://") && !html.contains("https://"), "no external fetches");
        assert!(html.contains("<td>get_proposal</td>"), "{html}");
        assert!(html.ends_with("</html>\n"));
    }

    #[test]
    fn draining_state_is_loud_in_both_renderers() {
        let mut s = snap();
        s.draining = true;
        assert!(render_ascii(&s).contains("DRAINING"));
        assert!(render_html(&s).contains("<strong>draining</strong>"));
    }

    #[test]
    fn interval_flag_parses_positive_finite_seconds() {
        assert_eq!(parse_interval("2").unwrap(), Duration::from_secs(2));
        assert_eq!(parse_interval("0.25").unwrap(), Duration::from_millis(250));
        for bad in ["0", "-1", "nan", "inf", "fast", ""] {
            assert!(parse_interval(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn sparklines_scale_pad_and_stay_ascii() {
        // Monotone ramp: lowest cell first, highest last.
        let ramp = sparkline(&[0.0, 1.0, 2.0, 3.0], 4);
        assert_eq!(ramp.len(), 4);
        assert!(ramp.starts_with(' ') && ramp.ends_with('@'), "{ramp:?}");
        // Flat series renders mid-ramp, not blank.
        let flat = sparkline(&[5.0; 3], 3);
        assert!(!flat.contains(' ') && !flat.contains('@'), "{flat:?}");
        // Short histories right-align; long ones keep the tail.
        assert!(sparkline(&[1.0], 5).starts_with("    "));
        let tail = sparkline(&[9.0, 0.0, 0.0, 0.0, 0.0, 0.0], 3);
        assert_eq!(tail, sparkline(&[0.0; 3], 3), "9.0 fell off the window");
        // Non-finite values are dropped, empty input is blank padding.
        assert_eq!(sparkline(&[f64::NAN], 2), "  ");
        assert!(sparkline(&[], 2).is_ascii());
    }

    const HISTORY_DOC: &str = r#"{"version":1,"capacity":8,"resolutions":[30],
        "epoch_s":0,"series":[
        {"name":"service.request","points":[[0,1],[1,4],[2,9]],"coarse":[]},
        {"name":"service.sessions.live","points":[[0,2],[1,2]],"coarse":[]}]}"#;

    #[test]
    fn history_parses_and_renders_panel_series() {
        let parsed = parse_history(HISTORY_DOC);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "service.request");
        assert_eq!(parsed[0].1, vec![1.0, 4.0, 9.0]);
        let panel = render_history_ascii(HISTORY_DOC, 10);
        assert!(panel.contains("service.request"), "{panel}");
        assert!(panel.contains("service.sessions.live"), "{panel}");
        assert!(panel.contains("9.00"), "latest value column: {panel}");
        assert!(panel.is_ascii());
        // Garbage degrades to nothing instead of failing.
        assert!(render_history_ascii("not json", 10).is_empty());
        assert!(parse_history("{}").is_empty());
    }

    const HEALTH_DOC: &str = r#"{"uptime_s":3.5,"draining":false,"sessions":[
        {"session":1,"state":"ok","reason":null,"records":12,"since_best":2,
         "regret_slope":-0.01,"retries_window":0,"faults_window":0,
         "posterior_sd_max":null,"lp_gap":null,"band_record":4,
         "warm_started":false,"transitions":0},
        {"session":2,"state":"warn","reason":"fault-pressure","records":17,
         "since_best":5,"regret_slope":0.002,"retries_window":1,
         "faults_window":1,"posterior_sd_max":0.4,"lp_gap":1.5,
         "band_record":null,"warm_started":true,"transitions":2}]}"#;

    #[test]
    fn health_table_lists_sessions_with_states_and_reasons() {
        let table = render_health_ascii(HEALTH_DOC);
        assert!(table.contains("warn"), "{table}");
        assert!(table.contains("fault-pressure"), "{table}");
        assert!(table.contains("ok"), "{table}");
        assert!(table.is_ascii());
        // No sessions → no table; garbage → no table.
        assert_eq!(render_health_ascii(r#"{"sessions":[]}"#), "");
        assert_eq!(render_health_ascii("nope"), "");
    }

    #[test]
    fn html_full_embeds_health_and_history_sections() {
        let html = render_html_full(&snap(), Some(HEALTH_DOC), Some(HISTORY_DOC));
        assert!(html.contains("<h2>Session health</h2>"), "{html}");
        assert!(html.contains("<h2>Metric history</h2>"), "{html}");
        assert!(html.contains("fault-pressure"), "{html}");
        assert!(!html.contains("<script"), "still self-contained");
        assert!(html.ends_with("</html>\n"));
        // Without the documents the page is byte-identical to render_html.
        assert_eq!(render_html_full(&snap(), None, None), render_html(&snap()));
    }
}
