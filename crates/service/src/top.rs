//! Renderers for `adaphet-top`: turn a [`StatsSnapshot`] into a
//! fixed-width ASCII dashboard or a self-contained HTML page.
//!
//! Pure functions of the snapshot — the binary owns polling, screen
//! clearing and file writing — so the exact layout is unit-testable
//! without a daemon.

use crate::protocol::StatsSnapshot;
use adaphet_analysis::{html_escape, STYLE};

/// Format a duration in seconds with an adaptive unit (`ns`/`us`/`ms`/`s`).
pub fn fmt_duration(seconds: f64) -> String {
    let s = seconds.abs();
    if s == 0.0 {
        "0".to_string()
    } else if s < 1e-6 {
        format!("{:.0} ns", seconds * 1e9)
    } else if s < 1e-3 {
        format!("{:.1} us", seconds * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

/// A crude bar of `#` marks: `value` out of `max`, `width` cells.
fn bar(value: u64, max: u64, width: usize) -> String {
    let max = max.max(1);
    let filled = ((value as f64 / max as f64) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled.min(width) { '#' } else { '.' });
    }
    s
}

/// Render the dashboard as plain fixed-width text, one trailing newline.
pub fn render_ascii(snap: &StatsSnapshot) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str(&format!(
        "adaphet-serve {} | up {} | {}\n",
        if snap.version.is_empty() { "?" } else { &snap.version },
        fmt_duration(snap.uptime_s),
        if snap.draining { "DRAINING" } else { "serving" },
    ));
    out.push_str(&format!(
        "sessions {} live ({} created, {} closed, {} evicted, {} drained) | in-flight {}\n",
        snap.sessions_live,
        snap.sessions_created,
        snap.sessions_closed,
        snap.sessions_evicted,
        snap.sessions_drained,
        snap.in_flight,
    ));
    out.push_str(&format!(
        "traffic  {} requests on {} connections | {} malformed, {} errors\n",
        snap.requests, snap.connections, snap.malformed, snap.errors,
    ));
    if !snap.verbs.is_empty() {
        out.push('\n');
        out.push_str(&format!(
            "{:<20} {:>8} {:>10} {:>10} {:>10}\n",
            "verb", "count", "p50", "p95", "p99"
        ));
        for v in &snap.verbs {
            out.push_str(&format!(
                "{:<20} {:>8} {:>10} {:>10} {:>10}\n",
                v.verb,
                v.count,
                fmt_duration(v.p50),
                fmt_duration(v.p95),
                fmt_duration(v.p99),
            ));
        }
    }
    if !snap.shards.is_empty() {
        let max_depth = snap.shards.iter().map(|s| s.queue_depth).max().unwrap_or(0);
        out.push('\n');
        out.push_str(&format!("{:<6} {:>8} {:>6}  queue\n", "shard", "sessions", "depth"));
        for s in &snap.shards {
            out.push_str(&format!(
                "{:<6} {:>8} {:>6}  {}\n",
                s.shard,
                s.sessions,
                s.queue_depth,
                bar(s.queue_depth, max_depth, 20),
            ));
        }
    }
    out
}

/// Render the dashboard as a self-contained HTML page (inline CSS shared
/// with the `adaphet report` output, no scripts, no external fetches).
pub fn render_html(snap: &StatsSnapshot) -> String {
    let mut out = String::with_capacity(8 * 1024);
    out.push_str("<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n");
    out.push_str("<title>adaphet-top</title>\n");
    out.push_str(STYLE);
    out.push_str("</head><body>\n<h1>adaphet-top</h1>\n");
    out.push_str(&format!(
        "<p class=\"meta\">adaphet-serve <code>{}</code> &middot; up {} &middot; {}</p>\n",
        html_escape(if snap.version.is_empty() { "?" } else { &snap.version }),
        html_escape(&fmt_duration(snap.uptime_s)),
        if snap.draining { "<strong>draining</strong>" } else { "serving" },
    ));

    out.push_str("<h2>Service</h2>\n<table>\n<tr><th>metric</th><th>value</th></tr>\n");
    for (name, value) in [
        ("sessions live", snap.sessions_live),
        ("sessions created", snap.sessions_created),
        ("sessions closed", snap.sessions_closed),
        ("sessions evicted", snap.sessions_evicted),
        ("sessions drained", snap.sessions_drained),
        ("proposals in flight", snap.in_flight),
        ("requests", snap.requests),
        ("connections", snap.connections),
        ("malformed frames", snap.malformed),
        ("errors", snap.errors),
    ] {
        out.push_str(&format!("<tr><td>{name}</td><td>{value}</td></tr>\n"));
    }
    out.push_str("</table>\n");

    if !snap.verbs.is_empty() {
        out.push_str(
            "<h2>Verb latency</h2>\n<table>\n\
             <tr><th>verb</th><th>count</th><th>p50</th><th>p95</th><th>p99</th></tr>\n",
        );
        for v in &snap.verbs {
            out.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                html_escape(&v.verb),
                v.count,
                fmt_duration(v.p50),
                fmt_duration(v.p95),
                fmt_duration(v.p99),
            ));
        }
        out.push_str("</table>\n");
    }

    if !snap.shards.is_empty() {
        out.push_str(
            "<h2>Shards</h2>\n<table>\n\
             <tr><th>shard</th><th>sessions</th><th>queue depth</th></tr>\n",
        );
        for s in &snap.shards {
            out.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                s.shard, s.sessions, s.queue_depth,
            ));
        }
        out.push_str("</table>\n");
    }

    out.push_str(
        "<p class=\"meta\">generated by <code>adaphet-top --html</code> — \
         self-contained file, no scripts, no external resources.</p>\n",
    );
    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ShardStats, VerbStats};

    fn snap() -> StatsSnapshot {
        StatsSnapshot {
            version: "0.1.0".into(),
            uptime_s: 12.5,
            draining: false,
            sessions_live: 2,
            sessions_created: 3,
            sessions_closed: 1,
            sessions_evicted: 0,
            sessions_drained: 0,
            in_flight: 4,
            connections: 2,
            requests: 50,
            malformed: 0,
            errors: 1,
            verbs: vec![VerbStats {
                verb: "get_proposal".into(),
                count: 20,
                p50: 0.0004,
                p95: 0.003,
                p99: 0.02,
            }],
            shards: vec![
                ShardStats { shard: 0, sessions: 1, queue_depth: 2 },
                ShardStats { shard: 1, sessions: 1, queue_depth: 0 },
            ],
        }
    }

    #[test]
    fn durations_format_with_adaptive_units() {
        assert_eq!(fmt_duration(0.0), "0");
        assert_eq!(fmt_duration(2.5e-9), "2 ns");
        assert_eq!(fmt_duration(3.2e-5), "32.0 us");
        assert_eq!(fmt_duration(0.004), "4.00 ms");
        assert_eq!(fmt_duration(1.75), "1.75 s");
    }

    #[test]
    fn ascii_dashboard_carries_every_section() {
        let text = render_ascii(&snap());
        assert!(text.contains("adaphet-serve 0.1.0"), "{text}");
        assert!(text.contains("sessions 2 live"), "{text}");
        assert!(text.contains("get_proposal"), "{text}");
        assert!(text.contains("400.0 us"), "p50 column: {text}");
        // The busiest shard fills its whole bar; the idle one is empty.
        assert!(text.contains("####################"), "{text}");
        assert!(text.contains("...................."), "{text}");
        assert!(text.ends_with('\n'));
        assert!(text.is_ascii(), "terminal-safe output");
    }

    #[test]
    fn html_dashboard_is_self_contained() {
        let html = render_html(&snap());
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("<style>"), "inline CSS only");
        assert!(!html.contains("<script"), "no scripts");
        assert!(!html.contains("http://") && !html.contains("https://"), "no external fetches");
        assert!(html.contains("<td>get_proposal</td>"), "{html}");
        assert!(html.ends_with("</html>\n"));
    }

    #[test]
    fn draining_state_is_loud_in_both_renderers() {
        let mut s = snap();
        s.draining = true;
        assert!(render_ascii(&s).contains("DRAINING"));
        assert!(render_html(&s).contains("<strong>draining</strong>"));
    }
}
