//! Live terminal dashboard for a running `adaphet-serve`: polls the
//! `get_stats` verb and redraws an ASCII view of sessions, verb
//! latencies, queue depths and lifecycle counters.
//!
//! ```text
//! adaphet-top (--uds PATH | --tcp ADDR) [--interval SECS] [--once]
//!             [--html FILE] [--http ADDR]
//! ```
//!
//! `--once` prints a single snapshot and exits; `--html FILE` writes a
//! one-shot self-contained HTML page instead of text (implies a single
//! poll). `--http ADDR` points at the daemon's metrics sidecar (the
//! `--metrics` listen address of `adaphet-serve`): the dashboard then
//! appends a per-session health table from `GET /health` and metric
//! sparklines from `GET /metrics/history` (history rows appear only
//! when the daemon samples history). Without `--once`/`--html`, the
//! dashboard refreshes every `--interval` seconds (default 2) until the
//! daemon goes away or the user interrupts.

use adaphet_service::top::{
    parse_interval, render_ascii, render_health_ascii, render_history_ascii, render_html_full,
};
use adaphet_service::{Client, ClientError, StatsSnapshot};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "usage: adaphet-top (--uds PATH | --tcp ADDR) \
                     [--interval SECS] [--once] [--html FILE] [--http ADDR]";

enum Target {
    Tcp(String),
    Uds(PathBuf),
}

struct TopArgs {
    target: Target,
    interval: Duration,
    once: bool,
    html: Option<PathBuf>,
    http: Option<String>,
}

fn parse(argv: &[String]) -> Result<TopArgs, String> {
    let mut target: Option<Target> = None;
    let mut interval = Duration::from_secs(2);
    let mut once = false;
    let mut html = None;
    let mut http = None;
    let mut it = argv.iter();
    let value = |flag: &str, v: Option<&String>| -> Result<String, String> {
        v.cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--uds" => target = Some(Target::Uds(PathBuf::from(value("--uds", it.next())?))),
            "--tcp" => target = Some(Target::Tcp(value("--tcp", it.next())?)),
            "--interval" => interval = parse_interval(&value("--interval", it.next())?)?,
            "--once" => once = true,
            "--html" => html = Some(PathBuf::from(value("--html", it.next())?)),
            "--http" => http = Some(value("--http", it.next())?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let target = target.ok_or("one of --uds or --tcp is required")?;
    Ok(TopArgs { target, interval, once, html, http })
}

/// One-shot `GET` against the metrics sidecar, returning the body.
/// Any failure degrades to `None` — a sidecar outage must not kill the
/// dashboard the operator opened to diagnose it.
fn http_get(addr: &str, path: &str) -> Option<String> {
    let mut conn = TcpStream::connect(addr).ok()?;
    write!(conn, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").ok()?;
    let mut response = String::new();
    conn.read_to_string(&mut response).ok()?;
    let (head, body) = response.split_once("\r\n\r\n")?;
    head.starts_with("HTTP/1.1 200").then(|| body.to_string())
}

/// Fetch the optional sidecar documents: `(health, history)`.
fn poll_sidecar(http: &Option<String>) -> (Option<String>, Option<String>) {
    match http {
        None => (None, None),
        Some(addr) => (http_get(addr, "/health"), http_get(addr, "/metrics/history")),
    }
}

/// One fresh-connection poll — the daemon treats each scrape as a
/// throwaway client, exactly like a human running it would.
fn poll(target: &Target) -> Result<StatsSnapshot, ClientError> {
    match target {
        Target::Tcp(addr) => Client::connect_tcp(addr)?.get_stats(),
        Target::Uds(path) => Client::connect_uds(path)?.get_stats(),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&argv) {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("adaphet-top: {message}");
            }
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    if let Some(path) = &args.html {
        let snap = match poll(&args.target) {
            Ok(snap) => snap,
            Err(e) => {
                eprintln!("adaphet-top: {e}");
                std::process::exit(1);
            }
        };
        let (health, history) = poll_sidecar(&args.http);
        let page = render_html_full(&snap, health.as_deref(), history.as_deref());
        if let Err(e) = std::fs::write(path, page) {
            eprintln!("adaphet-top: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("adaphet-top: wrote {}", path.display());
        return;
    }

    let mut failures = 0u32;
    loop {
        match poll(&args.target) {
            Ok(snap) => {
                failures = 0;
                let mut frame = render_ascii(&snap);
                let (health, history) = poll_sidecar(&args.http);
                if let Some(health) = health {
                    frame.push_str(&render_health_ascii(&health));
                }
                if let Some(history) = history {
                    frame.push_str(&render_history_ascii(&history, 40));
                }
                if args.once {
                    print!("{frame}");
                    return;
                }
                // ANSI clear-screen + home, then the fresh frame.
                print!("\x1b[2J\x1b[H{frame}");
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                if args.once {
                    eprintln!("adaphet-top: {e}");
                    std::process::exit(1);
                }
                failures += 1;
                if failures >= 3 {
                    eprintln!("adaphet-top: daemon unreachable ({e}); giving up");
                    std::process::exit(1);
                }
            }
        }
        std::thread::sleep(args.interval);
    }
}
