//! Live terminal dashboard for a running `adaphet-serve`: polls the
//! `get_stats` verb and redraws an ASCII view of sessions, verb
//! latencies, queue depths and lifecycle counters.
//!
//! ```text
//! adaphet-top (--uds PATH | --tcp ADDR) [--interval SECS] [--once]
//!             [--html FILE]
//! ```
//!
//! `--once` prints a single snapshot and exits; `--html FILE` writes a
//! one-shot self-contained HTML page instead of text (implies a single
//! poll). Without either, the dashboard refreshes every `--interval`
//! seconds (default 2) until the daemon goes away or the user interrupts.

use adaphet_service::top::{render_ascii, render_html};
use adaphet_service::{Client, ClientError, StatsSnapshot};
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "usage: adaphet-top (--uds PATH | --tcp ADDR) \
                     [--interval SECS] [--once] [--html FILE]";

enum Target {
    Tcp(String),
    Uds(PathBuf),
}

struct TopArgs {
    target: Target,
    interval: Duration,
    once: bool,
    html: Option<PathBuf>,
}

fn parse(argv: &[String]) -> Result<TopArgs, String> {
    let mut target: Option<Target> = None;
    let mut interval = Duration::from_secs(2);
    let mut once = false;
    let mut html = None;
    let mut it = argv.iter();
    let value = |flag: &str, v: Option<&String>| -> Result<String, String> {
        v.cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--uds" => target = Some(Target::Uds(PathBuf::from(value("--uds", it.next())?))),
            "--tcp" => target = Some(Target::Tcp(value("--tcp", it.next())?)),
            "--interval" => {
                let secs: f64 = value("--interval", it.next())?
                    .parse()
                    .map_err(|_| "--interval needs a number of seconds".to_string())?;
                if secs.is_nan() || secs <= 0.0 {
                    return Err("--interval must be positive".into());
                }
                interval = Duration::from_secs_f64(secs);
            }
            "--once" => once = true,
            "--html" => html = Some(PathBuf::from(value("--html", it.next())?)),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let target = target.ok_or("one of --uds or --tcp is required")?;
    Ok(TopArgs { target, interval, once, html })
}

/// One fresh-connection poll — the daemon treats each scrape as a
/// throwaway client, exactly like a human running it would.
fn poll(target: &Target) -> Result<StatsSnapshot, ClientError> {
    match target {
        Target::Tcp(addr) => Client::connect_tcp(addr)?.get_stats(),
        Target::Uds(path) => Client::connect_uds(path)?.get_stats(),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&argv) {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("adaphet-top: {message}");
            }
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    if let Some(path) = &args.html {
        let snap = match poll(&args.target) {
            Ok(snap) => snap,
            Err(e) => {
                eprintln!("adaphet-top: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = std::fs::write(path, render_html(&snap)) {
            eprintln!("adaphet-top: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("adaphet-top: wrote {}", path.display());
        return;
    }

    let mut failures = 0u32;
    loop {
        match poll(&args.target) {
            Ok(snap) => {
                failures = 0;
                if args.once {
                    print!("{}", render_ascii(&snap));
                    return;
                }
                // ANSI clear-screen + home, then the fresh frame.
                print!("\x1b[2J\x1b[H{}", render_ascii(&snap));
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                if args.once {
                    eprintln!("adaphet-top: {e}");
                    std::process::exit(1);
                }
                failures += 1;
                if failures >= 3 {
                    eprintln!("adaphet-top: daemon unreachable ({e}); giving up");
                    std::process::exit(1);
                }
            }
        }
        std::thread::sleep(args.interval);
    }
}
