//! The tuning daemon: bind a socket, serve sessions until a client sends
//! `shutdown`, then drain and exit.
//!
//! ```text
//! adaphet-serve --uds /tmp/adaphet.sock [--workers 4] [--idle-timeout 600]
//!               [--telemetry-dir DIR] [--max-in-flight 8] [--metrics]
//! adaphet-serve --tcp 127.0.0.1:7601 [...]
//! ```

use adaphet_service::{Endpoint, Server, ServiceConfig, SessionManager};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: adaphet-serve (--uds PATH | --tcp ADDR) \
                     [--workers N] [--idle-timeout SECS] [--telemetry-dir DIR] \
                     [--max-in-flight N] [--metrics]";

struct ServeArgs {
    endpoint: Endpoint,
    config: ServiceConfig,
    metrics: bool,
}

fn parse(argv: &[String]) -> Result<ServeArgs, String> {
    let mut endpoint: Option<Endpoint> = None;
    let mut config = ServiceConfig::default();
    let mut metrics = false;
    let mut it = argv.iter();
    let value = |flag: &str, v: Option<&String>| -> Result<String, String> {
        v.cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--uds" => {
                endpoint = Some(Endpoint::Uds(PathBuf::from(value("--uds", it.next())?)));
            }
            "--tcp" => endpoint = Some(Endpoint::Tcp(value("--tcp", it.next())?)),
            "--workers" => {
                config.workers = value("--workers", it.next())?
                    .parse()
                    .map_err(|_| "--workers needs a positive integer".to_string())?;
            }
            "--idle-timeout" => {
                let secs: u64 = value("--idle-timeout", it.next())?
                    .parse()
                    .map_err(|_| "--idle-timeout needs a whole number of seconds".to_string())?;
                config.idle_timeout = (secs > 0).then(|| Duration::from_secs(secs));
            }
            "--telemetry-dir" => {
                config.telemetry_dir = Some(PathBuf::from(value("--telemetry-dir", it.next())?));
            }
            "--max-in-flight" => {
                config.default_max_in_flight = value("--max-in-flight", it.next())?
                    .parse()
                    .map_err(|_| "--max-in-flight needs a positive integer".to_string())?;
            }
            "--metrics" => metrics = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let endpoint = endpoint.ok_or("one of --uds or --tcp is required")?;
    Ok(ServeArgs { endpoint, config, metrics })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&argv) {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("adaphet-serve: {message}");
            }
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let registry =
        args.metrics.then(|| adaphet_metrics::install_global(adaphet_metrics::Registry::new()));
    if let Some(dir) = &args.config.telemetry_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("adaphet-serve: cannot create telemetry dir {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    let manager = Arc::new(SessionManager::new(args.config));
    let mut server = match Server::bind(args.endpoint, Arc::clone(&manager)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("adaphet-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    // The readiness line: scripts wait for it before connecting.
    println!("adaphet-serve listening on {}", server.endpoint());
    server.wait();
    eprintln!("adaphet-serve: draining");
    drop(server);
    drop(manager); // last owner: runs the graceful worker shutdown
    if let Some(registry) = registry {
        println!("{}", registry.snapshot().to_table());
    }
    eprintln!("adaphet-serve: bye");
}
