//! The tuning daemon: bind a socket, serve sessions until a client sends
//! `shutdown`, then drain and exit.
//!
//! ```text
//! adaphet-serve --uds /tmp/adaphet.sock [--workers 4] [--idle-timeout 600]
//!               [--telemetry-dir DIR] [--store-dir DIR] [--max-in-flight 8]
//!               [--metrics] [--metrics-addr 127.0.0.1:9601]
//!               [--history-interval SECS] [--history-capacity N]
//!               [--history-file FILE]
//! adaphet-serve --tcp 127.0.0.1:7601 [...]
//! ```
//!
//! `--metrics-addr` starts a sidecar HTTP listener answering
//! `GET /metrics` with the Prometheus text exposition of the daemon's
//! always-on observability plane (no `--metrics` needed; that flag
//! controls the end-of-run table on stdout), plus `GET /health` with
//! every live session's convergence-health report.
//!
//! `--history-interval` enables the embedded metrics-history sampler:
//! the service metrics are frozen into a bounded time-series store every
//! interval and served on `GET /metrics/history`. `--history-capacity`
//! bounds samples kept per series; `--history-file` persists the store
//! across daemon restarts (checksummed binary chunk, loaded at startup,
//! saved at shutdown).

use adaphet_service::{
    Endpoint, HistoryConfig, MetricsServer, Server, ServiceConfig, SessionManager,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: adaphet-serve (--uds PATH | --tcp ADDR) \
                     [--workers N] [--idle-timeout SECS] [--telemetry-dir DIR] \
                     [--store-dir DIR] [--max-in-flight N] [--metrics] \
                     [--metrics-addr ADDR] [--history-interval SECS] \
                     [--history-capacity N] [--history-file FILE]";

struct ServeArgs {
    endpoint: Endpoint,
    config: ServiceConfig,
    metrics: bool,
    metrics_addr: Option<String>,
}

fn parse(argv: &[String]) -> Result<ServeArgs, String> {
    let mut endpoint: Option<Endpoint> = None;
    let mut config = ServiceConfig::default();
    let mut metrics = false;
    let mut metrics_addr = None;
    let mut it = argv.iter();
    let value = |flag: &str, v: Option<&String>| -> Result<String, String> {
        v.cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--uds" => {
                endpoint = Some(Endpoint::Uds(PathBuf::from(value("--uds", it.next())?)));
            }
            "--tcp" => endpoint = Some(Endpoint::Tcp(value("--tcp", it.next())?)),
            "--workers" => {
                config.workers = value("--workers", it.next())?
                    .parse()
                    .map_err(|_| "--workers needs a positive integer".to_string())?;
            }
            "--idle-timeout" => {
                let secs: u64 = value("--idle-timeout", it.next())?
                    .parse()
                    .map_err(|_| "--idle-timeout needs a whole number of seconds".to_string())?;
                config.idle_timeout = (secs > 0).then(|| Duration::from_secs(secs));
            }
            "--telemetry-dir" => {
                config.telemetry_dir = Some(PathBuf::from(value("--telemetry-dir", it.next())?));
            }
            "--store-dir" => {
                config.store_dir = Some(PathBuf::from(value("--store-dir", it.next())?));
            }
            "--max-in-flight" => {
                config.default_max_in_flight = value("--max-in-flight", it.next())?
                    .parse()
                    .map_err(|_| "--max-in-flight needs a positive integer".to_string())?;
            }
            "--metrics" => metrics = true,
            "--metrics-addr" => metrics_addr = Some(value("--metrics-addr", it.next())?),
            "--history-interval" => {
                let secs =
                    adaphet_service::top::parse_interval(&value("--history-interval", it.next())?)
                        .map_err(|e| e.replace("--interval", "--history-interval"))?;
                config.history.get_or_insert_with(HistoryConfig::default).interval = secs;
            }
            "--history-capacity" => {
                let capacity: usize = value("--history-capacity", it.next())?
                    .parse()
                    .map_err(|_| "--history-capacity needs a positive integer".to_string())?;
                if capacity == 0 {
                    return Err("--history-capacity must be positive".into());
                }
                config.history.get_or_insert_with(HistoryConfig::default).capacity = capacity;
            }
            "--history-file" => {
                config.history.get_or_insert_with(HistoryConfig::default).persist =
                    Some(PathBuf::from(value("--history-file", it.next())?));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let endpoint = endpoint.ok_or("one of --uds or --tcp is required")?;
    Ok(ServeArgs { endpoint, config, metrics, metrics_addr })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&argv) {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("adaphet-serve: {message}");
            }
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let registry =
        args.metrics.then(|| adaphet_metrics::install_global(adaphet_metrics::Registry::new()));
    if let Some(dir) = &args.config.telemetry_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("adaphet-serve: cannot create telemetry dir {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    let manager = Arc::new(SessionManager::new(args.config));
    let mut server = match Server::bind(args.endpoint, Arc::clone(&manager)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("adaphet-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let metrics_server = args.metrics_addr.as_deref().map(|addr| {
        match MetricsServer::bind(addr, Arc::clone(&manager)) {
            Ok(ms) => ms,
            Err(e) => {
                eprintln!("adaphet-serve: metrics bind failed: {e}");
                std::process::exit(1);
            }
        }
    });
    if let Some(ms) = &metrics_server {
        println!("adaphet-serve metrics on http://{}/metrics", ms.addr());
    }
    // The readiness line: scripts wait for it before connecting.
    println!("adaphet-serve listening on {}", server.endpoint());
    server.wait();
    eprintln!("adaphet-serve: draining");
    drop(metrics_server);
    drop(server);
    drop(manager); // last owner: runs the graceful worker shutdown
    if let Some(registry) = registry {
        println!("{}", registry.snapshot().to_table());
    }
    eprintln!("adaphet-serve: bye");
}
