//! A minimal HTTP/1.1 listener answering `GET /metrics` with the
//! Prometheus text exposition of the manager's [`ServiceStats`].
//!
//! This is deliberately not a web framework: one accept loop, one
//! short-lived thread per connection, `Connection: close` on every
//! response. The only routes are `GET /metrics` (the exposition) and
//! `GET /` (a one-line pointer to it); everything else is a 404 and
//! non-GET methods are a 405. Request bodies are never read — the
//! request line and headers are consumed up to the blank line and the
//! rest is ignored, which is exactly what a scraper sends anyway.

use crate::manager::SessionManager;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running `/metrics` listener. Dropping it stops the accept loop.
pub struct MetricsServer {
    addr: String,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9601`, or `…:0` for an OS-assigned
    /// port readable back from [`addr`](Self::addr)) and start serving
    /// the manager's exposition.
    pub fn bind(addr: &str, manager: Arc<SessionManager>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?.to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            Some(std::thread::spawn(move || accept_loop(listener, manager, stop)))
        };
        Ok(MetricsServer { addr, stop, accept_thread })
    }

    /// The resolved listen address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stop accepting and join the accept thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // accept() has no timeout; wake it with a throwaway connection.
        drop(TcpStream::connect(&self.addr));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, manager: Arc<SessionManager>, stop: Arc<AtomicBool>) {
    loop {
        let conn = listener.accept();
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok((stream, _)) = conn else { continue };
        let manager = Arc::clone(&manager);
        std::thread::spawn(move || {
            let _ = serve_scrape(stream, &manager);
        });
    }
}

/// Read one request head and answer it; always closes the connection.
fn serve_scrape(stream: TcpStream, manager: &SessionManager) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers up to the blank line so well-behaved clients don't
    // see a reset before the response.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain; charset=utf-8", "only GET is supported\n".into())
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                // The exposition format 0.0.4 content type scrapers expect.
                "text/plain; version=0.0.4; charset=utf-8",
                manager.stats().report(manager.is_draining()).to_prometheus(),
            ),
            "/" => ("200 OK", "text/plain; charset=utf-8", "adaphet-serve: see /metrics\n".into()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "unknown path; try /metrics\n".into(),
            ),
        }
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::ServiceConfig;
    use crate::protocol::Request;
    use std::io::Read;

    fn get(addr: &str, path: &str) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn metrics_endpoint_serves_the_exposition() {
        let manager = Arc::new(SessionManager::new(ServiceConfig {
            idle_timeout: None,
            ..ServiceConfig::default()
        }));
        // Give the plane something to expose.
        let _ = manager.handle(Request::Ping);
        let mut server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&manager)).unwrap();

        let response = get(server.addr(), "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"), "{response}");
        assert!(response.contains("# TYPE adaphet_service_request_total counter"), "{response}");
        assert!(response.contains("adaphet_service_verb_ping_seconds_count 1"), "{response}");
        assert!(response.contains("adaphet_service_sessions_live 0"), "{response}");

        let root = get(server.addr(), "/");
        assert!(root.starts_with("HTTP/1.1 200 OK\r\n"), "{root}");
        let missing = get(server.addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        server.stop();
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let manager = Arc::new(SessionManager::new(ServiceConfig {
            idle_timeout: None,
            ..ServiceConfig::default()
        }));
        let mut server = MetricsServer::bind("127.0.0.1:0", manager).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        write!(conn, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
        server.stop();
    }
}
