//! A minimal HTTP/1.1 listener answering `GET /metrics` with the
//! Prometheus text exposition of the manager's [`ServiceStats`].
//!
//! This is deliberately not a web framework: one accept loop, one
//! short-lived thread per connection, `Connection: close` on every
//! response. The routes are `GET /metrics` (the exposition),
//! `GET /health` (every live session's convergence-health report),
//! `GET /metrics/history` (the embedded time-series store, when the
//! manager has a sampler configured) and `GET /` (a one-line pointer);
//! everything else is a 404 and non-GET methods are a 405. Request
//! bodies are never read — the request line and headers are consumed up
//! to the blank line and the rest is ignored, which is exactly what a
//! scraper sends anyway.

use crate::manager::SessionManager;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running `/metrics` listener. Dropping it stops the accept loop.
pub struct MetricsServer {
    addr: String,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9601`, or `…:0` for an OS-assigned
    /// port readable back from [`addr`](Self::addr)) and start serving
    /// the manager's exposition.
    pub fn bind(addr: &str, manager: Arc<SessionManager>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?.to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            Some(std::thread::spawn(move || accept_loop(listener, manager, stop)))
        };
        Ok(MetricsServer { addr, stop, accept_thread })
    }

    /// The resolved listen address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stop accepting and join the accept thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // accept() has no timeout; wake it with a throwaway connection.
        drop(TcpStream::connect(&self.addr));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, manager: Arc<SessionManager>, stop: Arc<AtomicBool>) {
    loop {
        let conn = listener.accept();
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok((stream, _)) = conn else { continue };
        let manager = Arc::clone(&manager);
        std::thread::spawn(move || {
            let _ = serve_scrape(stream, &manager);
        });
    }
}

/// Read one request head and answer it; always closes the connection.
fn serve_scrape(stream: TcpStream, manager: &SessionManager) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers up to the blank line so well-behaved clients don't
    // see a reset before the response.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain; charset=utf-8", "only GET is supported\n".into())
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                // The exposition format 0.0.4 content type scrapers expect.
                "text/plain; version=0.0.4; charset=utf-8",
                manager.stats().report(manager.is_draining()).to_prometheus(),
            ),
            "/health" => ("200 OK", "application/json", manager.health_json()),
            "/metrics/history" => match manager.history_json() {
                Some(body) => ("200 OK", "application/json", body),
                None => (
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    "history sampling is not enabled on this daemon\n".into(),
                ),
            },
            "/" => ("200 OK", "text/plain; charset=utf-8", "adaphet-serve: see /metrics\n".into()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "unknown path; try /metrics\n".into(),
            ),
        }
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::ServiceConfig;
    use crate::protocol::Request;
    use std::io::Read;

    fn get(addr: &str, path: &str) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn metrics_endpoint_serves_the_exposition() {
        let manager = Arc::new(SessionManager::new(ServiceConfig {
            idle_timeout: None,
            ..ServiceConfig::default()
        }));
        // Give the plane something to expose.
        let _ = manager.handle(Request::Ping);
        let mut server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&manager)).unwrap();

        let response = get(server.addr(), "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"), "{response}");
        assert!(response.contains("# TYPE adaphet_service_request_total counter"), "{response}");
        assert!(response.contains("adaphet_service_verb_ping_seconds_count 1"), "{response}");
        assert!(response.contains("adaphet_service_sessions_live 0"), "{response}");

        let root = get(server.addr(), "/");
        assert!(root.starts_with("HTTP/1.1 200 OK\r\n"), "{root}");
        let missing = get(server.addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        server.stop();
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let manager = Arc::new(SessionManager::new(ServiceConfig {
            idle_timeout: None,
            ..ServiceConfig::default()
        }));
        let mut server = MetricsServer::bind("127.0.0.1:0", manager).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        write!(conn, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
        server.stop();
    }

    #[test]
    fn health_endpoint_serves_live_session_reports() {
        let manager = Arc::new(SessionManager::new(ServiceConfig {
            idle_timeout: None,
            ..ServiceConfig::default()
        }));
        let mut server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&manager)).unwrap();
        // Empty daemon: a valid document with an empty session list.
        let empty = get(server.addr(), "/health");
        assert!(empty.starts_with("HTTP/1.1 200 OK\r\n"), "{empty}");
        assert!(empty.contains("application/json"), "{empty}");
        assert!(empty.contains("\"sessions\":[]"), "{empty}");

        let spec = crate::protocol::SessionSpec::new(adaphet_core::StrategyKind::Ucb, 1, 8);
        let id = match manager.handle(Request::CreateSession(spec)) {
            crate::protocol::Response::SessionCreated { session } => session,
            other => panic!("{other:?}"),
        };
        let body = get(server.addr(), "/health");
        assert!(body.contains(&format!("\"session\":{id},\"state\":\"ok\"")), "{body}");
        server.stop();
    }

    #[test]
    fn history_endpoint_is_404_without_a_sampler_and_json_with_one() {
        let disabled = Arc::new(SessionManager::new(ServiceConfig {
            idle_timeout: None,
            ..ServiceConfig::default()
        }));
        let mut server = MetricsServer::bind("127.0.0.1:0", disabled).unwrap();
        let missing = get(server.addr(), "/metrics/history");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        server.stop();

        let enabled = Arc::new(SessionManager::new(ServiceConfig {
            idle_timeout: None,
            history: Some(crate::manager::HistoryConfig {
                // A long interval: the test samples deterministically.
                interval: std::time::Duration::from_secs(3600),
                ..crate::manager::HistoryConfig::default()
            }),
            ..ServiceConfig::default()
        }));
        let _ = enabled.handle(Request::Ping);
        assert!(enabled.sample_history_now());
        let mut server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&enabled)).unwrap();
        let body = get(server.addr(), "/metrics/history");
        assert!(body.starts_with("HTTP/1.1 200 OK\r\n"), "{body}");
        assert!(body.contains("\"series\":["), "{body}");
        assert!(body.contains("service.request"), "{body}");
        server.stop();
    }

    #[test]
    fn concurrent_scrapes_all_get_complete_expositions() {
        let manager = Arc::new(SessionManager::new(ServiceConfig {
            idle_timeout: None,
            ..ServiceConfig::default()
        }));
        let _ = manager.handle(Request::Ping);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&manager)).unwrap();
        let addr = server.addr().to_string();
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let path = if i % 2 == 0 { "/metrics" } else { "/health" };
                    get(&addr, path)
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let response = h.join().unwrap();
            assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "scrape {i}: {response}");
            // Content-Length must match the delivered body exactly.
            let len: usize = response
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .expect("content-length header")
                .trim()
                .parse()
                .unwrap();
            let body = response.split("\r\n\r\n").nth(1).unwrap();
            assert_eq!(body.len(), len, "scrape {i} was truncated");
        }
    }

    #[test]
    fn malformed_and_partial_request_lines_do_not_wedge_the_listener() {
        let manager = Arc::new(SessionManager::new(ServiceConfig {
            idle_timeout: None,
            ..ServiceConfig::default()
        }));
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&manager)).unwrap();

        // A bare newline: no method, no path — answered 405, not a hang.
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        write!(conn, "\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");

        // Garbage that is not HTTP at all.
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        conn.write_all(b"\x00\x01\x02 nonsense\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1"), "{response}");

        // A client that connects and disappears mid-request-line: the
        // handler thread must give up on EOF rather than spin.
        let conn = TcpStream::connect(server.addr()).unwrap();
        drop(conn);
        // A partial request line with no terminator, then a hangup.
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        write!(conn, "GET /metr").unwrap();
        drop(conn);

        // The listener is still healthy afterwards.
        let ok = get(server.addr(), "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
    }
}
