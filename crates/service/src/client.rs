//! A blocking typed client for the adaphet wire protocol — used by the
//! integration tests, the `uds_client` example, and anything that wants
//! to drive a remote tuning session from Rust without hand-rolling
//! frames.

use crate::protocol::{
    read_frame, write_frame, ErrorCode, HealthInfo, Request, Response, SessionEvent, SessionSpec,
    StatsSnapshot,
};
use adaphet_analysis::Json;
use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (socket closed, write failed, …).
    Io(std::io::Error),
    /// The peer answered something that is not a valid response frame,
    /// or a response of the wrong shape for the call.
    Protocol(String),
    /// The server answered a typed [`Response::Error`].
    Server {
        /// Machine-readable category.
        code: ErrorCode,
        /// The server's one-line diagnosis.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// What [`Client::submit`] came back with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Submitted {
    /// The observation was recorded on `iteration`; the ticket closed.
    Recorded {
        /// Iteration index the observation landed on.
        iteration: usize,
        /// Session cumulative time after recording.
        cumulative_time: f64,
    },
    /// The server's resilience policy wants the measurement re-taken
    /// under the same ticket.
    Retry {
        /// The action to re-measure.
        action: usize,
        /// 1-based retry attempt count.
        attempt: usize,
    },
}

/// What [`Client::ping`] learned about the daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct PongInfo {
    /// Daemon crate version (empty when talking to a pre-stats daemon).
    pub version: String,
    /// Monotonic seconds since the daemon's manager started.
    pub uptime_s: f64,
}

/// One session's live state, as answered to [`Client::inspect`].
#[derive(Debug, Clone, PartialEq)]
pub struct InspectedSession {
    /// Strategy, by canonical registry name.
    pub strategy: String,
    /// Iterations proposed so far.
    pub iterations: usize,
    /// Sum of all recorded durations so far.
    pub cumulative_time: f64,
    /// Open ledger entries as `(ticket, action)`, in issue order.
    pub pending: Vec<(u64, usize)>,
    /// Recent lifecycle events, oldest first.
    pub events: Vec<SessionEvent>,
    /// Events the daemon's bounded ring already evicted; non-zero means
    /// `events` is a truncated tail (0 from pre-drop-accounting daemons).
    pub events_dropped: u64,
}

/// The final state of a closed session.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedSession {
    /// Iterations proposed over the session's lifetime.
    pub iterations: usize,
    /// Sum of all recorded durations.
    pub total_time: f64,
    /// Action with the lowest mean observed duration, if any.
    pub best_action: Option<usize>,
    /// Full `(action, duration)` history, in iteration order.
    pub history: Vec<(usize, f64)>,
}

/// A blocking protocol client over any framed byte stream.
pub struct Client<S: Read + Write> {
    stream: S,
}

impl Client<TcpStream> {
    /// Connect over TCP.
    pub fn connect_tcp(addr: &str) -> Result<Self, ClientError> {
        Ok(Client { stream: TcpStream::connect(addr)? })
    }
}

#[cfg(unix)]
impl Client<UnixStream> {
    /// Connect over a Unix-domain socket.
    pub fn connect_uds(path: impl AsRef<Path>) -> Result<Self, ClientError> {
        Ok(Client { stream: UnixStream::connect(path)? })
    }
}

impl<S: Read + Write> Client<S> {
    /// Wrap an already-connected stream.
    pub fn new(stream: S) -> Self {
        Client { stream }
    }

    /// Send one request and read its reply — the raw exchange every typed
    /// helper below builds on. Typed server errors come back as
    /// [`ClientError::Server`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.to_json())?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::Protocol("server closed before replying".into()))?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| ClientError::Protocol("reply is not UTF-8".into()))?;
        let json = Json::parse(text).map_err(ClientError::Protocol)?;
        match Response::from_json(&json).map_err(ClientError::Protocol)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            reply => Ok(reply),
        }
    }

    /// Create a session, returning its id.
    pub fn create_session(&mut self, spec: SessionSpec) -> Result<u64, ClientError> {
        match self.request(&Request::CreateSession(spec))? {
            Response::SessionCreated { session } => Ok(session),
            other => Err(unexpected("session_created", &other)),
        }
    }

    /// Fetch the next proposal: `(ticket, iteration, action)`.
    pub fn get_proposal(&mut self, session: u64) -> Result<(u64, usize, usize), ClientError> {
        match self.request(&Request::GetProposal { session })? {
            Response::Proposal { ticket, iteration, action, .. } => Ok((ticket, iteration, action)),
            other => Err(unexpected("proposal", &other)),
        }
    }

    /// Resolve a ticket with its measured duration.
    pub fn submit(
        &mut self,
        session: u64,
        ticket: u64,
        duration: f64,
    ) -> Result<Submitted, ClientError> {
        match self.request(&Request::SubmitObservation { session, ticket, duration })? {
            Response::Recorded { iteration, cumulative_time, .. } => {
                Ok(Submitted::Recorded { iteration, cumulative_time })
            }
            Response::Retry { action, attempt, .. } => Ok(Submitted::Retry { action, attempt }),
            other => Err(unexpected("recorded or retry", &other)),
        }
    }

    /// Fetch the strategy's posterior snapshot (`None` until the
    /// surrogate has enough data).
    pub fn get_posterior(
        &mut self,
        session: u64,
    ) -> Result<Option<Vec<adaphet_core::PosteriorPoint>>, ClientError> {
        match self.request(&Request::GetPosterior { session })? {
            Response::Posterior { points, .. } => Ok(points),
            other => Err(unexpected("posterior", &other)),
        }
    }

    /// Close a session, returning its final state.
    pub fn close_session(&mut self, session: u64) -> Result<ClosedSession, ClientError> {
        match self.request(&Request::CloseSession { session })? {
            Response::Closed { iterations, total_time, best_action, history, .. } => {
                Ok(ClosedSession { iterations, total_time, best_action, history })
            }
            other => Err(unexpected("closed", &other)),
        }
    }

    /// Liveness probe; the reply identifies the daemon.
    pub fn ping(&mut self) -> Result<PongInfo, ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong { version, uptime_s } => Ok(PongInfo { version, uptime_s }),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Fetch the service-wide observability snapshot.
    pub fn get_stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.request(&Request::GetStats)? {
            Response::Stats(snapshot) => Ok(snapshot),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Fetch one session's live state and recent lifecycle events.
    pub fn inspect(&mut self, session: u64) -> Result<InspectedSession, ClientError> {
        match self.request(&Request::Inspect { session })? {
            Response::Inspected {
                strategy,
                iterations,
                cumulative_time,
                pending,
                events,
                events_dropped,
                ..
            } => Ok(InspectedSession {
                strategy,
                iterations,
                cumulative_time,
                pending,
                events,
                events_dropped,
            }),
            other => Err(unexpected("inspected", &other)),
        }
    }

    /// Fetch one session's convergence-health report.
    pub fn get_health(&mut self, session: u64) -> Result<HealthInfo, ClientError> {
        match self.request(&Request::GetHealth { session })? {
            Response::Health(info) => Ok(info),
            other => Err(unexpected("health", &other)),
        }
    }

    /// Ask the daemon to stop accepting and drain.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutting_down", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
