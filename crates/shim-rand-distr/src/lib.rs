//! Offline drop-in replacement for the subset of `rand_distr` this
//! workspace uses: [`Normal`] and [`StandardNormal`] via Box–Muller.

pub use rand::distr::Distribution;
use rand::RngCore;

/// Error constructing a [`Normal`] (negative or non-finite σ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// The standard normal distribution `N(0, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller. `u1` is mapped into (0, 1] so ln() stays finite.
        let u1 = 1.0 - rng.next_f64();
        let u2 = rng.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// The normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F = f64> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// A normal distribution; `Err` on invalid (negative/NaN) σ.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(NormalError);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * StandardNormal.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_sigma_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn moments_are_close() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Normal::new(3.0, 2.0).unwrap();
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(5.0, 0.0).unwrap();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 5.0);
        }
    }
}
