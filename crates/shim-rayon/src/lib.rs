//! Offline drop-in replacement for the subset of `rayon` this workspace
//! uses: `into_par_iter().map(..).collect()`.
//!
//! Items are materialized eagerly, split into contiguous chunks, and mapped
//! on scoped OS threads (one per available core); chunk results are
//! concatenated in order, so `collect` preserves item order exactly like
//! rayon's indexed parallel iterators.

/// Rayon-style prelude.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParMap};
}

/// Conversion into a (shim) parallel iterator.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Materialize the items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for core::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl IntoParallelIterator for core::ops::RangeInclusive<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl IntoParallelIterator for core::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter { items: self.collect() }
    }
}

/// Materialized item sequence awaiting a parallel stage.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map stage.
    pub fn map<O: Send, F: Fn(T) -> O + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap { items: self.items, f }
    }

    /// Collect the (unmapped) items.
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }
}

/// A pending parallel map, executed by `collect`/`sum`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, O: Send, F: Fn(T) -> O + Sync> ParMap<T, F> {
    fn run(self) -> Vec<O> {
        parallel_map(self.items, &self.f)
    }

    /// Execute the map on all cores and collect in input order.
    pub fn collect<C: From<Vec<O>>>(self) -> C {
        C::from(self.run())
    }

    /// Execute the map and sum the results.
    pub fn sum<S: core::iter::Sum<O>>(self) -> S {
        self.run().into_iter().sum()
    }
}

/// Below this many items the spawn/join overhead dwarfs the mapped work
/// (scoped threads cost microseconds; tiny maps cost nanoseconds): run the
/// map inline on the calling thread instead.
const SEQUENTIAL_CUTOFF: usize = 4;

fn parallel_map<T: Send, O: Send, F: Fn(T) -> O + Sync>(items: Vec<T>, f: &F) -> Vec<O> {
    let threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(items.len().max(1));
    if threads <= 1 || items.len() < SEQUENTIAL_CUTOFF {
        return items.into_iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Vec<O>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let mut iter = items.into_iter();
        loop {
            let batch: Vec<T> = iter.by_ref().take(chunk).collect();
            if batch.is_empty() {
                break;
            }
            handles.push(scope.spawn(move || batch.into_iter().map(f).collect::<Vec<O>>()));
        }
        for h in handles {
            out.push(h.join().expect("parallel map worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn vec_and_inclusive_ranges_work() {
        let v: Vec<i32> = vec![3, 1, 2].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(v, vec![4, 2, 3]);
        let w: Vec<usize> = (1..=4usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(w, vec![1, 4, 9, 16]);
    }

    #[test]
    fn sum_works() {
        let s: usize = (0..100usize).into_par_iter().map(|x| x).sum();
        assert_eq!(s, 4950);
    }

    #[test]
    fn small_inputs_run_on_the_calling_thread() {
        // Inputs below the cutoff must not pay for thread spawns: the map
        // runs inline, so every item sees the caller's thread id.
        let caller = std::thread::current().id();
        let ids: Vec<_> =
            vec![1, 2, 3].into_par_iter().map(move |_| std::thread::current().id()).collect();
        assert_eq!(ids.len(), 3);
        assert!(ids.iter().all(|id| *id == caller), "sub-cutoff map left the calling thread");
    }
}
