//! The machine catalogue of the paper's Table II.

use adaphet_runtime::{NetworkSpec, NodeSpec};

/// Computing site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Grid5000 (Lille clusters): 10/25 Gb/s Ethernet partitions,
    /// 2×100 Gb/s backbone.
    G5k,
    /// Santos Dumont: InfiniBand FDR 56 Gb/s fabric.
    SDumont,
}

impl Site {
    /// Interconnect of the site.
    pub fn network(self) -> NetworkSpec {
        match self {
            // Two 100 Gb/s uplinks join the partitions.
            Site::G5k => NetworkSpec { backbone_gbps: 200.0, latency_s: 20e-6 },
            // Fat-tree InfiniBand: effectively not the bottleneck.
            Site::SDumont => NetworkSpec { backbone_gbps: 600.0, latency_s: 5e-6 },
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Site::G5k => "G5K",
            Site::SDumont => "SD",
        }
    }
}

/// One machine model of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Machine {
    /// G5K Chetemi — 2× Xeon E5-2630 v4, no GPU, 10 Gb/s (class S).
    Chetemi,
    /// G5K Chifflet — 2× Xeon E5-2680 v4, 2× GTX 1080, 10 Gb/s (class M).
    Chifflet,
    /// G5K Chifflot — 2× Xeon Gold 6126, 2× Tesla P100, 25 Gb/s (class L).
    Chifflot,
    /// SD B715 — 2× Xeon E5-2695 v2, no GPU (class S).
    SdCpu,
    /// SD B715 with a single K40 (the paper's "artificial machine to
    /// increase heterogeneity", class M).
    SdK40x1,
    /// SD B715 with 2× K40 (class L).
    SdK40x2,
}

impl Machine {
    /// Hardware profile. Per-core and per-GPU GFLOP/s are realistic DGEMM
    /// throughputs for the paper's hardware, not theoretical peaks.
    pub fn spec(self) -> NodeSpec {
        match self {
            Machine::Chetemi => NodeSpec {
                name: "chetemi".into(),
                cpu_cores: 20,
                gpus: 0,
                cpu_gflops_per_core: 16.0, // Broadwell 2.2 GHz
                gpu_gflops: 0.0,
                nic_gbps: 10.0,
            },
            Machine::Chifflet => NodeSpec {
                name: "chifflet".into(),
                cpu_cores: 28,
                gpus: 2,
                cpu_gflops_per_core: 17.0, // Broadwell 2.4 GHz
                gpu_gflops: 250.0,         // GTX 1080: weak FP64
                nic_gbps: 10.0,
            },
            Machine::Chifflot => NodeSpec {
                name: "chifflot".into(),
                cpu_cores: 24,
                gpus: 2,
                cpu_gflops_per_core: 35.0, // Skylake AVX-512
                gpu_gflops: 3800.0,        // Tesla P100 DGEMM
                nic_gbps: 25.0,
            },
            Machine::SdCpu => NodeSpec {
                name: "sd-b715".into(),
                cpu_cores: 24,
                gpus: 0,
                cpu_gflops_per_core: 15.0, // Ivy Bridge 2.4 GHz
                gpu_gflops: 0.0,
                nic_gbps: 56.0,
            },
            Machine::SdK40x1 => NodeSpec {
                name: "sd-b715-1k40".into(),
                cpu_cores: 24,
                gpus: 1,
                cpu_gflops_per_core: 15.0,
                gpu_gflops: 1150.0, // Tesla K40 DGEMM
                nic_gbps: 56.0,
            },
            Machine::SdK40x2 => NodeSpec {
                name: "sd-b715-2k40".into(),
                cpu_cores: 24,
                gpus: 2,
                cpu_gflops_per_core: 15.0,
                gpu_gflops: 1150.0,
                nic_gbps: 56.0,
            },
        }
    }

    /// Site this machine belongs to.
    pub fn site(self) -> Site {
        match self {
            Machine::Chetemi | Machine::Chifflet | Machine::Chifflot => Site::G5k,
            _ => Site::SDumont,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ordering_within_sites() {
        // L > M > S in peak throughput, per Table II's grouping.
        let peak = |m: Machine| m.spec().peak_gflops();
        assert!(peak(Machine::Chifflot) > peak(Machine::Chifflet));
        assert!(peak(Machine::Chifflet) > peak(Machine::Chetemi));
        assert!(peak(Machine::SdK40x2) > peak(Machine::SdK40x1));
        assert!(peak(Machine::SdK40x1) > peak(Machine::SdCpu));
    }

    #[test]
    fn cpu_only_machines_have_no_gpus() {
        assert_eq!(Machine::Chetemi.spec().gpus, 0);
        assert_eq!(Machine::SdCpu.spec().gpus, 0);
        assert_eq!(Machine::SdK40x1.spec().gpus, 1);
    }

    #[test]
    fn sd_nodes_share_cpu_config() {
        // The three SD variants differ only in GPUs (same B715 chassis).
        let a = Machine::SdCpu.spec();
        let b = Machine::SdK40x2.spec();
        assert_eq!(a.cpu_cores, b.cpu_cores);
        assert_eq!(a.cpu_gflops_per_core, b.cpu_gflops_per_core);
        assert_eq!(a.nic_gbps, b.nic_gbps);
    }

    #[test]
    fn networks_match_paper_description() {
        assert_eq!(Site::G5k.network().backbone_gbps, 200.0);
        assert!(Site::SDumont.network().backbone_gbps > Site::G5k.network().backbone_gbps);
        assert_eq!(Machine::Chifflot.spec().nic_gbps, 25.0);
        assert_eq!(Machine::Chetemi.spec().nic_gbps, 10.0);
        assert_eq!(Machine::SdCpu.spec().nic_gbps, 56.0);
    }

    #[test]
    fn sites_assigned_correctly() {
        assert_eq!(Machine::Chifflet.site(), Site::G5k);
        assert_eq!(Machine::SdK40x2.site(), Site::SDumont);
        assert_eq!(Site::G5k.name(), "G5K");
    }
}
