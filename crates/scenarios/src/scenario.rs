//! The 16 evaluation scenarios (paper Figs. 5 and 6).

use crate::catalogue::{Machine, Site};
use adaphet_geostat::{lp_bound_for, GeoClasses, GeoSimApp, IterationChoice, Workload};
use adaphet_runtime::{Platform, SimConfig};

/// Problem scale: the paper's sizes, a reduced default that preserves the
/// curve shapes at a fraction of the simulation cost, and a tiny size for
/// tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny (CI tests).
    Test,
    /// Default: reduced tile counts, same platforms.
    Reduced,
    /// The paper's 101x101 / 128x128 tiles.
    Full,
}

/// Matrix workload selector: the paper's 96100 ("101") or 122880 ("128").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Matrix {
    /// 96100 observations, 101x101 tiles.
    M101,
    /// 122880 observations, 128x128 tiles.
    M128,
}

/// One evaluation scenario: a heterogeneous machine mix and a workload.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario letter (a-p) as in the paper's figures.
    pub id: char,
    /// Machine groups, fastest first: (machine, count).
    pub mix: Vec<(Machine, usize)>,
    /// Workload selector.
    pub matrix: Matrix,
    /// Whether the paper measured this scenario on real hardware
    /// ("(Real)") or in simulation ("(Simul)"). Real-tagged scenarios get
    /// per-task jitter on top of the observation noise.
    pub real: bool,
}

impl Scenario {
    /// The 16 scenarios of the paper's Figs. 5-6, in order (a) to (p).
    pub fn all16() -> Vec<Scenario> {
        use Machine::*;
        use Matrix::*;
        let s = |id: char, mix: Vec<(Machine, usize)>, matrix: Matrix, real: bool| Scenario {
            id,
            mix,
            matrix,
            real,
        };
        vec![
            s('a', vec![(Chifflot, 2), (Chifflet, 4), (Chetemi, 4)], M101, true),
            s('b', vec![(Chifflot, 2), (Chifflet, 6), (Chetemi, 6)], M101, true),
            s('c', vec![(SdK40x2, 10), (SdCpu, 10)], M128, true),
            s('d', vec![(SdK40x2, 3), (SdK40x1, 8), (SdCpu, 10)], M101, false),
            s('e', vec![(Chifflot, 2), (Chifflet, 6), (Chetemi, 15)], M101, false),
            s('f', vec![(Chifflot, 2), (Chifflet, 6), (Chetemi, 15)], M128, false),
            s('g', vec![(Chifflot, 5), (Chifflet, 6), (Chetemi, 15)], M101, true),
            s('h', vec![(SdK40x2, 10), (SdK40x1, 10), (SdCpu, 10)], M128, true),
            s('i', vec![(Chifflot, 6), (Chetemi, 30)], M101, false),
            s('j', vec![(Chifflot, 2), (Chifflet, 6), (Chetemi, 30)], M101, false),
            s('k', vec![(SdK40x2, 10), (SdCpu, 40)], M101, false),
            s('l', vec![(SdK40x2, 3), (SdK40x1, 8), (SdCpu, 50)], M128, false),
            s('m', vec![(SdK40x2, 64)], M128, true),
            s('n', vec![(SdK40x2, 15), (SdCpu, 60)], M101, false),
            s('o', vec![(SdK40x2, 15), (SdCpu, 60)], M128, false),
            s('p', vec![(SdK40x2, 64), (SdCpu, 64)], M128, false),
        ]
    }

    /// Look one up by letter.
    pub fn by_id(id: char) -> Option<Scenario> {
        Self::all16().into_iter().find(|s| s.id == id)
    }

    /// The site hosting this mix.
    pub fn site(&self) -> Site {
        self.mix[0].0.site()
    }

    /// Paper-style label, e.g. `"(i) G5K 6L-30S 101 (Simul)"`.
    pub fn label(&self) -> String {
        let class_of = |m: Machine| match m {
            Machine::Chifflot | Machine::SdK40x2 => "L",
            Machine::Chifflet | Machine::SdK40x1 => "M",
            Machine::Chetemi | Machine::SdCpu => "S",
        };
        let mix = self
            .mix
            .iter()
            .map(|&(m, c)| format!("{}{}", c, class_of(m)))
            .collect::<Vec<_>>()
            .join("-");
        let m = match self.matrix {
            Matrix::M101 => "101",
            Matrix::M128 => "128",
        };
        let tag = if self.real { "Real" } else { "Simul" };
        format!("({}) {} {} {} ({})", self.id, self.site().name(), mix, m, tag)
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.mix.iter().map(|(_, c)| c).sum()
    }

    /// Build the (fastest-first sorted) platform.
    pub fn platform(&self) -> Platform {
        let mut nodes = Vec::with_capacity(self.n_nodes());
        for &(m, count) in &self.mix {
            for _ in 0..count {
                nodes.push(m.spec());
            }
        }
        Platform::new_sorted(nodes, self.site().network())
    }

    /// The workload at a given scale.
    pub fn workload(&self, scale: Scale) -> Workload {
        match (scale, self.matrix) {
            (Scale::Full, Matrix::M101) => Workload::paper_101(),
            (Scale::Full, Matrix::M128) => Workload::paper_128(),
            (Scale::Reduced, Matrix::M101) => Workload::new(48, 960),
            (Scale::Reduced, Matrix::M128) => Workload::new(56, 960),
            (Scale::Test, Matrix::M101) => Workload::new(10, 256),
            (Scale::Test, Matrix::M128) => Workload::new(12, 256),
        }
    }

    /// Relative observation noise of the paper's methodology. The paper
    /// adds `N(0, 0.5 s)` to iterations of 10–30 s (≈2–5% of the signal);
    /// we keep that *relative* magnitude at every scale: the evaluation
    /// harness multiplies this by the median simulated duration, which
    /// lands on ≈0.5 s at paper scale.
    pub fn noise_rel(&self, scale: Scale) -> f64 {
        match scale {
            Scale::Full => 0.04,
            Scale::Reduced => 0.04,
            Scale::Test => 0.04,
        }
    }

    /// Build the simulated application. `seed` drives the per-task jitter
    /// of "(Real)" scenarios; "(Simul)" scenarios are deterministic, per
    /// the paper's methodology (Section V).
    pub fn app(&self, scale: Scale, seed: u64) -> GeoSimApp {
        let jitter = if self.real { Some(0.03) } else { None };
        GeoSimApp::new(
            self.platform(),
            self.workload(scale),
            SimConfig { seed, task_jitter: jitter, trace: true },
        )
    }

    /// Like [`Scenario::app`], but with trace recording disabled from the
    /// start — for sweep/measurement paths that never read the trace, so
    /// tracing costs nothing. It can be re-enabled later via
    /// `GeoSimApp::set_trace_enabled`.
    pub fn app_untraced(&self, scale: Scale, seed: u64) -> GeoSimApp {
        let jitter = if self.real { Some(0.03) } else { None };
        GeoSimApp::new(
            self.platform(),
            self.workload(scale),
            SimConfig { seed, task_jitter: jitter, trace: false },
        )
    }

    /// Homogeneous groups as 1-based inclusive node-count ranges.
    pub fn groups(&self) -> Vec<(usize, usize)> {
        self.platform().homogeneous_groups()
    }

    /// The platform signature keying this scenario in a
    /// [`SurrogateStore`](adaphet_store::SurrogateStore): one
    /// [`GroupSig`](adaphet_store::GroupSig) per machine group (count,
    /// peak GFLOP/s, NIC Gbit/s — real feature values, so cross-platform
    /// similarity is meaningful) and the workload folded to a stable
    /// integer (`nt * tile` is the matrix order; the scale changes it, so
    /// snapshots never transfer across scales by accident).
    pub fn signature(&self, scale: Scale) -> adaphet_store::PlatformSignature {
        let w = self.workload(scale);
        adaphet_store::PlatformSignature::new(
            (w.nt * w.tile) as u64,
            self.mix
                .iter()
                .map(|&(m, count)| {
                    let spec = m.spec();
                    adaphet_store::GroupSig {
                        count: count as u32,
                        speed: spec.peak_gflops(),
                        bw: spec.nic_gbps,
                    }
                })
                .collect(),
        )
    }

    /// The LP lower-bound curve `LP(n)` for `n = 1..=N` (all nodes used
    /// for generation).
    pub fn lp_curve(&self, scale: Scale) -> Vec<f64> {
        let platform = self.platform();
        let (_, classes) = GeoClasses::register();
        let w = self.workload(scale);
        let n = self.n_nodes();
        (1..=n)
            .map(|k| lp_bound_for(&platform, &classes, w, IterationChoice::fact_only(n, k)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_scenarios_with_unique_ids() {
        let all = Scenario::all16();
        assert_eq!(all.len(), 16);
        let ids: Vec<char> = all.iter().map(|s| s.id).collect();
        assert_eq!(ids, ('a'..='p').collect::<Vec<_>>());
    }

    #[test]
    fn labels_match_paper_format() {
        assert_eq!(Scenario::by_id('i').unwrap().label(), "(i) G5K 6L-30S 101 (Simul)");
        assert_eq!(Scenario::by_id('c').unwrap().label(), "(c) SD 10L-10S 128 (Real)");
        assert_eq!(Scenario::by_id('m').unwrap().label(), "(m) SD 64L 128 (Real)");
        assert_eq!(Scenario::by_id('h').unwrap().label(), "(h) SD 10L-10M-10S 128 (Real)");
    }

    #[test]
    fn node_counts_match_mixes() {
        assert_eq!(Scenario::by_id('p').unwrap().n_nodes(), 128);
        assert_eq!(Scenario::by_id('a').unwrap().n_nodes(), 10);
        assert_eq!(Scenario::by_id('m').unwrap().n_nodes(), 64);
    }

    #[test]
    fn platform_groups_match_mix_structure() {
        let s = Scenario::by_id('b').unwrap(); // 2L-6M-6S
        assert_eq!(s.groups(), vec![(1, 2), (3, 8), (9, 14)]);
        let m = Scenario::by_id('m').unwrap(); // homogeneous 64L
        assert_eq!(m.groups(), vec![(1, 64)]);
    }

    #[test]
    fn platforms_are_sorted_fastest_first() {
        for s in Scenario::all16() {
            let p = s.platform();
            for w in p.nodes.windows(2) {
                assert!(
                    w[0].peak_gflops() >= w[1].peak_gflops() - 1e-9,
                    "{}: not sorted",
                    s.label()
                );
            }
        }
    }

    #[test]
    fn lp_curves_are_non_increasing_and_positive() {
        let s = Scenario::by_id('b').unwrap();
        let lp = s.lp_curve(Scale::Test);
        assert_eq!(lp.len(), s.n_nodes());
        for w in lp.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!(lp.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn real_tag_controls_jitter() {
        // Two seeds: a Real scenario varies, a Simul one does not.
        let run = |id: char, seed: u64| {
            let s = Scenario::by_id(id).unwrap();
            let mut app = s.app_untraced(Scale::Test, seed);
            let n = app.n_nodes();
            app.run_iteration(adaphet_geostat::IterationChoice::all(n)).duration()
        };
        assert_ne!(run('a', 1), run('a', 2), "(Real) should jitter");
        assert_eq!(run('e', 1), run('e', 2), "(Simul) is deterministic");
    }

    #[test]
    fn signatures_are_stable_and_discriminating() {
        let n = Scenario::by_id('n').unwrap();
        let o = Scenario::by_id('o').unwrap(); // same mix, other matrix
        let p = Scenario::by_id('p').unwrap();
        let sig_n = n.signature(Scale::Test);
        assert_eq!(sig_n.key(), n.signature(Scale::Test).key(), "deterministic key");
        assert_ne!(sig_n.key(), o.signature(Scale::Test).key(), "workload must discriminate");
        assert_ne!(sig_n.key(), p.signature(Scale::Test).key(), "mix must discriminate");
        // Same-mix scenarios stay the most similar pair.
        let sim_same_mix = sig_n.similarity(&o.signature(Scale::Test));
        let sim_other = sig_n.similarity(&p.signature(Scale::Test));
        assert!(sim_same_mix > sim_other, "{sim_same_mix} vs {sim_other}");
        // Real hardware features land in the signature.
        assert!(sig_n.groups.iter().all(|g| g.speed > 0.0 && g.bw > 0.0));
    }

    #[test]
    fn workload_scales() {
        let s = Scenario::by_id('p').unwrap();
        assert_eq!(s.workload(Scale::Full).nt, 128);
        assert!(s.workload(Scale::Reduced).nt < 128);
        assert!(s.workload(Scale::Test).nt <= 16);
    }
}
