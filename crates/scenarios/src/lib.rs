#![warn(missing_docs)]

//! Machine catalogue (paper Table II) and the 16 evaluation scenarios.
//!
//! Node throughputs are calibrated from the nominal double-precision
//! capabilities of the paper's hardware (Grid5000 Chetemi / Chifflet /
//! Chifflot, Santos Dumont B715 with 0/1/2 K40 GPUs); networks follow the
//! paper's description (10/25 Gb/s Ethernet partitions with a 2×100 Gb/s
//! backbone on Grid5000, 56 Gb/s InfiniBand FDR on Santos Dumont). The
//! goal is not to match absolute times but to reproduce the response-curve
//! *shapes*: convexity, contention knees, and group-boundary breaks.

mod catalogue;
mod scenario;

pub use catalogue::{Machine, Site};
pub use scenario::{Scale, Scenario};
