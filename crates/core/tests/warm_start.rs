//! End-to-end warm-start behaviour through the public builder/Session
//! API: store round-trips, space-mismatch refusal, and warm-vs-cold
//! determinism.

use adaphet_core::{
    signature_from_space, ActionSpace, DriverBuildError, Observation, StoreError, StrategyKind,
    SurrogateSnapshot, SurrogateStore, TunerDriver, WarmStart,
};

fn space() -> ActionSpace {
    ActionSpace::new(12, vec![(1, 4), (5, 12)], Some((1..=12).map(|n| 48.0 / n as f64).collect()))
}

fn response(n: usize) -> f64 {
    48.0 / n as f64 + 0.9 * n as f64 + if n < 5 { 4.0 } else { 0.0 }
}

fn tmp_store(tag: &str) -> SurrogateStore {
    let dir = std::env::temp_dir().join(format!("adaphet-warm-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    SurrogateStore::open(dir).unwrap()
}

fn drive(session: &mut adaphet_core::Session, iters: usize) -> Vec<(usize, f64)> {
    for _ in 0..iters {
        let p = session.propose().unwrap();
        session.observe(p.ticket, Observation::of(response(p.action))).unwrap();
    }
    session.history().records().to_vec()
}

#[test]
fn sessions_snapshot_into_the_store_and_later_sessions_warm_start_from_it() {
    let store = tmp_store("roundtrip");
    let space = space();

    // Session 1: cold, attached to the store; its close persists a
    // snapshot keyed by the space-derived fallback signature.
    let mut s1 = TunerDriver::builder(&space)
        .kind(StrategyKind::GpDiscontinuous)
        .store(&store)
        .build_session()
        .unwrap();
    let cold = drive(&mut s1, 20);
    s1.finish().unwrap();
    assert_eq!(store.entries().unwrap().len(), 1, "finish() must persist exactly one snapshot");

    let snap = store
        .get(&signature_from_space(&space), "GP-discontinuous")
        .unwrap()
        .expect("snapshot stored under the fallback signature");
    assert_eq!(snap.observations, cold);
    assert_eq!(snap.max_nodes, space.max_nodes);

    // Session 2: warm from the store. The cold init sequence (N, leftmost,
    // mid, mid, ...) is compressed to the single baseline play.
    let mut s2 = TunerDriver::builder(&space)
        .kind(StrategyKind::GpDiscontinuous)
        .store(&store)
        .warm_start(WarmStart::FromStore { min_similarity: 0.9 })
        .build_session()
        .unwrap();
    let warm = drive(&mut s2, 8);
    assert_eq!(warm[0].0, space.max_nodes, "warm still measures the baseline live");
    assert_ne!(
        warm.iter().map(|r| r.0).collect::<Vec<_>>(),
        cold.iter().take(8).map(|r| r.0).collect::<Vec<_>>(),
        "a warm session must not replay the cold initialization"
    );
    s2.finish().unwrap();
}

#[test]
fn warm_sessions_are_deterministic() {
    let space = space();
    let snap = SurrogateSnapshot {
        signature: signature_from_space(&space),
        strategy: "GP-discontinuous".into(),
        max_nodes: space.max_nodes,
        groups: space.groups.clone(),
        lp: space.lp.clone(),
        observations: (1..=12).map(|n| (n, response(n))).collect(),
        hyper: None,
    };
    let run = || {
        let mut s = TunerDriver::builder(&space)
            .kind(StrategyKind::GpDiscontinuous)
            .warm_start(WarmStart::FromSnapshot(snap.clone()))
            .build_session()
            .unwrap();
        drive(&mut s, 15)
    };
    assert_eq!(run(), run(), "same snapshot + same seed must replay identically");
}

#[test]
fn snapshots_from_a_prefault_space_are_refused() {
    // A snapshot taken on the full 12-node platform must not warm-start a
    // session whose live space already shrank to 9 nodes (e.g. after a
    // fault): folding it in could propose the dead nodes.
    let full = space();
    let shrunk =
        ActionSpace::new(9, vec![(1, 4), (5, 9)], Some((1..=9).map(|n| 48.0 / n as f64).collect()));
    let snap = SurrogateSnapshot {
        signature: signature_from_space(&full),
        strategy: "GP-discontinuous".into(),
        max_nodes: full.max_nodes,
        groups: full.groups.clone(),
        lp: full.lp.clone(),
        observations: vec![(12, 14.8), (10, 13.8)],
        hyper: None,
    };
    let err = TunerDriver::builder(&shrunk)
        .kind(StrategyKind::GpDiscontinuous)
        .warm_start(WarmStart::FromSnapshot(snap))
        .build_session()
        .err()
        .expect("mismatched snapshot must be refused");
    match err {
        DriverBuildError::WarmStart(StoreError::SpaceMismatch { .. }) => {}
        other => panic!("expected a space-mismatch refusal, got {other}"),
    }
}

#[test]
fn store_lookups_project_cross_space_snapshots_instead_of_failing() {
    // Same scenario through the store path: the mismatch is not an error
    // — the snapshot is projected onto the live space and proposals stay
    // in range.
    let store = tmp_store("project");
    let full = space();
    store
        .put(&SurrogateSnapshot {
            signature: signature_from_space(&full),
            strategy: "GP-UCB".into(),
            max_nodes: full.max_nodes,
            groups: full.groups.clone(),
            lp: full.lp.clone(),
            observations: (1..=12).map(|n| (n, response(n))).collect(),
            hyper: None,
        })
        .unwrap();
    let shrunk = ActionSpace::unstructured(6);
    let mut s = TunerDriver::builder(&shrunk)
        .kind(StrategyKind::GpUcb)
        .store(&store)
        .warm_start(WarmStart::FromStore { min_similarity: 0.0 })
        .build_session()
        .unwrap();
    let records = drive(&mut s, 10);
    assert!(records.iter().all(|&(a, _)| (1..=6).contains(&a)), "{records:?}");
}

#[test]
fn a_missing_store_match_falls_back_to_a_cold_start() {
    let space = space();
    let store = tmp_store("empty");
    let cold = {
        let mut s = TunerDriver::builder(&space).kind(StrategyKind::GpUcb).build_session().unwrap();
        drive(&mut s, 10)
    };
    let fallback = {
        let mut s = TunerDriver::builder(&space)
            .kind(StrategyKind::GpUcb)
            .store(&store)
            .warm_start(WarmStart::FromStore { min_similarity: 0.5 })
            .build_session()
            .unwrap();
        drive(&mut s, 10)
    };
    assert_eq!(cold, fallback, "an empty store must leave the session bit-identical to cold");
}
