//! The `death.json` scenario end to end through the public API: a node
//! death mid-session must be visible on the health plane (`Ok` →
//! `Warn(fault-pressure)`) and must clear again once the re-baselined
//! session has run fault-free long enough for the fault to age out of
//! the signal window.
//!
//! Fault plan mirrored here (the eval tool's JSON flavor):
//! `{"seed":42,"events":[{"kind":"node_death","iteration":15,"rank":5}]}`

use adaphet_core::{ActionSpace, Observation, ResiliencePolicy, StrategyKind, TunerDriver};

/// Noise-free, nearly flat response surface. Flat on purpose: the
/// diverging rule outranks fault-pressure in the severity table, so a
/// steep surface explored by UCB would trip the slope rule first and
/// mask the signal this test is about.
fn response(n: usize) -> f64 {
    10.0 + 0.01 * n as f64
}

#[test]
fn node_death_drives_health_warn_and_recovery() {
    let space = ActionSpace::unstructured(8);
    let mut driver = TunerDriver::builder(&space)
        .kind(StrategyKind::Ucb)
        .seed(42)
        .resilience(ResiliencePolicy::standard())
        .build()
        .unwrap();

    // Phase 1: fifteen healthy iterations. The session never leaves Ok.
    for _ in 0..15 {
        driver.step(|n| Observation::of(response(n)));
        assert_eq!(driver.health().state.as_str(), "ok");
    }
    assert_eq!(driver.health().transitions, 0);

    // Phase 2: rank 5 dies at iteration 15 — actions ≥ 5 were measured
    // with the dead node, so the space shrinks and the history is
    // quarantined + re-baselined by the resilience policy.
    let survivor = ActionSpace::unstructured(4);
    driver.apply_platform_change(&survivor, Some(5), "node-death:rank=5");
    // The fault annotation lands on the next recorded iteration; with
    // the default hysteresis of 2 the published state flips on the
    // evaluation after that.
    driver.step(|n| Observation::of(response(n)));
    driver.step(|n| Observation::of(response(n)));
    let report = driver.health();
    assert_eq!(report.state.as_str(), "warn", "signals: {:?}", report.signals);
    assert_eq!(report.state.reason(), Some("fault-pressure"));
    assert_eq!(report.transitions, 1);
    assert!(report.signals.faults_window > 0);

    // Phase 3: the re-baselined session keeps measuring cleanly; once
    // the faulted record leaves the sliding window the state recovers.
    for _ in 0..20 {
        driver.step(|n| Observation::of(response(n)));
    }
    let report = driver.health();
    assert_eq!(report.state.as_str(), "ok", "signals: {:?}", report.signals);
    assert_eq!(report.signals.faults_window, 0, "fault aged out of the window");
    assert_eq!(report.transitions, 2, "exactly Ok → Warn → Ok");
}
