//! Plain GP-UCB (paper Section IV-D, first variant): constant trend,
//! hyper-parameters estimated by maximum likelihood, no problem structure.

use crate::{
    ActionDiagnostic, ActionSpace, DecisionTrace, History, PosteriorPoint, PosteriorSnapshot,
    Strategy, SurrogateOptions, SurrogatePrior,
};
use adaphet_gp::{
    estimate_noise_from_replicates, fit_profile_likelihood_with_noise, ucb_argmin, GpModel, Kernel,
    MleSearch, PairwiseDistances, Trend, UcbSchedule,
};
use adaphet_linalg::Mat;
use adaphet_store::GpHyper;

/// Configuration of [`GpUcb`]: just the shared [`SurrogateOptions`]
/// (warm-start prior, noise floor, MLE grid) — the β_t schedule stays a
/// public field as before. The [`Default`] reproduces the strategy's
/// historical behaviour bit-exactly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GpUcbOptions {
    /// Shared surrogate knobs.
    pub surrogate: SurrogateOptions,
}

/// GP-UCB over node counts.
///
/// Parsimonious initialization (paper): iteration 1 plays all `N` nodes
/// (the application default), iteration 2 the leftmost point, iterations
/// 3–4 the middle of the two (twice — replicates feed the noise
/// estimator). From iteration 5 on, the GP surrogate is refitted each
/// step and the action minimizing `μ(x) − √β_t σ(x)` is played.
///
/// A warm-started instance (see [`Strategy::warm_start`]) folds the
/// prior pseudo-observations into every fit with an inflated nugget,
/// centers the MLE θ grid on the donated length scale, and compresses
/// the initialization to the single all-nodes baseline play.
#[derive(Debug, Clone)]
pub struct GpUcb {
    space: ActionSpace,
    /// β_t schedule.
    pub schedule: UcbSchedule,
    /// Surrogate knobs (warm-start prior, noise floor, MLE grid).
    pub options: GpUcbOptions,
    /// Pairwise distances of the history, grown by appending across
    /// `propose` calls and shared by every (θ, α) candidate of the MLE
    /// grid — the surrogate state this baseline can keep warm exactly.
    dists: PairwiseDistances,
}

impl GpUcb {
    /// Strategy over the given space (LP information is ignored — that is
    /// the point of this baseline).
    pub fn new(space: &ActionSpace) -> Self {
        Self::with_options(space, GpUcbOptions::default())
    }

    /// Strategy with explicit [`GpUcbOptions`].
    pub fn with_options(space: &ActionSpace, options: GpUcbOptions) -> Self {
        GpUcb {
            space: space.clone(),
            schedule: UcbSchedule::default(),
            options,
            dists: PairwiseDistances::new(),
        }
    }

    /// Prior pseudo-observations inside the live space, if warm-started.
    fn prior_obs(&self, space: &ActionSpace) -> Option<(Vec<(usize, f64)>, f64)> {
        let prior = self.options.surrogate.active_prior()?;
        let obs = prior.observations_in(space);
        if obs.is_empty() {
            None
        } else {
            Some((obs, prior.noise_inflation))
        }
    }

    fn mle_inputs(
        &self,
        space: &ActionSpace,
        hist: &History,
    ) -> (Vec<f64>, Vec<f64>, f64, MleSearch, Vec<f64>) {
        let sopt = &self.options.surrogate;
        let prior = self.prior_obs(space);
        let (records, mults): (Vec<(usize, f64)>, Vec<f64>) = match &prior {
            None => (hist.records().to_vec(), Vec::new()),
            Some((obs, inflation)) => {
                let mut recs = obs.clone();
                recs.extend_from_slice(hist.records());
                let mut m = vec![*inflation; obs.len()];
                m.extend(std::iter::repeat_n(1.0, hist.len()));
                (recs, m)
            }
        };
        let xs: Vec<f64> = records.iter().map(|&(a, _)| a as f64).collect();
        let ys: Vec<f64> = records.iter().map(|&(_, y)| y).collect();
        let var = adaphet_linalg::sample_variance(&ys);
        let noise = estimate_noise_from_replicates(&xs, &ys)
            .unwrap_or(1e-4 * var.max(1e-12))
            .max(sopt.noise_floor);
        // A donated length scale centers the θ grid (the search narrows
        // to [θ/4, 4θ]); fit.rs falls back to the data-span grid for
        // non-finite or non-positive centers.
        let theta_center =
            self.options.surrogate.active_prior().and_then(|p| p.hyper.as_ref()).map(|h| h.theta);
        let search = MleSearch {
            kernel: Kernel::Exponential { theta: 1.0 },
            trend: Trend::constant(),
            alpha_grid: sopt.mle_alpha_grid.clone(),
            theta_points: sopt.mle_theta_points,
            theta_center,
        };
        (xs, ys, noise, search, mults)
    }

    /// Whether the fit has enough combined (prior + live) data.
    fn fittable(&self, space: &ActionSpace, hist: &History) -> bool {
        let prior_n = self.prior_obs(space).map_or(0, |(obs, _)| obs.len());
        hist.len() + prior_n >= 2 && !hist.is_empty()
    }

    /// Fit the surrogate on the full history (public for the step-by-step
    /// visualization of the paper's Fig. 4).
    pub fn fit(&self, hist: &History) -> Option<GpModel> {
        self.fit_in(&self.space, hist)
    }

    fn fit_in(&self, space: &ActionSpace, hist: &History) -> Option<GpModel> {
        if !self.fittable(space, hist) {
            return None;
        }
        let (xs, ys, noise, search, mults) = self.mle_inputs(space, hist);
        let n = xs.len();
        let dists = Mat::from_fn(n, n, |i, j| (xs[i] - xs[j]).abs());
        fit_profile_likelihood_with_noise(&search, &xs, &ys, noise, &dists, &mults).ok()
    }

    /// [`GpUcb::fit`] reusing the persistent distance matrix (appended in
    /// O(n) per new observation, rebuilt only when the history was
    /// rewritten). Bitwise identical to the scratch fit.
    fn fit_cached(&mut self, space: &ActionSpace, hist: &History) -> Option<GpModel> {
        if !self.fittable(space, hist) {
            return None;
        }
        let (xs, ys, noise, search, mults) = self.mle_inputs(space, hist);
        self.dists.sync(&xs);
        fit_profile_likelihood_with_noise(&search, &xs, &ys, noise, self.dists.matrix(), &mults)
            .ok()
    }

    /// The β_t used at iteration `t` (for visualization).
    pub fn beta(&self, t: usize) -> f64 {
        self.schedule.beta(t.max(1), self.space.max_nodes)
    }
}

impl Strategy for GpUcb {
    fn name(&self) -> &'static str {
        "GP-UCB"
    }

    fn propose(&mut self, space: &ActionSpace, hist: &History) -> usize {
        // Candidates, the init sequence and β_t all follow the *live*
        // space, so a shrunken platform is respected immediately.
        let n = space.max_nodes;
        if hist.is_empty() {
            // Always measure the all-nodes baseline live — even warm:
            // the prior comes from another run (possibly another
            // platform) and cannot substitute for it.
            return n;
        }
        match self.prior_obs(space) {
            None => {
                // Cold parsimonious initialization, unchanged.
                match hist.len() {
                    1 => return 1.min(n),
                    2 | 3 => return n.div_ceil(2).max(1),
                    _ => {}
                }
            }
            Some((obs, _)) => {
                // Warm: one exploit probe at the donor's best action,
                // then the GP takes over — the prior supplies the data
                // the remaining init plays would have gathered.
                if hist.len() == 1 {
                    if let Some(a) = crate::warm::prior_best_action(&obs, &space.actions()) {
                        return a;
                    }
                }
            }
        }
        let t = hist.len();
        let candidates: Vec<f64> = space.actions().iter().map(|&a| a as f64).collect();
        match self.fit_cached(space, hist) {
            Some(model) => {
                let beta = self.schedule.beta(t.max(1), n);
                ucb_argmin(&model, &candidates, beta)
                    .map(|x| x.round() as usize)
                    .unwrap_or(n)
                    .clamp(1, n)
            }
            None => hist.best_action().unwrap_or(n).min(n),
        }
    }

    fn explain(&self, space: &ActionSpace, hist: &History) -> DecisionTrace {
        let t = hist.len();
        let warm = self.prior_obs(space).is_some();
        if t < if warm { 2 } else { 4 } {
            return DecisionTrace::minimal("init");
        }
        match self.fit_in(space, hist) {
            Some(model) => {
                let beta = self.schedule.beta(t.max(1), space.max_nodes);
                let diagnostics = space
                    .actions()
                    .into_iter()
                    .map(|a| {
                        let p = model.predict(a as f64);
                        let sd = p.sd();
                        ActionDiagnostic {
                            action: a,
                            mean: p.mean,
                            sd,
                            acquisition: p.mean - beta.sqrt() * sd,
                        }
                    })
                    .collect();
                DecisionTrace { diagnostics, excluded: Vec::new(), note: "gp-lcb".into() }
            }
            None => DecisionTrace::minimal("fallback-best-mean"),
        }
    }

    fn posterior_snapshot(&self, space: &ActionSpace, hist: &History) -> Option<PosteriorSnapshot> {
        // No LP curve and no bound mechanism in this baseline: every
        // action is a candidate and `lp_bound` stays empty.
        let model = self.fit_in(space, hist)?;
        let points = space
            .actions()
            .into_iter()
            .map(|a| {
                let p = model.predict(a as f64);
                PosteriorPoint {
                    action: a,
                    mean: p.mean,
                    sd: p.sd(),
                    lp_bound: None,
                    excluded: false,
                }
            })
            .collect();
        Some(PosteriorSnapshot { points })
    }

    fn warm_start(&mut self, prior: SurrogatePrior) -> bool {
        // The persistent distance matrix indexed live history only; a
        // prior prepends rows, so it must be rebuilt from scratch.
        self.dists = PairwiseDistances::new();
        self.options.surrogate.prior = Some(prior);
        true
    }

    fn surrogate_hyper(&self, space: &ActionSpace, hist: &History) -> Option<GpHyper> {
        let model = self.fit_in(space, hist)?;
        let cfg = model.config();
        Some(GpHyper {
            kernel_family: cfg.kernel.family().to_string(),
            theta: cfg.kernel.theta(),
            process_var: cfg.process_var,
            noise_var: cfg.noise_var,
            trend_coefficients: model.trend_coefficients().to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(
        strat: &mut dyn Strategy,
        space: &ActionSpace,
        f: impl Fn(usize) -> f64,
        iters: usize,
    ) -> History {
        let mut h = History::new();
        for _ in 0..iters {
            let a = strat.propose(space, &h);
            assert!(a >= 1);
            h.record(a, f(a));
        }
        h
    }

    #[test]
    fn initialization_sequence_matches_paper() {
        let space = ActionSpace::unstructured(14);
        let mut g = GpUcb::new(&space);
        let h = drive(&mut g, &space, |n| n as f64, 4);
        let seq: Vec<usize> = h.records().iter().map(|r| r.0).collect();
        assert_eq!(seq, vec![14, 1, 7, 7]);
    }

    #[test]
    fn finds_minimum_of_smooth_convex_curve() {
        // The paper's simple scenario (their Fig. 4A): a small smooth
        // space — GP-UCB should concentrate near the optimum.
        let space = ActionSpace::unstructured(14);
        let mut g = GpUcb::new(&space);
        let f = |n: usize| 60.0 / n as f64 + 1.2 * n as f64; // min near 7
        let h = drive(&mut g, &space, f, 40);
        let late: Vec<usize> = h.records()[25..].iter().map(|r| r.0).collect();
        let near = late.iter().filter(|&&a| (5..=9).contains(&a)).count();
        assert!(near * 2 > late.len(), "late plays: {late:?}");
    }

    #[test]
    fn does_not_waste_plays_on_clearly_bad_actions() {
        // Paper Fig. 4A observation: some obviously-bad actions are never
        // tried. With a steep curve, the worst distant arms stay unvisited
        // or nearly so.
        let space = ActionSpace::unstructured(14);
        let mut g = GpUcb::new(&space);
        let f = |n: usize| 10.0 + (n as f64 - 6.0).powi(2) * 3.0;
        let h = drive(&mut g, &space, f, 30);
        let wasted = h.count_for(13) + h.count_for(14);
        // 14 is forced at iteration 1; beyond that the far-right should be
        // rarely touched.
        assert!(wasted <= 4, "wasted plays on 13/14: {wasted}");
    }

    #[test]
    fn fit_requires_two_points() {
        let space = ActionSpace::unstructured(5);
        let g = GpUcb::new(&space);
        let mut h = History::new();
        assert!(g.fit(&h).is_none());
        h.record(5, 10.0);
        assert!(g.fit(&h).is_none());
        h.record(1, 20.0);
        assert!(g.fit(&h).is_some());
    }

    #[test]
    fn cached_fit_matches_scratch_fit_bitwise() {
        let space = ActionSpace::unstructured(14);
        let mut g = GpUcb::new(&space);
        let f = |n: usize| 60.0 / n as f64 + 1.2 * n as f64;
        let mut h = History::new();
        for _ in 0..20 {
            let a = g.propose(&space, &h);
            h.record(a, f(a));
            let cached = g.fit_cached(&space, &h);
            let scratch = g.fit(&h);
            match (cached, scratch) {
                (Some(c), Some(s)) => {
                    assert_eq!(c.config(), s.config(), "grid winner differs");
                    assert_eq!(c.log_likelihood(), s.log_likelihood());
                    for q in 1..=14 {
                        assert_eq!(c.predict(q as f64), s.predict(q as f64));
                    }
                }
                (None, None) => {}
                (c, s) => panic!(
                    "cached/scratch fit availability diverged: {:?} vs {:?}",
                    c.is_some(),
                    s.is_some()
                ),
            }
        }
    }

    #[test]
    fn single_node_space_is_trivial() {
        let space = ActionSpace::unstructured(1);
        let mut g = GpUcb::new(&space);
        let h = drive(&mut g, &space, |_| 1.0, 6);
        assert!(h.records().iter().all(|&(a, _)| a == 1));
    }

    fn prior_over(space: &ActionSpace, f: impl Fn(usize) -> f64) -> SurrogatePrior {
        SurrogatePrior {
            observations: space.actions().into_iter().map(|a| (a, f(a))).collect(),
            noise_inflation: crate::PRIOR_NOISE_INFLATION,
            hyper: None,
        }
    }

    #[test]
    fn warm_start_skips_the_cold_initialization_plays() {
        let space = ActionSpace::unstructured(14);
        let f = |n: usize| 60.0 / n as f64 + 1.2 * n as f64; // min near 7
        let mut g = GpUcb::new(&space);
        assert!(g.warm_start(prior_over(&space, f)));
        let h = drive(&mut g, &space, f, 8);
        let seq: Vec<usize> = h.records().iter().map(|r| r.0).collect();
        // Iteration 1 still measures the all-nodes baseline live; after
        // that the GP takes over instead of the 1, mid, mid init plays.
        assert_eq!(seq[0], 14);
        assert_ne!(&seq[1..4], &[1, 7, 7], "init plays must be compressed: {seq:?}");
        // The prior already pins the curve, so the very next plays land
        // near the optimum.
        let near = seq[1..].iter().filter(|&&a| (5..=9).contains(&a)).count();
        assert!(near >= 5, "warm plays should concentrate early: {seq:?}");
    }

    #[test]
    fn warm_runs_are_deterministic_given_the_same_prior() {
        let space = ActionSpace::unstructured(14);
        let f = |n: usize| 60.0 / n as f64 + 1.2 * n as f64;
        let run = || {
            let mut g = GpUcb::new(&space);
            assert!(g.warm_start(prior_over(&space, f)));
            drive(&mut g, &space, f, 10).records().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn out_of_space_prior_points_never_leave_the_live_range() {
        // A prior recorded on a 14-node platform, replayed on a platform
        // that shrank to 6 nodes: proposals must stay in 1..=6.
        let big = ActionSpace::unstructured(14);
        let small = ActionSpace::unstructured(6);
        let f = |n: usize| 60.0 / n as f64 + 1.2 * n as f64;
        let mut g = GpUcb::new(&small);
        assert!(g.warm_start(prior_over(&big, f)));
        let h = drive(&mut g, &small, f, 10);
        assert!(h.records().iter().all(|&(a, _)| (1..=6).contains(&a)), "{:?}", h.records());
    }

    #[test]
    fn empty_prior_is_bitwise_a_cold_start() {
        let space = ActionSpace::unstructured(14);
        let f = |n: usize| 60.0 / n as f64 + 1.2 * n as f64;
        let mut cold = GpUcb::new(&space);
        let mut warm = GpUcb::new(&space);
        assert!(warm.warm_start(SurrogatePrior {
            observations: vec![],
            noise_inflation: crate::PRIOR_NOISE_INFLATION,
            hyper: None,
        }));
        let a = drive(&mut cold, &space, f, 12).records().to_vec();
        let b = drive(&mut warm, &space, f, 12).records().to_vec();
        assert_eq!(a, b);
    }

    #[test]
    fn surrogate_hyper_reports_the_fitted_configuration() {
        let space = ActionSpace::unstructured(14);
        let mut g = GpUcb::new(&space);
        let f = |n: usize| 60.0 / n as f64 + 1.2 * n as f64;
        let h = drive(&mut g, &space, f, 10);
        let hyper = g.surrogate_hyper(&space, &h).expect("enough data to fit");
        assert_eq!(hyper.kernel_family, "exponential");
        assert!(hyper.theta > 0.0);
        assert!(hyper.process_var > 0.0);
        assert_eq!(hyper.trend_coefficients.len(), 1, "constant trend");
    }
}
