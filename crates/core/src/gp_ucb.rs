//! Plain GP-UCB (paper Section IV-D, first variant): constant trend,
//! hyper-parameters estimated by maximum likelihood, no problem structure.

use crate::{
    ActionDiagnostic, ActionSpace, DecisionTrace, History, PosteriorPoint, PosteriorSnapshot,
    Strategy,
};
use adaphet_gp::{
    estimate_noise_from_replicates, fit_profile_likelihood, fit_profile_likelihood_with_distances,
    ucb_argmin, GpModel, Kernel, MleSearch, PairwiseDistances, Trend, UcbSchedule,
};

/// GP-UCB over node counts.
///
/// Parsimonious initialization (paper): iteration 1 plays all `N` nodes
/// (the application default), iteration 2 the leftmost point, iterations
/// 3–4 the middle of the two (twice — replicates feed the noise
/// estimator). From iteration 5 on, the GP surrogate is refitted each
/// step and the action minimizing `μ(x) − √β_t σ(x)` is played.
#[derive(Debug, Clone)]
pub struct GpUcb {
    space: ActionSpace,
    /// β_t schedule.
    pub schedule: UcbSchedule,
    /// Pairwise distances of the history, grown by appending across
    /// `propose` calls and shared by every (θ, α) candidate of the MLE
    /// grid — the surrogate state this baseline can keep warm exactly.
    dists: PairwiseDistances,
}

impl GpUcb {
    /// Strategy over the given space (LP information is ignored — that is
    /// the point of this baseline).
    pub fn new(space: &ActionSpace) -> Self {
        GpUcb {
            space: space.clone(),
            schedule: UcbSchedule::default(),
            dists: PairwiseDistances::new(),
        }
    }

    fn mle_inputs(hist: &History) -> (Vec<f64>, Vec<f64>, f64, MleSearch) {
        let xs: Vec<f64> = hist.records().iter().map(|&(a, _)| a as f64).collect();
        let ys: Vec<f64> = hist.records().iter().map(|&(_, y)| y).collect();
        let var = adaphet_linalg::sample_variance(&ys);
        let noise =
            estimate_noise_from_replicates(&xs, &ys).unwrap_or(1e-4 * var.max(1e-12)).max(1e-9);
        let search = MleSearch {
            kernel: Kernel::Exponential { theta: 1.0 },
            trend: Trend::constant(),
            ..Default::default()
        };
        (xs, ys, noise, search)
    }

    /// Fit the surrogate on the full history (public for the step-by-step
    /// visualization of the paper's Fig. 4).
    pub fn fit(&self, hist: &History) -> Option<GpModel> {
        if hist.len() < 2 {
            return None;
        }
        let (xs, ys, noise, search) = Self::mle_inputs(hist);
        fit_profile_likelihood(&search, &xs, &ys, noise).ok()
    }

    /// [`GpUcb::fit`] reusing the persistent distance matrix (appended in
    /// O(n) per new observation, rebuilt only when the history was
    /// rewritten). Bitwise identical to the scratch fit.
    fn fit_cached(&mut self, hist: &History) -> Option<GpModel> {
        if hist.len() < 2 {
            return None;
        }
        let (xs, ys, noise, search) = Self::mle_inputs(hist);
        self.dists.sync(&xs);
        fit_profile_likelihood_with_distances(&search, &xs, &ys, noise, self.dists.matrix()).ok()
    }

    /// The β_t used at iteration `t` (for visualization).
    pub fn beta(&self, t: usize) -> f64 {
        self.schedule.beta(t.max(1), self.space.max_nodes)
    }
}

impl Strategy for GpUcb {
    fn name(&self) -> &'static str {
        "GP-UCB"
    }

    fn propose(&mut self, space: &ActionSpace, hist: &History) -> usize {
        // Candidates, the init sequence and β_t all follow the *live*
        // space, so a shrunken platform is respected immediately.
        let n = space.max_nodes;
        match hist.len() {
            0 => n,
            1 => 1.min(n),
            2 | 3 => n.div_ceil(2).max(1),
            t => {
                let candidates: Vec<f64> = space.actions().iter().map(|&a| a as f64).collect();
                match self.fit_cached(hist) {
                    Some(model) => {
                        let beta = self.schedule.beta(t.max(1), n);
                        ucb_argmin(&model, &candidates, beta)
                            .map(|x| x.round() as usize)
                            .unwrap_or(n)
                            .clamp(1, n)
                    }
                    None => hist.best_action().unwrap_or(n).min(n),
                }
            }
        }
    }

    fn explain(&self, space: &ActionSpace, hist: &History) -> DecisionTrace {
        let t = hist.len();
        if t < 4 {
            return DecisionTrace::minimal("init");
        }
        match self.fit(hist) {
            Some(model) => {
                let beta = self.schedule.beta(t.max(1), space.max_nodes);
                let diagnostics = space
                    .actions()
                    .into_iter()
                    .map(|a| {
                        let p = model.predict(a as f64);
                        let sd = p.sd();
                        ActionDiagnostic {
                            action: a,
                            mean: p.mean,
                            sd,
                            acquisition: p.mean - beta.sqrt() * sd,
                        }
                    })
                    .collect();
                DecisionTrace { diagnostics, excluded: Vec::new(), note: "gp-lcb".into() }
            }
            None => DecisionTrace::minimal("fallback-best-mean"),
        }
    }

    fn posterior_snapshot(&self, space: &ActionSpace, hist: &History) -> Option<PosteriorSnapshot> {
        // No LP curve and no bound mechanism in this baseline: every
        // action is a candidate and `lp_bound` stays empty.
        let model = self.fit(hist)?;
        let points = space
            .actions()
            .into_iter()
            .map(|a| {
                let p = model.predict(a as f64);
                PosteriorPoint {
                    action: a,
                    mean: p.mean,
                    sd: p.sd(),
                    lp_bound: None,
                    excluded: false,
                }
            })
            .collect();
        Some(PosteriorSnapshot { points })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(
        strat: &mut dyn Strategy,
        space: &ActionSpace,
        f: impl Fn(usize) -> f64,
        iters: usize,
    ) -> History {
        let mut h = History::new();
        for _ in 0..iters {
            let a = strat.propose(space, &h);
            assert!(a >= 1);
            h.record(a, f(a));
        }
        h
    }

    #[test]
    fn initialization_sequence_matches_paper() {
        let space = ActionSpace::unstructured(14);
        let mut g = GpUcb::new(&space);
        let h = drive(&mut g, &space, |n| n as f64, 4);
        let seq: Vec<usize> = h.records().iter().map(|r| r.0).collect();
        assert_eq!(seq, vec![14, 1, 7, 7]);
    }

    #[test]
    fn finds_minimum_of_smooth_convex_curve() {
        // The paper's simple scenario (their Fig. 4A): a small smooth
        // space — GP-UCB should concentrate near the optimum.
        let space = ActionSpace::unstructured(14);
        let mut g = GpUcb::new(&space);
        let f = |n: usize| 60.0 / n as f64 + 1.2 * n as f64; // min near 7
        let h = drive(&mut g, &space, f, 40);
        let late: Vec<usize> = h.records()[25..].iter().map(|r| r.0).collect();
        let near = late.iter().filter(|&&a| (5..=9).contains(&a)).count();
        assert!(near * 2 > late.len(), "late plays: {late:?}");
    }

    #[test]
    fn does_not_waste_plays_on_clearly_bad_actions() {
        // Paper Fig. 4A observation: some obviously-bad actions are never
        // tried. With a steep curve, the worst distant arms stay unvisited
        // or nearly so.
        let space = ActionSpace::unstructured(14);
        let mut g = GpUcb::new(&space);
        let f = |n: usize| 10.0 + (n as f64 - 6.0).powi(2) * 3.0;
        let h = drive(&mut g, &space, f, 30);
        let wasted = h.count_for(13) + h.count_for(14);
        // 14 is forced at iteration 1; beyond that the far-right should be
        // rarely touched.
        assert!(wasted <= 4, "wasted plays on 13/14: {wasted}");
    }

    #[test]
    fn fit_requires_two_points() {
        let space = ActionSpace::unstructured(5);
        let g = GpUcb::new(&space);
        let mut h = History::new();
        assert!(g.fit(&h).is_none());
        h.record(5, 10.0);
        assert!(g.fit(&h).is_none());
        h.record(1, 20.0);
        assert!(g.fit(&h).is_some());
    }

    #[test]
    fn cached_fit_matches_scratch_fit_bitwise() {
        let space = ActionSpace::unstructured(14);
        let mut g = GpUcb::new(&space);
        let f = |n: usize| 60.0 / n as f64 + 1.2 * n as f64;
        let mut h = History::new();
        for _ in 0..20 {
            let a = g.propose(&space, &h);
            h.record(a, f(a));
            let cached = g.fit_cached(&h);
            let scratch = g.fit(&h);
            match (cached, scratch) {
                (Some(c), Some(s)) => {
                    assert_eq!(c.config(), s.config(), "grid winner differs");
                    assert_eq!(c.log_likelihood(), s.log_likelihood());
                    for q in 1..=14 {
                        assert_eq!(c.predict(q as f64), s.predict(q as f64));
                    }
                }
                (None, None) => {}
                (c, s) => panic!(
                    "cached/scratch fit availability diverged: {:?} vs {:?}",
                    c.is_some(),
                    s.is_some()
                ),
            }
        }
    }

    #[test]
    fn single_node_space_is_trivial() {
        let space = ActionSpace::unstructured(1);
        let mut g = GpUcb::new(&space);
        let h = drive(&mut g, &space, |_| 1.0, 6);
        assert!(h.records().iter().all(|&(a, _)| a == 1));
    }
}
