//! Cross-session warm-starting: the [`WarmStart`] request, the
//! [`SurrogatePrior`] the GP strategies fold in, and the shared
//! [`SurrogateOptions`] knobs.
//!
//! # Transfer-learning model
//!
//! A finished session leaves behind a
//! [`SurrogateSnapshot`](adaphet_store::SurrogateSnapshot): its `(action,
//! duration)` history, the action space it was fitted over, and the fitted
//! GP hyper-parameters. A later session folds that snapshot in as a
//! **soft prior**:
//!
//! * every snapshot observation becomes a *pseudo-observation* whose
//!   nugget is inflated by [`SurrogatePrior::noise_inflation`] — the GP
//!   diagonal gets `σ²_N · κ` instead of `σ²_N` for prior rows, so prior
//!   data shapes the posterior mean where the new session has no data yet
//!   but is overruled quickly by live measurements (a live replicate at
//!   the same action carries κ× the precision of the prior point);
//! * the snapshot's fitted correlation length seeds the MLE grid
//!   (`theta_center` of [`adaphet_gp::MleSearch`]), narrowing the search
//!   to `[θ/4, 4θ]` — the paper's "with little data ML is overconfident"
//!   failure mode is tempered by starting from a length scale that was
//!   estimated with *much* data.
//!
//! Exact warm starts ([`WarmStart::FromSnapshot`]) refuse snapshots whose
//! action space disagrees with the live one (a snapshot taken before a
//! fault shrank the platform would otherwise re-introduce excluded
//! actions); store-mediated transfer ([`WarmStart::FromStore`]) projects
//! cross-platform snapshots onto the live space first, so projected
//! priors can never propose out-of-space actions.

use crate::ActionSpace;
use adaphet_store::{GpHyper, GroupSig, PlatformSignature, SurrogateSnapshot};

/// How a session's surrogate starts.
///
/// Consumed by
/// [`TunerDriverBuilder::warm_start`](crate::TunerDriverBuilder::warm_start)
/// (and, over the wire, by the service's `SessionSpec`). The default is
/// [`WarmStart::Cold`] — bit-identical to the behaviour before this type
/// existed.
#[derive(Debug, Clone, Default)]
pub enum WarmStart {
    /// No prior: the paper's parsimonious initialization from scratch.
    #[default]
    Cold,
    /// Fold in this exact snapshot. The builder refuses
    /// ([`DriverBuildError::WarmStart`](crate::DriverBuildError)) when the
    /// snapshot's action space differs from the live one.
    FromSnapshot(SurrogateSnapshot),
    /// Look up the nearest-signature snapshot in the builder's
    /// [`SurrogateStore`](adaphet_store::SurrogateStore); fall back to a
    /// cold start when nothing scores at least `min_similarity` (or no
    /// store was attached). Cross-platform matches are projected onto the
    /// live space before folding.
    FromStore {
        /// Minimum [`PlatformSignature::similarity`] score (in `[0, 1]`)
        /// a stored snapshot must reach to be used.
        min_similarity: f64,
    },
}

/// Default nugget inflation κ for prior pseudo-observations: a prior
/// point carries 1/16 the precision of a live measurement, so roughly
/// four live replicates at an action outweigh any prior there.
pub const PRIOR_NOISE_INFLATION: f64 = 16.0;

/// A resolved prior, as handed to [`Strategy::warm_start`](crate::Strategy::warm_start).
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogatePrior {
    /// Pseudo-observations `(action, duration)` in the live space.
    pub observations: Vec<(usize, f64)>,
    /// Nugget multiplier κ ≥ 1 applied to every pseudo-observation.
    pub noise_inflation: f64,
    /// Hyper-parameters fitted by the originating session, when it had a
    /// model (seeds the MLE grid center for GP-UCB).
    pub hyper: Option<GpHyper>,
}

impl SurrogatePrior {
    /// The prior encoded by a snapshot, with the default inflation.
    pub fn from_snapshot(snap: &SurrogateSnapshot) -> SurrogatePrior {
        SurrogatePrior {
            observations: snap.observations.clone(),
            noise_inflation: PRIOR_NOISE_INFLATION,
            hyper: snap.hyper.clone(),
        }
    }

    /// Number of pseudo-observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether the prior carries no pseudo-observations (strategies treat
    /// an empty prior exactly like a cold start).
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The pseudo-observations that fall inside the live `space` (a
    /// defensive filter for priors injected directly, bypassing the
    /// builder's space check).
    pub fn observations_in(&self, space: &ActionSpace) -> Vec<(usize, f64)> {
        self.observations.iter().copied().filter(|&(a, _)| a >= 1 && a <= space.max_nodes).collect()
    }
}

/// GP-surrogate knobs shared by [`GpDiscOptions`](crate::GpDiscOptions)
/// and [`GpUcbOptions`](crate::GpUcbOptions).
///
/// The [`Default`] reproduces the constants both strategies used before
/// this struct existed, bit-exactly: noise floor `1e-9`, a 9-point θ
/// grid, α multipliers `[0.25, 1, 4]`, no prior. (GP-discontinuous fixes
/// θ = 1 and never runs the MLE search, so only the prior and the noise
/// floor apply there.)
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateOptions {
    /// Prior pseudo-observations folded into every fit, if warm-started.
    pub prior: Option<SurrogatePrior>,
    /// Lower clamp on the process/noise variances (keeps K positive
    /// definite with degenerate data).
    pub noise_floor: f64,
    /// Number of θ grid points of the profile-likelihood search.
    pub mle_theta_points: usize,
    /// Candidate multipliers of the sample variance used for α in the
    /// profile-likelihood search.
    pub mle_alpha_grid: Vec<f64>,
}

impl Default for SurrogateOptions {
    fn default() -> Self {
        SurrogateOptions {
            prior: None,
            noise_floor: 1e-9,
            mle_theta_points: 9,
            mle_alpha_grid: vec![0.25, 1.0, 4.0],
        }
    }
}

impl SurrogateOptions {
    /// The prior, if present *and* non-empty.
    pub fn active_prior(&self) -> Option<&SurrogatePrior> {
        self.prior.as_ref().filter(|p| !p.is_empty())
    }
}

/// The donor's best action among `cands`: the candidate with the lowest
/// mean pseudo-observed duration (ties and equal means resolve to the
/// smallest action; `None` when no candidate was observed by the prior).
///
/// Warm-started strategies play this once, right after the live
/// all-nodes baseline, before the GP takes over — the donor session
/// already learned where to run fast, and one exploit probe both
/// harvests that knowledge immediately and anchors the surrogate with a
/// full-precision live measurement at the most promising action.
pub(crate) fn prior_best_action(obs: &[(usize, f64)], cands: &[usize]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for &c in cands {
        let (mut sum, mut k) = (0.0, 0usize);
        for &(a, y) in obs {
            if a == c {
                sum += y;
                k += 1;
            }
        }
        if k == 0 {
            continue;
        }
        let mean = sum / k as f64;
        if best.is_none_or(|(_, b)| mean < b) {
            best = Some((c, mean));
        }
    }
    best.map(|(a, _)| a)
}

/// A fallback [`PlatformSignature`] derived from an action space alone:
/// group node counts from the space's partition, speed/bandwidth unknown
/// (0, which [`PlatformSignature::similarity`] treats as neutral), and
/// workload 0. Used when a store is attached but no explicit signature
/// was configured — exact re-runs of the same space still round-trip.
pub fn signature_from_space(space: &ActionSpace) -> PlatformSignature {
    PlatformSignature::new(
        0,
        space
            .groups
            .iter()
            .map(|&(lo, hi)| GroupSig { count: (hi - lo + 1) as u32, speed: 0.0, bw: 0.0 })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_reproduce_the_historical_constants() {
        let o = SurrogateOptions::default();
        assert!(o.prior.is_none());
        assert_eq!(o.noise_floor, 1e-9);
        assert_eq!(o.mle_theta_points, 9);
        assert_eq!(o.mle_alpha_grid, vec![0.25, 1.0, 4.0]);
    }

    #[test]
    fn empty_prior_is_inactive() {
        let mut o = SurrogateOptions {
            prior: Some(SurrogatePrior {
                observations: vec![],
                noise_inflation: PRIOR_NOISE_INFLATION,
                hyper: None,
            }),
            ..SurrogateOptions::default()
        };
        assert!(o.active_prior().is_none(), "an empty prior must behave like a cold start");
        o.prior.as_mut().unwrap().observations.push((3, 1.5));
        assert_eq!(o.active_prior().unwrap().len(), 1);
    }

    #[test]
    fn signature_from_space_mirrors_the_group_partition() {
        let space = ActionSpace::new(10, vec![(1, 4), (5, 10)], None);
        let sig = signature_from_space(&space);
        assert_eq!(sig.workload, 0);
        assert_eq!(sig.groups.len(), 2);
        assert_eq!(sig.groups[0].count, 4);
        assert_eq!(sig.groups[1].count, 6);
        // Same space twice → identical key (store round-trips).
        assert_eq!(sig.key(), signature_from_space(&space).key());
    }

    #[test]
    fn prior_best_action_exploits_the_donor_optimum() {
        let obs = vec![(2, 9.0), (5, 3.0), (5, 5.0), (8, 4.0), (12, 1.0)];
        // Mean at 5 is 4.0, equal to 8; the smaller action wins the tie.
        assert_eq!(prior_best_action(&obs, &[2, 5, 8]), Some(5));
        // The donor optimum (12) is outside the candidate set — e.g.
        // excluded by the live bound mechanism — and must not leak out.
        assert_eq!(prior_best_action(&obs, &[2, 8]), Some(8));
        assert_eq!(prior_best_action(&obs, &[3, 4]), None, "no candidate was observed");
        assert_eq!(prior_best_action(&[], &[1, 2]), None);
    }

    #[test]
    fn out_of_space_pseudo_observations_are_filtered() {
        let prior = SurrogatePrior {
            observations: vec![(1, 5.0), (8, 2.0), (12, 1.5)],
            noise_inflation: PRIOR_NOISE_INFLATION,
            hyper: None,
        };
        let space = ActionSpace::unstructured(8);
        let kept = prior.observations_in(&space);
        assert_eq!(kept, vec![(1, 5.0), (8, 2.0)]);
    }
}
