//! Brent's derivative-free 1D minimization (paper Section IV-B), adapted
//! to the online discrete setting.
//!
//! The classic combination of golden-section search and successive
//! parabolic interpolation (as in R's `optim(method = "Brent")`), run as a
//! resumable state machine: each [`Strategy::propose`] returns the next
//! evaluation point (rounded to a node count), and the observed iteration
//! duration is taken from the history on the following call. After
//! convergence the best point is exploited for the remaining iterations.
//!
//! As the paper notes, Brent is neither resilient to noise nor aware of
//! discontinuities: on plateaus or multi-modal curves it settles into
//! local minima (their scenarios (k), (n), (o)).

use crate::{ActionSpace, History, Strategy};

const CGOLD: f64 = 0.381_966_011_250_105;
const ZEPS: f64 = 1e-10;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Stage {
    NeedInit,
    Running,
    Done,
}

/// Resumable Brent minimizer over `[1, N]`.
#[derive(Debug, Clone)]
pub struct BrentSearch {
    n: usize,
    a: f64,
    b: f64,
    x: f64,
    w: f64,
    v: f64,
    fx: f64,
    fw: f64,
    fv: f64,
    d: f64,
    e: f64,
    tol: f64,
    stage: Stage,
    /// The continuous point we asked to be evaluated.
    awaiting: Option<f64>,
    iters: usize,
    max_iters: usize,
}

impl BrentSearch {
    /// Search `[1, space.max_nodes]` with a relative tolerance suited to
    /// integer actions.
    pub fn new(space: &ActionSpace) -> Self {
        let n = space.max_nodes;
        let a = 1.0;
        let b = n as f64;
        let x = a + CGOLD * (b - a);
        BrentSearch {
            n,
            a,
            b,
            x,
            w: x,
            v: x,
            fx: 0.0,
            fw: 0.0,
            fv: 0.0,
            d: 0.0,
            e: 0.0,
            tol: 0.3, // below one node: integer resolution reached
            stage: Stage::NeedInit,
            awaiting: None,
            iters: 0,
            max_iters: 100,
        }
    }

    fn clamp_action(&self, u: f64) -> usize {
        (u.round() as i64).clamp(1, self.n as i64) as usize
    }

    /// One iteration of the Brent loop up to the next function query;
    /// returns `None` when converged.
    fn next_query(&mut self) -> Option<f64> {
        self.iters += 1;
        if self.iters > self.max_iters {
            return None;
        }
        let mid = 0.5 * (self.a + self.b);
        let tol1 = self.tol * self.x.abs() + ZEPS;
        let tol2 = 2.0 * tol1;
        if (self.x - mid).abs() <= tol2 - 0.5 * (self.b - self.a) {
            return None;
        }
        let mut use_golden = true;
        if self.e.abs() > tol1 {
            // Parabolic fit through (x, fx), (w, fw), (v, fv).
            let r = (self.x - self.w) * (self.fx - self.fv);
            let mut q = (self.x - self.v) * (self.fx - self.fw);
            let mut p = (self.x - self.v) * q - (self.x - self.w) * r;
            q = 2.0 * (q - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let etemp = self.e;
            self.e = self.d;
            if p.abs() < (0.5 * q * etemp).abs()
                && p > q * (self.a - self.x)
                && p < q * (self.b - self.x)
            {
                // Acceptable parabolic step.
                self.d = p / q;
                let u = self.x + self.d;
                if u - self.a < tol2 || self.b - u < tol2 {
                    self.d = tol1.copysign(mid - self.x);
                }
                use_golden = false;
            }
        }
        if use_golden {
            self.e = if self.x >= mid { self.a - self.x } else { self.b - self.x };
            self.d = CGOLD * self.e;
        }
        let u = if self.d.abs() >= tol1 { self.x + self.d } else { self.x + tol1.copysign(self.d) };
        Some(u)
    }

    fn absorb(&mut self, u: f64, fu: f64) {
        if fu <= self.fx {
            if u >= self.x {
                self.a = self.x;
            } else {
                self.b = self.x;
            }
            self.v = self.w;
            self.fv = self.fw;
            self.w = self.x;
            self.fw = self.fx;
            self.x = u;
            self.fx = fu;
        } else {
            if u < self.x {
                self.a = u;
            } else {
                self.b = u;
            }
            if fu <= self.fw || self.w == self.x {
                self.v = self.w;
                self.fv = self.fw;
                self.w = u;
                self.fw = fu;
            } else if fu <= self.fv || self.v == self.x || self.v == self.w {
                self.v = u;
                self.fv = fu;
            }
        }
    }
}

impl Strategy for BrentSearch {
    fn name(&self) -> &'static str {
        "Brent"
    }

    fn propose(&mut self, space: &ActionSpace, hist: &History) -> usize {
        // Node loss: shrink the bracket's ceiling so every rounded query
        // (and the converged exploit point) lands on a surviving node.
        if self.n > space.max_nodes {
            self.n = space.max_nodes;
            let b = self.n as f64;
            self.b = self.b.min(b);
            self.a = self.a.min(b);
            self.x = self.x.min(b);
            self.w = self.w.min(b);
            self.v = self.v.min(b);
        }
        if let Some(u) = self.awaiting.take() {
            // Quarantine may have dropped the probe's record; then the
            // query is simply re-issued by the state machine below.
            if let Some(&(_, y)) = hist.records().last() {
                match self.stage {
                    Stage::NeedInit => {
                        self.fx = y;
                        self.fw = y;
                        self.fv = y;
                        self.stage = Stage::Running;
                    }
                    Stage::Running => self.absorb(u, y),
                    Stage::Done => {}
                }
            }
        }
        match self.stage {
            Stage::NeedInit => {
                self.awaiting = Some(self.x);
                self.clamp_action(self.x)
            }
            Stage::Running => match self.next_query() {
                Some(u) => {
                    self.awaiting = Some(u);
                    self.clamp_action(u)
                }
                None => {
                    self.stage = Stage::Done;
                    self.clamp_action(self.x)
                }
            },
            Stage::Done => self.clamp_action(self.x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(
        strat: &mut dyn Strategy,
        space: &ActionSpace,
        f: impl Fn(usize) -> f64,
        iters: usize,
    ) -> History {
        let mut h = History::new();
        for _ in 0..iters {
            let a = strat.propose(space, &h);
            h.record(a, f(a));
        }
        h
    }

    #[test]
    fn converges_on_smooth_convex_curve() {
        let space = ActionSpace::unstructured(64);
        let mut b = BrentSearch::new(&space);
        let f = |n: usize| 100.0 / n as f64 + 0.5 * n as f64; // min near 14.1
        let h = drive(&mut b, &space, f, 40);
        let last = h.records().last().unwrap().0;
        assert!((12..=17).contains(&last), "converged to {last}");
    }

    #[test]
    fn exploits_after_convergence() {
        let space = ActionSpace::unstructured(32);
        let mut b = BrentSearch::new(&space);
        let f = |n: usize| (n as f64 - 9.0).powi(2);
        let h = drive(&mut b, &space, f, 50);
        let tail: Vec<usize> = h.records()[45..].iter().map(|r| r.0).collect();
        assert!(tail.windows(2).all(|w| w[0] == w[1]), "not settled: {tail:?}");
    }

    #[test]
    fn parsimonious_before_convergence() {
        // Brent should need far fewer distinct evaluations than the space
        // size on a clean curve.
        let space = ActionSpace::unstructured(128);
        let mut b = BrentSearch::new(&space);
        let f = |n: usize| (n as f64 - 60.0).powi(2);
        let h = drive(&mut b, &space, f, 60);
        let distinct: std::collections::BTreeSet<usize> = h.records().iter().map(|r| r.0).collect();
        assert!(distinct.len() < 25, "evaluated {} distinct points", distinct.len());
    }

    #[test]
    fn can_be_trapped_by_plateau_and_local_minimum() {
        // The paper's scenario (n)-style shape: a huge flat plateau on the
        // right and the optimum far left. Brent's bracketing often stays
        // on the plateau side.
        let space = ActionSpace::unstructured(75);
        let mut b = BrentSearch::new(&space);
        let f = |n: usize| {
            if n <= 15 {
                20.0 - n as f64 // decreasing toward 15
            } else {
                30.0 // plateau (all worse than the left valley)
            }
        };
        let h = drive(&mut b, &space, f, 40);
        let last = h.records().last().unwrap().0;
        // Either it found the left valley or it is stuck on the plateau —
        // the point is that it terminates; record which for the paper's
        // qualitative claim (it *can* fail). We only assert termination
        // and in-range behaviour here.
        assert!((1..=75).contains(&last));
        let tail: Vec<usize> = h.records()[35..].iter().map(|r| r.0).collect();
        assert!(tail.windows(2).all(|w| w[0] == w[1]), "did not settle: {tail:?}");
    }

    #[test]
    fn all_proposals_in_range() {
        let space = ActionSpace::unstructured(7);
        let mut b = BrentSearch::new(&space);
        let h = drive(&mut b, &space, |n| n as f64, 30);
        assert!(h.records().iter().all(|&(a, _)| (1..=7).contains(&a)));
    }

    #[test]
    fn two_node_space() {
        let space = ActionSpace::unstructured(2);
        let mut b = BrentSearch::new(&space);
        let h = drive(&mut b, &space, |n| if n == 1 { 1.0 } else { 2.0 }, 10);
        assert!(h.records().iter().all(|&(a, _)| (1..=2).contains(&a)));
    }
}
