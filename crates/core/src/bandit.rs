//! Multi-armed bandit strategies: UCB over all node counts, and the
//! structure-restricted UCB-struct (paper Section IV-C).

use crate::{ActionDiagnostic, ActionSpace, DecisionTrace, History, Strategy};

/// UCB1 (Auer et al.) over a fixed set of arms, minimizing durations.
///
/// Implements Eq. 1 of the paper with the reward `y = −duration`:
/// `x_{t+1} = argmax_x  μ̂(x) + c √(ln t / N_t(x))`, visiting every arm
/// once first. With one arm per node count the exploration is exhaustive —
/// the paper's complaint about plain UCB on large clusters.
#[derive(Debug, Clone)]
pub struct Ucb {
    arms: Vec<usize>,
    /// Exploration constant `c`.
    pub c: f64,
    label: &'static str,
}

impl Ucb {
    /// One arm per node count.
    pub fn new(space: &ActionSpace) -> Self {
        Ucb { arms: space.actions(), c: 1.0, label: "UCB" }
    }

    /// Arbitrary arm set (used by [`UcbStruct`]).
    pub fn with_arms(arms: Vec<usize>, label: &'static str) -> Self {
        assert!(!arms.is_empty(), "need at least one arm");
        Ucb { arms, c: 1.0, label }
    }

    /// Override the exploration constant.
    pub fn with_c(mut self, c: f64) -> Self {
        self.c = c;
        self
    }
}

impl Strategy for Ucb {
    fn name(&self) -> &'static str {
        self.label
    }

    fn propose(&mut self, space: &ActionSpace, hist: &History) -> usize {
        // Restrict to arms that still exist on the live platform. If node
        // loss removed every arm (e.g. all group boundaries above the
        // surviving size), fall back to all live nodes.
        let arms: Vec<usize> =
            self.arms.iter().copied().filter(|&a| a <= space.max_nodes).collect();
        if arms.is_empty() {
            return space.max_nodes;
        }
        // Visit unvisited arms in order first.
        for &a in &arms {
            if hist.count_for(a) == 0 {
                return a;
            }
        }
        let t = hist.len().max(1) as f64;
        // Scale rewards so c is comparable across problems: use the spread
        // of observed means.
        let means: Vec<f64> =
            arms.iter().map(|&a| hist.mean_for(a).expect("all arms visited")).collect();
        let lo = means.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let scale = (hi - lo).max(1e-12);
        arms.iter()
            .zip(&means)
            .map(|(&a, &m)| {
                let n_a = hist.count_for(a) as f64;
                let reward = -(m - lo) / scale; // in [-1, 0]
                (a, reward + self.c * (t.ln() / n_a).sqrt())
            })
            .max_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
            .map(|(a, _)| a)
            .expect("arms non-empty")
    }

    fn explain(&self, space: &ActionSpace, hist: &History) -> DecisionTrace {
        let arms: Vec<usize> =
            self.arms.iter().copied().filter(|&a| a <= space.max_nodes).collect();
        if arms.is_empty() {
            return DecisionTrace::minimal("fallback");
        }
        if arms.iter().any(|&a| hist.count_for(a) == 0) {
            return DecisionTrace::minimal("init-sweep");
        }
        let t = hist.len().max(1) as f64;
        let means: Vec<f64> =
            arms.iter().map(|&a| hist.mean_for(a).expect("all arms visited")).collect();
        let lo = means.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let scale = (hi - lo).max(1e-12);
        // `mean` is the empirical mean duration, `sd` the exploration
        // bonus width, `acquisition` the (maximized) UCB score.
        let diagnostics = arms
            .iter()
            .zip(&means)
            .map(|(&a, &m)| {
                let n_a = hist.count_for(a) as f64;
                let bonus = self.c * (t.ln() / n_a).sqrt();
                ActionDiagnostic {
                    action: a,
                    mean: m,
                    sd: bonus,
                    acquisition: -(m - lo) / scale + bonus,
                }
            })
            .collect();
        DecisionTrace { diagnostics, excluded: Vec::new(), note: "ucb".into() }
    }
}

/// UCB restricted to complete homogeneous groups (paper: "only look at
/// multiple complete groups of homogeneous nodes", e.g. 5/10/15 for three
/// groups of five). Tiny action set, noise-resilient — but when the true
/// optimum is inside a group, it can never be reached.
#[derive(Debug, Clone)]
pub struct UcbStruct {
    inner: Ucb,
    max_nodes: usize,
}

impl UcbStruct {
    /// Arms at the cumulative group boundaries.
    pub fn new(space: &ActionSpace) -> Self {
        UcbStruct {
            inner: Ucb::with_arms(space.struct_actions(), "UCB-struct"),
            max_nodes: space.max_nodes,
        }
    }

    /// The restricted arm set (diagnostics).
    pub fn arms(&self) -> &[usize] {
        &self.inner.arms
    }
}

impl Strategy for UcbStruct {
    fn name(&self) -> &'static str {
        "UCB-struct"
    }

    fn propose(&mut self, space: &ActionSpace, hist: &History) -> usize {
        self.inner.propose(space, hist)
    }

    fn explain(&self, space: &ActionSpace, hist: &History) -> DecisionTrace {
        let mut trace = self.inner.explain(space, hist);
        // Everything outside the group boundaries is structurally
        // excluded, not merely unexplored — within the live platform.
        let n = self.max_nodes.min(space.max_nodes);
        trace.excluded = (1..=n).filter(|a| !self.inner.arms.contains(a)).collect();
        trace.note = format!("ucb-struct:{}", trace.note);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(
        strat: &mut dyn Strategy,
        space: &ActionSpace,
        f: impl Fn(usize) -> f64,
        iters: usize,
    ) -> History {
        let mut h = History::new();
        for _ in 0..iters {
            let a = strat.propose(space, &h);
            h.record(a, f(a));
        }
        h
    }

    #[test]
    fn ucb_visits_every_arm_once_first() {
        let space = ActionSpace::unstructured(8);
        let mut u = Ucb::new(&space);
        let h = drive(&mut u, &space, |n| n as f64, 8);
        let mut seen: Vec<usize> = h.records().iter().map(|r| r.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn ucb_concentrates_on_best_arm() {
        let space = ActionSpace::unstructured(6);
        let mut u = Ucb::new(&space);
        let f = |n: usize| if n == 4 { 1.0 } else { 10.0 };
        let h = drive(&mut u, &space, f, 120);
        let best_count = h.count_for(4);
        assert!(best_count > 60, "best arm pulled {best_count}/120 times");
    }

    #[test]
    fn ucb_keeps_occasional_exploration() {
        let space = ActionSpace::unstructured(5);
        let mut u = Ucb::new(&space);
        let f = |n: usize| if n == 2 { 1.0 } else { 5.0 };
        let h = drive(&mut u, &space, f, 200);
        // No-regret: suboptimal arms are still tried occasionally.
        for a in [1, 3, 4, 5] {
            assert!(h.count_for(a) >= 2, "arm {a} abandoned entirely");
        }
    }

    #[test]
    fn ucb_struct_only_plays_group_boundaries() {
        let space = ActionSpace::new(15, vec![(1, 5), (6, 10), (11, 15)], None);
        let mut u = UcbStruct::new(&space);
        assert_eq!(u.arms(), &[5, 10, 15]);
        let h = drive(&mut u, &space, |n| n as f64, 60);
        for &(a, _) in h.records() {
            assert!([5, 10, 15].contains(&a), "played non-boundary arm {a}");
        }
    }

    #[test]
    fn ucb_struct_misses_in_group_optimum() {
        // Optimum at 7 (inside group 2): UCB-struct converges to the best
        // boundary (5) but never finds 7 — the paper's scenarios (a)/(e)/(j).
        let space = ActionSpace::new(15, vec![(1, 5), (6, 10), (11, 15)], None);
        let mut u = UcbStruct::new(&space);
        let f = |n: usize| (n as f64 - 7.0).abs() + 1.0;
        let h = drive(&mut u, &space, f, 100);
        assert_eq!(h.count_for(7), 0);
        // Most plays on the nearest boundary (5 or 10, both distance 2-3).
        let good = h.count_for(5) + h.count_for(10);
        assert!(good > 80, "boundary plays: {good}");
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn empty_arms_rejected() {
        let _ = Ucb::with_arms(vec![], "x");
    }

    #[test]
    fn bandits_stay_inside_a_shrunken_live_space() {
        let full = ActionSpace::new(15, vec![(1, 5), (6, 10), (11, 15)], None);
        let live = ActionSpace::new(7, vec![(1, 5), (6, 7)], None);
        let mut u = Ucb::new(&full);
        let mut s = UcbStruct::new(&full);
        let h = drive(&mut u, &live, |n| n as f64, 40);
        for &(a, _) in h.records() {
            assert!(a <= 7, "UCB played dead arm {a}");
        }
        let h = drive(&mut s, &live, |n| n as f64, 40);
        for &(a, _) in h.records() {
            assert!(a <= 7, "UCB-struct played dead arm {a}");
        }
        // Every cached boundary dead: fall back to all live nodes.
        let tiny = ActionSpace::unstructured(3);
        let hist = History::new();
        assert_eq!(s.propose(&tiny, &hist), 3);
    }
}
