//! Observation history shared by all strategies.

use std::collections::BTreeMap;

/// The record of `(action, duration)` observations, in iteration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    records: Vec<(usize, f64)>,
}

impl History {
    /// Empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Append an observation.
    pub fn record(&mut self, action: usize, duration: f64) {
        self.records.push((action, duration));
    }

    /// Number of iterations so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was observed yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records in iteration order.
    pub fn records(&self) -> &[(usize, f64)] {
        &self.records
    }

    /// Observations of one action.
    pub fn values_for(&self, action: usize) -> Vec<f64> {
        self.records.iter().filter(|&&(a, _)| a == action).map(|&(_, y)| y).collect()
    }

    /// Number of times `action` was selected.
    pub fn count_for(&self, action: usize) -> usize {
        self.records.iter().filter(|&&(a, _)| a == action).count()
    }

    /// Mean duration of `action`, if ever observed.
    pub fn mean_for(&self, action: usize) -> Option<f64> {
        let vs = self.values_for(action);
        if vs.is_empty() {
            None
        } else {
            Some(vs.iter().sum::<f64>() / vs.len() as f64)
        }
    }

    /// First observation of `action`, if any.
    pub fn first_for(&self, action: usize) -> Option<f64> {
        self.records.iter().find(|&&(a, _)| a == action).map(|&(_, y)| y)
    }

    /// Per-action grouped observations (ordered by action).
    pub fn grouped(&self) -> BTreeMap<usize, Vec<f64>> {
        let mut m: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        for &(a, y) in &self.records {
            m.entry(a).or_default().push(y);
        }
        m
    }

    /// The action with the lowest mean observed duration, if any.
    pub fn best_action(&self) -> Option<usize> {
        self.grouped()
            .into_iter()
            .map(|(a, vs)| (a, vs.iter().sum::<f64>() / vs.len() as f64))
            .min_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
            .map(|(a, _)| a)
    }

    /// Total time spent (sum of all iteration durations) — the evaluation
    /// metric of the paper's Fig. 6.
    pub fn total_time(&self) -> f64 {
        self.records.iter().map(|&(_, y)| y).sum()
    }

    /// Drop every record whose action fails the predicate, returning how
    /// many were removed. Used by the driver to quarantine observations
    /// taken on a since-changed platform (e.g. node counts that no longer
    /// exist after a node death).
    pub fn retain_actions(&mut self, mut keep: impl FnMut(usize) -> bool) -> usize {
        let before = self.records.len();
        self.records.retain(|&(a, _)| keep(a));
        before - self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> History {
        let mut h = History::new();
        h.record(3, 10.0);
        h.record(5, 4.0);
        h.record(3, 12.0);
        h.record(7, 6.0);
        h
    }

    #[test]
    fn counts_and_means() {
        let h = hist();
        assert_eq!(h.len(), 4);
        assert_eq!(h.count_for(3), 2);
        assert_eq!(h.mean_for(3), Some(11.0));
        assert_eq!(h.mean_for(5), Some(4.0));
        assert_eq!(h.mean_for(9), None);
        assert_eq!(h.first_for(3), Some(10.0));
    }

    #[test]
    fn best_action_by_mean() {
        assert_eq!(hist().best_action(), Some(5));
        assert_eq!(History::new().best_action(), None);
    }

    #[test]
    fn total_time_sums_everything() {
        assert_eq!(hist().total_time(), 32.0);
    }

    #[test]
    fn grouped_preserves_order_within_action() {
        let g = hist().grouped();
        assert_eq!(g[&3], vec![10.0, 12.0]);
        assert_eq!(g.keys().copied().collect::<Vec<_>>(), vec![3, 5, 7]);
    }
}
