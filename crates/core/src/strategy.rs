//! The strategy trait, its introspection types, and trivial reference
//! strategies.

use crate::{ActionSpace, History, SurrogatePrior};
use adaphet_store::GpHyper;

/// Posterior / score diagnostics for one candidate action, as seen by the
/// strategy right before it decided.
///
/// The semantics of `mean`/`sd` depend on the strategy family: for the GP
/// strategies they are the surrogate's predicted duration and posterior
/// standard deviation; for the bandits, the empirical mean duration and
/// the exploration bonus width. `acquisition` is always the score the
/// strategy optimized (lower-is-better for the GP lower-confidence rule,
/// higher-is-better for UCB — the [`DecisionTrace::note`] says which).
#[derive(Debug, Clone, PartialEq)]
pub struct ActionDiagnostic {
    /// Candidate action (node count).
    pub action: usize,
    /// Central estimate of the action's duration (or residual reward).
    pub mean: f64,
    /// Uncertainty width attached to `mean`.
    pub sd: f64,
    /// The acquisition score the strategy ranked this action by.
    pub acquisition: f64,
}

/// Why a strategy proposed what it proposed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DecisionTrace {
    /// Per-candidate diagnostics (empty when the strategy has nothing to
    /// say, e.g. during forced initialization plays).
    pub diagnostics: Vec<ActionDiagnostic>,
    /// Actions currently excluded from consideration (the LP bound
    /// mechanism for GP-discontinuous, non-boundary counts for
    /// UCB-struct).
    pub excluded: Vec<usize>,
    /// Free-form tag of the decision mode (e.g. `"init"`, `"gp-lcb"`,
    /// `"ucb"`, `"fallback"`).
    pub note: String,
}

impl DecisionTrace {
    /// A trace carrying only a mode tag.
    pub fn minimal(note: impl Into<String>) -> Self {
        DecisionTrace { diagnostics: Vec::new(), excluded: Vec::new(), note: note.into() }
    }
}

/// One action's posterior state in a [`PosteriorSnapshot`].
///
/// Unlike [`ActionDiagnostic`] (which only covers the candidates the
/// strategy ranked), a snapshot point exists for **every** action of the
/// live space — including ones excluded by the bound mechanism — so a
/// report can draw the full surrogate curve the way the paper's Fig. 5
/// does, with the pruned region greyed out.
#[derive(Debug, Clone, PartialEq)]
pub struct PosteriorPoint {
    /// Action (node count).
    pub action: usize,
    /// Posterior mean of the predicted duration (LP + residual mean for
    /// the LP-residual strategies, raw surrogate mean otherwise).
    pub mean: f64,
    /// Posterior standard deviation.
    pub sd: f64,
    /// The LP lower bound at this action, when the space carries one.
    pub lp_bound: Option<f64>,
    /// Whether the bound mechanism currently excludes this action.
    pub excluded: bool,
}

/// The surrogate's posterior over the whole action space at one instant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PosteriorSnapshot {
    /// One point per action of the live space, in ascending action order.
    pub points: Vec<PosteriorPoint>,
}

/// An online exploration strategy over node counts.
///
/// Every iteration, the driver asks for the next action (a number of
/// fastest-first nodes), runs the iteration, and appends `(action,
/// duration)` to the [`History`] it passes back on the next call.
///
/// # The live action space
///
/// `propose` receives the **live** [`ActionSpace`] on every call: under
/// platform faults (node death) the driver shrinks the space mid-run, and
/// the strategy must answer within *that* space, not the one it was
/// constructed over. Strategies may cache structure from their
/// construction space (arms, groups, surrogate state) but must intersect
/// it with the live space before answering.
///
/// # Range contract
///
/// `propose` must return an action in `1..=space.max_nodes` of the live
/// space, for **every** possible history — including histories the
/// strategy did not generate itself (replays, drift resets, quarantined
/// post-fault histories). Callers rely on this to index response tables
/// and spawn node sets without clamping; the
/// [`TunerDriver`](crate::TunerDriver) checks it with a `debug_assert!`
/// and `tests/tuner_properties.rs` exercises it over random histories and
/// random fault plans.
///
/// Strategies are `Send` (they hold plain numeric state and seeded RNGs)
/// so a [`TunerDriver`](crate::TunerDriver) can move into a worker thread.
pub trait Strategy: Send {
    /// Display name (matches the paper's figure labels).
    fn name(&self) -> &'static str;

    /// Choose the next action from the live `space` given everything
    /// observed so far.
    fn propose(&mut self, space: &ActionSpace, hist: &History) -> usize;

    /// Describe the decision [`propose`](Strategy::propose) would make on
    /// `hist` over the live `space` — called by the driver right before
    /// `propose`, only when a telemetry sink asked for it (it may be
    /// expensive: the GP strategies refit their surrogate).
    ///
    /// The default is a minimal trace carrying only the strategy name;
    /// [`GpDiscontinuous`](crate::GpDiscontinuous),
    /// [`GpUcb`](crate::GpUcb), [`Ucb`](crate::Ucb) and
    /// [`UcbStruct`](crate::UcbStruct) provide full diagnostics.
    fn explain(&self, space: &ActionSpace, hist: &History) -> DecisionTrace {
        let _ = (space, hist);
        DecisionTrace::minimal(self.name())
    }

    /// The surrogate's posterior over the live `space`, if the strategy
    /// maintains one and has enough data to fit it — called by the driver
    /// alongside [`explain`](Strategy::explain), under the same
    /// only-when-a-sink-asked gate (it refits the surrogate).
    ///
    /// `None` (the default, and the answer of every non-GP strategy)
    /// means "no posterior to show", which telemetry serializes as a JSON
    /// `null` — distinct from an empty snapshot.
    fn posterior_snapshot(&self, space: &ActionSpace, hist: &History) -> Option<PosteriorSnapshot> {
        let _ = (space, hist);
        None
    }

    /// Fold a cross-session [`SurrogatePrior`] into the strategy's state
    /// — called by the driver builder when a
    /// [`WarmStart`](crate::WarmStart) resolved to a snapshot, before any
    /// proposal. Returns whether the prior was accepted; the default (and
    /// every non-GP strategy) ignores priors and answers `false`, which
    /// is exactly a cold start.
    fn warm_start(&mut self, prior: SurrogatePrior) -> bool {
        let _ = prior;
        false
    }

    /// The fitted hyper-parameters of the strategy's surrogate over
    /// `hist`, if it maintains one with enough data to fit — what a
    /// [`Session`](crate::Session) persists into a snapshot on close so
    /// the *next* session can seed its hyper-parameter search. `None`
    /// (the default) means the snapshot carries observations only.
    fn surrogate_hyper(&self, space: &ActionSpace, hist: &History) -> Option<GpHyper> {
        let _ = (space, hist);
        None
    }
}

/// The application's default behaviour: always use every node (the top
/// dashed line of the paper's Fig. 6, the baseline all gains are computed
/// against).
#[derive(Debug, Clone)]
pub struct AllNodes {
    n: usize,
}

impl AllNodes {
    /// Always picks `n` (the full cluster).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        AllNodes { n }
    }
}

impl Strategy for AllNodes {
    fn name(&self) -> &'static str {
        "all-nodes"
    }
    fn propose(&mut self, space: &ActionSpace, _hist: &History) -> usize {
        // "All nodes" means all *live* nodes: after a node death the
        // application default shrinks with the platform.
        self.n.min(space.max_nodes)
    }
}

/// Clairvoyant baseline: plays the statically optimal action from the
/// first iteration (the bottom dashed line of Fig. 6).
#[derive(Debug, Clone)]
pub struct Oracle {
    best: usize,
}

impl Oracle {
    /// Always picks `best` (determined offline from the response table).
    pub fn new(best: usize) -> Self {
        assert!(best >= 1);
        Oracle { best }
    }
}

impl Strategy for Oracle {
    fn name(&self) -> &'static str {
        "oracle"
    }
    fn propose(&mut self, space: &ActionSpace, _hist: &History) -> usize {
        // The offline optimum may no longer exist after node loss; the
        // closest surviving prefix is the best the oracle can still play.
        self.best.min(space.max_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nodes_is_constant() {
        let mut s = AllNodes::new(7);
        let space = ActionSpace::unstructured(7);
        let h = History::new();
        for _ in 0..5 {
            assert_eq!(s.propose(&space, &h), 7);
        }
        assert_eq!(s.name(), "all-nodes");
    }

    #[test]
    fn oracle_is_constant() {
        let mut s = Oracle::new(3);
        let space = ActionSpace::unstructured(5);
        let mut h = History::new();
        h.record(3, 1.0);
        assert_eq!(s.propose(&space, &h), 3);
        assert_eq!(s.name(), "oracle");
    }

    #[test]
    fn constants_respect_a_shrunken_live_space() {
        let mut all = AllNodes::new(7);
        let mut oracle = Oracle::new(6);
        let live = ActionSpace::unstructured(4);
        let h = History::new();
        assert_eq!(all.propose(&live, &h), 4, "all-nodes follows the live platform");
        assert_eq!(oracle.propose(&live, &h), 4, "oracle clamps to the survivors");
    }
}
