//! The strategy trait and trivial reference strategies.

use crate::History;

/// An online exploration strategy over node counts.
///
/// Every iteration, the driver asks for the next action (a number of
/// fastest-first nodes), runs the iteration, and appends `(action,
/// duration)` to the [`History`] it passes back on the next call.
pub trait Strategy {
    /// Display name (matches the paper's figure labels).
    fn name(&self) -> &'static str;

    /// Choose the next action given everything observed so far.
    fn propose(&mut self, hist: &History) -> usize;
}

/// The application's default behaviour: always use every node (the top
/// dashed line of the paper's Fig. 6, the baseline all gains are computed
/// against).
#[derive(Debug, Clone)]
pub struct AllNodes {
    n: usize,
}

impl AllNodes {
    /// Always picks `n` (the full cluster).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        AllNodes { n }
    }
}

impl Strategy for AllNodes {
    fn name(&self) -> &'static str {
        "all-nodes"
    }
    fn propose(&mut self, _hist: &History) -> usize {
        self.n
    }
}

/// Clairvoyant baseline: plays the statically optimal action from the
/// first iteration (the bottom dashed line of Fig. 6).
#[derive(Debug, Clone)]
pub struct Oracle {
    best: usize,
}

impl Oracle {
    /// Always picks `best` (determined offline from the response table).
    pub fn new(best: usize) -> Self {
        assert!(best >= 1);
        Oracle { best }
    }
}

impl Strategy for Oracle {
    fn name(&self) -> &'static str {
        "oracle"
    }
    fn propose(&mut self, _hist: &History) -> usize {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nodes_is_constant() {
        let mut s = AllNodes::new(7);
        let h = History::new();
        for _ in 0..5 {
            assert_eq!(s.propose(&h), 7);
        }
        assert_eq!(s.name(), "all-nodes");
    }

    #[test]
    fn oracle_is_constant() {
        let mut s = Oracle::new(3);
        let mut h = History::new();
        h.record(3, 1.0);
        assert_eq!(s.propose(&h), 3);
        assert_eq!(s.name(), "oracle");
    }
}
