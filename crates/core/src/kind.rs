//! Validated, non-panicking strategy construction.
//!
//! [`StrategyKind`] is the single source of truth for strategy naming:
//! every spelling the repo ever used ("UCB-struc" vs "UCB-struct",
//! "GP-discontin" vs "GP-discontinuous") parses to one canonical variant,
//! and [`StrategyKind::build`] replaces the old panicking by-name factory
//! with a `Result`.

use std::fmt;
use std::str::FromStr;

use crate::{
    ActionSpace, AllNodes, BrentSearch, DivideConquer, GpDiscontinuous, GpUcb, NelderMead1d,
    Oracle, RandomSearch, RightLeft, SimulatedAnnealing, StochasticApproximation, Strategy, Ucb,
    UcbStruct,
};

/// Every strategy the evaluation can construct, by canonical identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Dichotomic search (paper "DC").
    DivideConquer,
    /// Right-to-left descent.
    RightLeft,
    /// Brent's method.
    Brent,
    /// UCB1 over every node count.
    Ucb,
    /// UCB over complete homogeneous groups.
    UcbStruct,
    /// Plain GP-UCB.
    GpUcb,
    /// GP-discontinuous (the paper's contribution).
    GpDiscontinuous,
    /// Always all nodes (application default baseline).
    AllNodes,
    /// Clairvoyant best-action baseline.
    Oracle,
    /// Uniform random search floor.
    Random,
    /// Simulated annealing.
    SimulatedAnnealing,
    /// SPSA-style stochastic approximation.
    StochasticApproximation,
    /// 1-d Nelder-Mead.
    NelderMead,
}

/// The seven strategies of the paper's comparison, in figure order.
pub const PAPER_STRATEGIES: [StrategyKind; 7] = [
    StrategyKind::DivideConquer,
    StrategyKind::RightLeft,
    StrategyKind::Brent,
    StrategyKind::Ucb,
    StrategyKind::UcbStruct,
    StrategyKind::GpUcb,
    StrategyKind::GpDiscontinuous,
];

/// Canonical name plus the historical alias spellings, one row per kind.
/// This table is the only place names live; `Display`, `FromStr` and the
/// docs all derive from it.
const NAME_TABLE: &[(StrategyKind, &str, &[&str])] = &[
    (StrategyKind::DivideConquer, "DC", &[]),
    (StrategyKind::RightLeft, "Right-Left", &[]),
    (StrategyKind::Brent, "Brent", &[]),
    (StrategyKind::Ucb, "UCB", &[]),
    (StrategyKind::UcbStruct, "UCB-struct", &["UCB-struc"]),
    (StrategyKind::GpUcb, "GP-UCB", &[]),
    (StrategyKind::GpDiscontinuous, "GP-discontinuous", &["GP-discontin"]),
    (StrategyKind::AllNodes, "all-nodes", &[]),
    (StrategyKind::Oracle, "oracle", &[]),
    (StrategyKind::Random, "Random", &[]),
    (StrategyKind::SimulatedAnnealing, "SANN", &[]),
    (StrategyKind::StochasticApproximation, "SPSA", &[]),
    (StrategyKind::NelderMead, "Nelder-Mead", &[]),
];

/// Why a [`StrategyKind`] could not be resolved or built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnknownStrategyError {
    /// The name matches no canonical name or alias.
    UnknownName(String),
    /// [`StrategyKind::Oracle`] was built without its best action.
    MissingOracleBest,
}

impl fmt::Display for UnknownStrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownStrategyError::UnknownName(name) => {
                write!(f, "unknown strategy {name:?}; known: ")?;
                for (i, (_, canonical, _)) in NAME_TABLE.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{canonical}")?;
                }
                Ok(())
            }
            UnknownStrategyError::MissingOracleBest => {
                write!(f, "the oracle strategy needs the best action (oracle_best)")
            }
        }
    }
}

impl std::error::Error for UnknownStrategyError {}

impl StrategyKind {
    /// Every kind, in [`NAME_TABLE`] order.
    pub fn all() -> impl Iterator<Item = StrategyKind> {
        NAME_TABLE.iter().map(|&(k, _, _)| k)
    }

    /// The canonical display name.
    pub fn name(self) -> &'static str {
        NAME_TABLE
            .iter()
            .find(|&&(k, _, _)| k == self)
            .map(|&(_, n, _)| n)
            .expect("every kind is in the name table")
    }

    /// Construct the strategy. `seed` feeds the stochastic kinds;
    /// `oracle_best` is required only by [`StrategyKind::Oracle`].
    pub fn build(
        self,
        space: &ActionSpace,
        seed: u64,
        oracle_best: Option<usize>,
    ) -> Result<Box<dyn Strategy>, UnknownStrategyError> {
        Ok(match self {
            StrategyKind::DivideConquer => Box::new(DivideConquer::new(space)),
            StrategyKind::RightLeft => Box::new(RightLeft::new(space)),
            StrategyKind::Brent => Box::new(BrentSearch::new(space)),
            StrategyKind::Ucb => Box::new(Ucb::new(space)),
            StrategyKind::UcbStruct => Box::new(UcbStruct::new(space)),
            StrategyKind::GpUcb => Box::new(GpUcb::new(space)),
            StrategyKind::GpDiscontinuous => Box::new(GpDiscontinuous::new(space)),
            StrategyKind::AllNodes => Box::new(AllNodes::new(space.max_nodes)),
            StrategyKind::Oracle => {
                Box::new(Oracle::new(oracle_best.ok_or(UnknownStrategyError::MissingOracleBest)?))
            }
            StrategyKind::Random => Box::new(RandomSearch::new(space, seed)),
            StrategyKind::SimulatedAnnealing => Box::new(SimulatedAnnealing::new(space, seed)),
            StrategyKind::StochasticApproximation => Box::new(StochasticApproximation::new(space)),
            StrategyKind::NelderMead => Box::new(NelderMead1d::new(space)),
        })
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for StrategyKind {
    type Err = UnknownStrategyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        NAME_TABLE
            .iter()
            .find(|&&(_, canonical, aliases)| canonical == s || aliases.contains(&s))
            .map(|&(k, _, _)| k)
            .ok_or_else(|| UnknownStrategyError::UnknownName(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::History;

    #[test]
    fn every_kind_round_trips_through_display_and_parse() {
        for k in StrategyKind::all() {
            let parsed: StrategyKind = k.to_string().parse().unwrap();
            assert_eq!(parsed, k);
        }
    }

    #[test]
    fn aliases_collapse_to_canonical_variant() {
        assert_eq!("UCB-struc".parse::<StrategyKind>().unwrap(), StrategyKind::UcbStruct);
        assert_eq!("UCB-struct".parse::<StrategyKind>().unwrap(), StrategyKind::UcbStruct);
        assert_eq!("GP-discontin".parse::<StrategyKind>().unwrap(), StrategyKind::GpDiscontinuous);
        assert_eq!(
            "GP-discontinuous".parse::<StrategyKind>().unwrap(),
            StrategyKind::GpDiscontinuous
        );
    }

    #[test]
    fn unknown_name_is_an_error_not_a_panic() {
        let err = "nope".parse::<StrategyKind>().unwrap_err();
        assert_eq!(err, UnknownStrategyError::UnknownName("nope".into()));
        assert!(err.to_string().contains("GP-discontinuous"), "lists known names");
    }

    #[test]
    fn every_kind_builds_and_proposes_in_range() {
        let space = ActionSpace::new(10, vec![(1, 5), (6, 10)], Some(vec![1.0; 10]));
        for k in StrategyKind::all() {
            let mut s = k.build(&space, 1, Some(3)).unwrap();
            let a = s.propose(&space, &History::new());
            assert!((1..=10).contains(&a), "{k} proposed {a}");
        }
    }

    #[test]
    fn oracle_without_best_is_an_error() {
        let space = ActionSpace::unstructured(5);
        let err = match StrategyKind::Oracle.build(&space, 0, None) {
            Err(e) => e,
            Ok(_) => panic!("oracle without best must not build"),
        };
        assert_eq!(err, UnknownStrategyError::MissingOracleBest);
        let mut o = StrategyKind::Oracle.build(&space, 0, Some(3)).unwrap();
        assert_eq!(o.propose(&space, &History::new()), 3);
    }

    #[test]
    fn paper_strategies_are_the_figure_seven() {
        let names: Vec<&str> = PAPER_STRATEGIES.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            ["DC", "Right-Left", "Brent", "UCB", "UCB-struct", "GP-UCB", "GP-discontinuous"]
        );
    }

    #[test]
    fn built_strategy_names_match_canonical_names() {
        let space = ActionSpace::new(10, vec![(1, 5), (6, 10)], Some(vec![1.0; 10]));
        for k in StrategyKind::all() {
            let s = k.build(&space, 1, Some(3)).unwrap();
            // Baseline labels differ stylistically from kind names only
            // where the paper's figures do (none today).
            assert_eq!(s.name(), k.name(), "{k:?}");
        }
    }
}
