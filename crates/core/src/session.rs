//! The tuning loop as an explicit state machine: `propose` / `observe`
//! halves with a pending-action ledger.
//!
//! [`TunerDriver`](crate::TunerDriver) owns the synchronous propose →
//! execute → record loop, which is the right shape when the measurement
//! happens in the same call stack. A tuning *service* cannot work that
//! way: clients fetch a proposal, go run the iteration on their own
//! cluster, and come back with the measurement seconds or minutes later —
//! possibly with several actions in flight at once. [`Session`] is the
//! driver's loop split at exactly that seam:
//!
//! * [`Session::propose`] picks the next action, computes the decision
//!   trace/posterior snapshot (when a sink asked for it), and parks the
//!   proposal in a ledger under a fresh [`Ticket`];
//! * [`Session::observe`] resolves a ticket with the measured
//!   [`Observation`], applying the [`ResiliencePolicy`] verdicts: a
//!   suspect measurement answers [`Observed::Retry`] (the caller must
//!   re-measure under the same ticket) instead of silently re-executing.
//!
//! `TunerDriver::step` is now a thin wrapper: one `propose`, then
//! `observe` in a loop until the ticket resolves — bit-identical to the
//! old owning loop (pinned by the figure-binary byte-equality checks and
//! the service equivalence proptests).
//!
//! Sessions are `Send` (strategies, sinks and history all are), so a
//! [`SessionManager`](https://docs.rs/adaphet-service) can shard thousands
//! of them across a fixed worker pool.

use crate::driver::{IterationEvent, Observation, ResiliencePolicy, StepOutcome, TelemetrySink};
use crate::health::{HealthPolicy, HealthReport, HealthTracker};
use crate::strategy::{DecisionTrace, PosteriorSnapshot, Strategy};
use crate::{ActionSpace, History};
use adaphet_store::{PlatformSignature, SurrogateSnapshot, SurrogateStore};
use std::io;

/// Opaque handle for one in-flight proposal of a [`Session`].
///
/// Tickets are unique per session (a monotone counter), never reused, and
/// carry no meaning beyond identity — wire protocols serialize them as
/// plain integers via [`Ticket::id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(u64);

impl Ticket {
    /// The raw ticket number (for wire protocols and logs).
    pub fn id(self) -> u64 {
        self.0
    }

    /// Rebuild a ticket from its raw number (wire-protocol ingress).
    pub fn from_id(id: u64) -> Self {
        Ticket(id)
    }
}

impl std::fmt::Display for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What [`Session::propose`] hands out: the action to measure, under a
/// ledger ticket the caller must resolve via [`Session::observe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Proposal {
    /// Ledger ticket identifying this in-flight proposal.
    pub ticket: Ticket,
    /// 0-based iteration index assigned at propose time.
    pub iteration: usize,
    /// The action (node count) to measure.
    pub action: usize,
}

/// The outcome of resolving a ticket with [`Session::observe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Observed {
    /// The measurement was accepted and recorded; the ticket is closed.
    Recorded(StepOutcome),
    /// The [`ResiliencePolicy`] declared the measurement suspect
    /// (timeout / outlier fence): re-measure `action` and call
    /// [`Session::observe`] again with the same ticket. The discarded
    /// attempt's duration is already charged to the cumulative time.
    Retry {
        /// The still-open ticket.
        ticket: Ticket,
        /// The action to re-measure (unchanged from the proposal).
        action: usize,
        /// How many retries this ticket has consumed so far (1-based).
        attempt: usize,
    },
}

/// Why a [`Session`] refused a call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// [`Session::observe`] was called with a ticket that is not in the
    /// ledger (never issued, already resolved, or from another session).
    UnknownTicket(Ticket),
    /// [`Session::propose`] would exceed the configured in-flight limit;
    /// resolve an outstanding ticket first.
    TooManyInFlight {
        /// The configured ledger capacity.
        limit: usize,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownTicket(t) => {
                write!(f, "ticket {t} is not in the pending-action ledger")
            }
            SessionError::TooManyInFlight { limit } => {
                write!(f, "pending-action ledger is full ({limit} proposals in flight)")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// One ledger entry: everything captured at propose time that the
/// eventual observation needs to build its [`IterationEvent`].
struct PendingAction {
    ticket: Ticket,
    iteration: usize,
    action: usize,
    trace: Option<DecisionTrace>,
    snapshot: Option<PosteriorSnapshot>,
    fault_parts: Vec<String>,
    retries: usize,
}

/// A tuning session: the [`TunerDriver`](crate::TunerDriver) loop split
/// into explicit [`propose`](Session::propose) / [`observe`](Session::observe)
/// halves with a pending-action ledger.
///
/// Construct through the driver builder's
/// [`build_session`](crate::TunerDriverBuilder::build_session):
///
/// ```
/// use adaphet_core::{ActionSpace, Observation, Observed, StrategyKind, TunerDriver};
///
/// let space = ActionSpace::unstructured(8);
/// let mut session = TunerDriver::builder(&space)
///     .kind(StrategyKind::GpUcb)
///     .seed(0)
///     .build_session()
///     .unwrap();
/// for _ in 0..10 {
///     let p = session.propose().unwrap();
///     let duration = 16.0 / p.action as f64 + p.action as f64; // "measure"
///     match session.observe(p.ticket, Observation::of(duration)).unwrap() {
///         Observed::Recorded(out) => assert_eq!(out.action, p.action),
///         Observed::Retry { .. } => unreachable!("no resilience policy"),
///     }
/// }
/// assert_eq!(session.history().len(), 10);
/// ```
pub struct Session {
    strategy: Box<dyn Strategy>,
    space: ActionSpace,
    history: History,
    sinks: Vec<Box<dyn TelemetrySink>>,
    best_known: Option<f64>,
    cumulative: f64,
    iters: Option<usize>,
    /// Monotone iteration counter — *not* `history.len()`, which shrinks
    /// under quarantine.
    iteration: usize,
    resilience: ResiliencePolicy,
    pending_rebaseline: bool,
    pending_fault: Option<String>,
    ledger: Vec<PendingAction>,
    next_ticket: u64,
    max_in_flight: usize,
    store: Option<SurrogateStore>,
    signature: Option<PlatformSignature>,
    health: HealthTracker,
}

#[allow(clippy::too_many_arguments)]
impl Session {
    /// Assembled by [`TunerDriverBuilder::build_session`](crate::TunerDriverBuilder).
    pub(crate) fn from_parts(
        strategy: Box<dyn Strategy>,
        space: ActionSpace,
        sinks: Vec<Box<dyn TelemetrySink>>,
        best_known: Option<f64>,
        iters: Option<usize>,
        resilience: ResiliencePolicy,
        max_in_flight: usize,
        store: Option<SurrogateStore>,
        signature: Option<PlatformSignature>,
        warm_started: bool,
    ) -> Self {
        let lp_min = space
            .lp
            .as_ref()
            .and_then(|lp| lp.iter().copied().reduce(f64::min))
            .filter(|m| m.is_finite());
        let health = HealthTracker::new(
            HealthPolicy::default(),
            space.max_nodes,
            best_known,
            lp_min,
            warm_started,
        );
        Session {
            strategy,
            space,
            history: History::new(),
            sinks,
            best_known,
            cumulative: 0.0,
            iters,
            iteration: 0,
            resilience,
            pending_rebaseline: false,
            pending_fault: None,
            ledger: Vec::new(),
            next_ticket: 0,
            max_in_flight,
            store,
            signature,
            health,
        }
    }

    /// The strategy driving the session.
    pub fn strategy(&self) -> &dyn Strategy {
        self.strategy.as_ref()
    }

    /// The live action space the next proposal will be drawn from.
    pub fn space(&self) -> &ActionSpace {
        &self.space
    }

    /// The active resilience policy.
    pub fn resilience(&self) -> &ResiliencePolicy {
        &self.resilience
    }

    /// Observations recorded so far (quarantined records removed).
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Monotone count of iterations proposed (never shrinks, unlike
    /// `history().len()` under quarantine).
    pub fn iterations_proposed(&self) -> usize {
        self.iteration
    }

    /// The iteration budget configured on the builder, if any. The
    /// session itself never enforces it — services use it as the
    /// client-advertised horizon.
    pub fn configured_iters(&self) -> Option<usize> {
        self.iters
    }

    /// Sum of every observed duration so far, including measurements the
    /// resilience policy discarded (they still cost wall-clock time).
    pub fn cumulative_time(&self) -> f64 {
        self.cumulative
    }

    /// Number of proposals currently in flight.
    pub fn in_flight(&self) -> usize {
        self.ledger.len()
    }

    /// The open tickets, in issue order.
    pub fn pending_tickets(&self) -> Vec<Ticket> {
        self.ledger.iter().map(|p| p.ticket).collect()
    }

    /// The open ledger entries as `(ticket, action)` pairs, in issue
    /// order — the state an operator sees when inspecting a live session.
    pub fn pending(&self) -> Vec<(Ticket, usize)> {
        self.ledger.iter().map(|p| (p.ticket, p.action)).collect()
    }

    /// Attach a telemetry sink after construction.
    pub fn add_sink(&mut self, sink: Box<dyn TelemetrySink>) {
        self.sinks.push(sink);
    }

    /// Pick the next action and park it in the ledger under a fresh
    /// ticket.
    ///
    /// The proposal satisfies the [`Strategy::propose`] range contract
    /// over the *live* space. Decision traces and posterior snapshots are
    /// computed now (they must describe the history the decision was made
    /// from) and emitted with the eventual observation's event. With
    /// multiple proposals in flight, later proposals see the same history
    /// — the strategy is not told about unresolved tickets.
    pub fn propose(&mut self) -> Result<Proposal, SessionError> {
        if self.ledger.len() >= self.max_in_flight {
            return Err(SessionError::TooManyInFlight { limit: self.max_in_flight });
        }
        let iteration = self.iteration;
        self.iteration += 1;
        let mut fault_parts: Vec<String> = self.pending_fault.take().into_iter().collect();
        let action = if std::mem::take(&mut self.pending_rebaseline) {
            adaphet_metrics::global().add("tuner.rebaseline", 1.0);
            fault_parts.push("rebaseline".to_string());
            self.space.max_nodes
        } else {
            self.strategy.propose(&self.space, &self.history)
        };
        debug_assert!(
            (1..=self.space.max_nodes).contains(&action),
            "strategy {:?} proposed out-of-range action {} (live space is 1..={})",
            self.strategy.name(),
            action,
            self.space.max_nodes
        );
        // Explain before the measurement: the trace must describe the
        // history state the decision was actually made from. Skipped
        // entirely when no sink wants it (GP explain refits a surrogate).
        let (trace, snapshot) = if self.sinks.iter().any(|s| s.wants_decision_trace()) {
            (
                Some(self.strategy.explain(&self.space, &self.history)),
                self.strategy.posterior_snapshot(&self.space, &self.history),
            )
        } else {
            (None, None)
        };
        // Opportunistic health signal: reuse the snapshot the sinks asked
        // for — never compute surrogate state just for health.
        if let Some(snap) = &snapshot {
            self.health.on_posterior(snap);
        }
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        self.ledger.push(PendingAction {
            ticket,
            iteration,
            action,
            trace,
            snapshot,
            fault_parts,
            retries: 0,
        });
        Ok(Proposal { ticket, iteration, action })
    }

    /// Resolve an in-flight ticket with its measurement.
    ///
    /// A suspect measurement (per the [`ResiliencePolicy`]) keeps the
    /// ticket open and answers [`Observed::Retry`]; otherwise the
    /// observation is recorded, telemetry is emitted, and the ticket
    /// closes with [`Observed::Recorded`].
    pub fn observe(&mut self, ticket: Ticket, obs: Observation) -> Result<Observed, SessionError> {
        let idx = self
            .ledger
            .iter()
            .position(|p| p.ticket == ticket)
            .ok_or(SessionError::UnknownTicket(ticket))?;
        let (action, retries) = (self.ledger[idx].action, self.ledger[idx].retries);
        if retries < self.resilience.max_retries && self.is_suspect(action, obs.duration) {
            self.ledger[idx].retries = retries + 1;
            adaphet_metrics::global().add("tuner.retry", 1.0);
            // The discarded attempt still cost wall-clock time.
            self.cumulative += obs.duration;
            return Ok(Observed::Retry { ticket, action, attempt: retries + 1 });
        }
        let entry = self.ledger.remove(idx);
        let mut fault_parts = entry.fault_parts;
        if entry.retries > 0 {
            fault_parts.push(format!("retry:{}", entry.retries));
        }
        self.history.record(entry.action, obs.duration);
        self.cumulative += obs.duration;
        // `fault_parts` beyond the retry marker means a platform fault
        // (node death, quarantine, rebaseline) annotated this record.
        self.health.on_record(
            obs.duration,
            entry.retries,
            fault_parts.len() > usize::from(entry.retries > 0),
        );
        if !self.sinks.is_empty() {
            let event = IterationEvent {
                iteration: entry.iteration,
                strategy: self.strategy.name().to_string(),
                action: entry.action,
                duration: obs.duration,
                cumulative_time: self.cumulative,
                best_known: self.best_known,
                regret: self.best_known.map(|b| obs.duration - b),
                phases: obs.phases,
                trace: entry.trace,
                phase_breakdown: obs.breakdown,
                retries: entry.retries,
                fault: if fault_parts.is_empty() { None } else { Some(fault_parts.join(";")) },
                snapshot: entry.snapshot,
            };
            for sink in &mut self.sinks {
                sink.on_iteration(&event);
            }
        }
        Ok(Observed::Recorded(StepOutcome {
            iteration: entry.iteration,
            action: entry.action,
            duration: obs.duration,
        }))
    }

    /// Abandon an in-flight ticket without recording anything (the client
    /// disappeared mid-measurement). The iteration index is consumed; the
    /// history is untouched.
    pub fn abandon(&mut self, ticket: Ticket) -> Result<(), SessionError> {
        let idx = self
            .ledger
            .iter()
            .position(|p| p.ticket == ticket)
            .ok_or(SessionError::UnknownTicket(ticket))?;
        self.ledger.remove(idx);
        Ok(())
    }

    /// The session's convergence-health report: the hysteresis-damped
    /// [`HealthState`](crate::HealthState) plus the raw signals behind
    /// it. Derived entirely from the iteration stream the session already
    /// processes — querying it costs a few window reductions, never any
    /// surrogate work.
    pub fn health(&self) -> HealthReport {
        self.health.report()
    }

    /// The strategy's posterior over the live space right now, if it
    /// maintains a surrogate with enough data to fit (the service's
    /// `GetPosterior` endpoint; same semantics as the telemetry
    /// snapshots).
    pub fn posterior(&self) -> Option<PosteriorSnapshot> {
        self.strategy.posterior_snapshot(&self.space, &self.history)
    }

    /// Replace the live action space mid-run (platform fault: node death
    /// shrank the cluster, or a repair grew it back). See
    /// [`TunerDriver::apply_platform_change`](crate::TunerDriver::apply_platform_change).
    pub fn apply_platform_change(
        &mut self,
        new_space: &ActionSpace,
        stale_from: Option<usize>,
        note: impl Into<String>,
    ) {
        self.space = new_space.clone();
        let mut parts = vec![note.into()];
        if self.resilience.quarantine {
            if let Some(stale) = stale_from {
                let dropped = self.history.retain_actions(|a| a < stale);
                if dropped > 0 {
                    adaphet_metrics::global().add("tuner.quarantine", dropped as f64);
                    parts.push(format!("quarantine:{dropped}"));
                }
            }
        }
        if self.resilience.rebaseline && self.history.first_for(self.space.max_nodes).is_none() {
            self.pending_rebaseline = true;
        }
        let note = parts.join(";");
        match &mut self.pending_fault {
            Some(prev) => {
                prev.push(';');
                prev.push_str(&note);
            }
            None => self.pending_fault = Some(note),
        }
    }

    /// Running duration estimate for the timeout check: the median of the
    /// most recent (up to 10) iteration durations.
    fn running_estimate(&self) -> Option<f64> {
        let records = self.history.records();
        if records.len() < 3 {
            return None;
        }
        let tail = &records[records.len().saturating_sub(10)..];
        let mut ds: Vec<f64> = tail.iter().map(|&(_, y)| y).collect();
        ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(ds[ds.len() / 2])
    }

    /// Whether the policy wants this measurement re-taken.
    fn is_suspect(&self, action: usize, duration: f64) -> bool {
        if let Some(factor) = self.resilience.timeout_factor {
            if let Some(estimate) = self.running_estimate() {
                if duration > factor * estimate {
                    return true;
                }
            }
        }
        if self.resilience.max_retries > 0 {
            let prior = self.history.values_for(action);
            if prior.len() >= 4 {
                let mut v = prior.clone();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let median = v[v.len() / 2];
                let mut dev: Vec<f64> = prior.iter().map(|y| (y - median).abs()).collect();
                dev.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let mad = dev[dev.len() / 2];
                let fence = self.resilience.outlier_mad_k * (1.4826 * mad).max(1e-3 * median.abs());
                if fence > 0.0 && (duration - median).abs() > fence {
                    return true;
                }
            }
        }
        false
    }

    /// The session's surrogate state as a persistable
    /// [`SurrogateSnapshot`]: the observation history over the *live*
    /// space (quarantined records already removed, so a snapshot taken
    /// after a fault never leaks dead-node actions), the fitted GP
    /// hyper-parameters when the strategy has a surrogate with enough
    /// data, and the session's platform signature (falling back to
    /// [`signature_from_space`](crate::signature_from_space) of the live
    /// space). `None` while the history is empty — there is nothing worth
    /// persisting.
    pub fn snapshot(&self) -> Option<SurrogateSnapshot> {
        if self.history.is_empty() {
            return None;
        }
        let signature =
            self.signature.clone().unwrap_or_else(|| crate::signature_from_space(&self.space));
        Some(SurrogateSnapshot {
            signature,
            strategy: self.strategy.name().to_string(),
            max_nodes: self.space.max_nodes,
            groups: self.space.groups.clone(),
            lp: self.space.lp.clone(),
            observations: self.history.records().to_vec(),
            hyper: self.strategy.surrogate_hyper(&self.space, &self.history),
        })
    }

    /// Finish all sinks (flush files) and, when a
    /// [`SurrogateStore`] is attached, persist the closing
    /// [`snapshot`](Session::snapshot). Every sink is finished even if an
    /// earlier one fails; the first error is returned. Idempotent: sinks
    /// surface a latched error once (the snapshot is simply re-written).
    pub fn finish(&mut self) -> io::Result<()> {
        let mut first_err = None;
        for sink in &mut self.sinks {
            if let Err(e) = sink.finish() {
                first_err.get_or_insert(e);
            }
        }
        if let Some(store) = &self.store {
            if let Some(snap) = self.snapshot() {
                if let Err(e) = store.put(&snap) {
                    first_err.get_or_insert(io::Error::other(e));
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Consume the session, returning the history (sinks are finished).
    ///
    /// # Panics
    ///
    /// Panics if a sink fails to finish — call [`Session::finish`] first
    /// to handle the error gracefully.
    pub fn into_history(mut self) -> History {
        self.finish().expect("telemetry sink failed");
        self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemorySink, StrategyKind, TunerDriver};

    fn space() -> ActionSpace {
        ActionSpace::new(
            10,
            vec![(1, 5), (6, 10)],
            Some((1..=10).map(|n| 30.0 / n as f64).collect()),
        )
    }

    fn response(n: usize) -> f64 {
        30.0 / n as f64 + 0.8 * n as f64
    }

    fn session(kind: StrategyKind) -> Session {
        TunerDriver::builder(&space()).kind(kind).seed(3).build_session().unwrap()
    }

    #[test]
    fn split_session_matches_the_driver_loop_bitwise() {
        for kind in crate::PAPER_STRATEGIES {
            let mut d =
                TunerDriver::builder(&space()).kind(kind).seed(3).build().expect("driver builds");
            d.run(40, |n| Observation::of(response(n)));

            let mut s = session(kind);
            for _ in 0..40 {
                let p = s.propose().unwrap();
                match s.observe(p.ticket, Observation::of(response(p.action))).unwrap() {
                    Observed::Recorded(out) => {
                        assert_eq!(out.iteration, p.iteration);
                        assert_eq!(out.action, p.action);
                    }
                    Observed::Retry { .. } => unreachable!("default policy never retries"),
                }
            }
            assert_eq!(s.history(), d.history(), "{kind}: split loop must be bit-identical");
            assert_eq!(s.cumulative_time(), d.history().total_time());
        }
    }

    #[test]
    fn tickets_are_unique_and_resolve_once() {
        let mut s = session(StrategyKind::Ucb);
        let a = s.propose().unwrap();
        let b = s.propose().unwrap();
        assert_ne!(a.ticket, b.ticket);
        assert_eq!(s.in_flight(), 2);
        assert_eq!(s.pending_tickets(), vec![a.ticket, b.ticket]);
        assert!(matches!(
            s.observe(a.ticket, Observation::of(1.0)).unwrap(),
            Observed::Recorded(_)
        ));
        // Resolving again is an error: the ticket left the ledger.
        assert_eq!(
            s.observe(a.ticket, Observation::of(1.0)),
            Err(SessionError::UnknownTicket(a.ticket))
        );
        assert_eq!(s.in_flight(), 1);
    }

    #[test]
    fn out_of_order_observations_record_their_own_iteration() {
        let sink = MemorySink::new();
        let mut s = TunerDriver::builder(&space())
            .kind(StrategyKind::Ucb)
            .sink(Box::new(sink.clone()))
            .build_session()
            .unwrap();
        let p0 = s.propose().unwrap();
        let p1 = s.propose().unwrap();
        // Resolve the second proposal first.
        s.observe(p1.ticket, Observation::of(2.0)).unwrap();
        s.observe(p0.ticket, Observation::of(1.0)).unwrap();
        let events = sink.events();
        assert_eq!(events.len(), 2);
        // Events arrive in observation order but keep propose-time indices.
        assert_eq!(events[0].iteration, p1.iteration);
        assert_eq!(events[1].iteration, p0.iteration);
        assert_eq!(s.history().records(), &[(p1.action, 2.0), (p0.action, 1.0)]);
    }

    #[test]
    fn in_flight_limit_is_enforced() {
        let mut s = TunerDriver::builder(&space())
            .kind(StrategyKind::Ucb)
            .max_in_flight(2)
            .build_session()
            .unwrap();
        let a = s.propose().unwrap();
        let _b = s.propose().unwrap();
        assert_eq!(s.propose(), Err(SessionError::TooManyInFlight { limit: 2 }));
        s.observe(a.ticket, Observation::of(1.0)).unwrap();
        assert!(s.propose().is_ok(), "capacity frees up once a ticket resolves");
    }

    #[test]
    fn abandon_discards_without_recording() {
        let mut s = session(StrategyKind::Ucb);
        let p = s.propose().unwrap();
        s.abandon(p.ticket).unwrap();
        assert_eq!(s.in_flight(), 0);
        assert!(s.history().is_empty());
        assert_eq!(s.abandon(p.ticket), Err(SessionError::UnknownTicket(p.ticket)));
        // The iteration index was consumed; the next proposal continues.
        assert_eq!(s.propose().unwrap().iteration, p.iteration + 1);
    }

    #[test]
    fn suspect_measurements_keep_the_ticket_open() {
        let mut s = TunerDriver::builder(&ActionSpace::unstructured(4))
            .strategy(Box::new(crate::AllNodes::new(4)))
            .resilience(ResiliencePolicy::standard())
            .build_session()
            .unwrap();
        // Three clean iterations establish the running estimate (1.0)...
        for _ in 0..3 {
            let p = s.propose().unwrap();
            s.observe(p.ticket, Observation::of(1.0)).unwrap();
        }
        // ...then a 10× straggler measurement on the next ticket.
        let p = s.propose().unwrap();
        match s.observe(p.ticket, Observation::of(10.0)).unwrap() {
            Observed::Retry { ticket, action, attempt } => {
                assert_eq!(ticket, p.ticket);
                assert_eq!(action, p.action);
                assert_eq!(attempt, 1);
            }
            other => panic!("expected a retry verdict, got {other:?}"),
        }
        assert_eq!(s.in_flight(), 1, "the ticket stays open across the retry");
        // The clean re-measurement closes it; the discarded attempt is
        // still charged to cumulative time (3×1 + 10 + 1).
        match s.observe(p.ticket, Observation::of(1.0)).unwrap() {
            Observed::Recorded(out) => assert_eq!(out.duration, 1.0),
            other => panic!("expected recorded, got {other:?}"),
        }
        assert!((s.cumulative_time() - 14.0).abs() < 1e-12);
        assert_eq!(s.history().records().last(), Some(&(4, 1.0)));
    }

    #[test]
    fn sessions_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Session>();
        assert_send::<Proposal>();
        assert_send::<Observed>();
    }

    #[test]
    fn posterior_appears_once_the_surrogate_fits() {
        let mut s = session(StrategyKind::GpDiscontinuous);
        assert!(s.posterior().is_none(), "no surrogate before any data");
        for _ in 0..12 {
            let p = s.propose().unwrap();
            s.observe(p.ticket, Observation::of(response(p.action))).unwrap();
        }
        let snap = s.posterior().expect("GP posterior after 12 observations");
        assert_eq!(snap.points.len(), s.space().max_nodes);
    }
}
