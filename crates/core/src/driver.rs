//! The canonical tuning loop with structured per-iteration telemetry.
//!
//! Every consumer of a [`Strategy`] used to hand-roll the same three-line
//! propose → execute → record loop, which made it impossible to observe
//! *why* a strategy picked an action without instrumenting each call site
//! separately. [`TunerDriver`] owns that loop once: callers provide an
//! executor closure mapping an action (node count) to an [`Observation`]
//! and the driver maintains the [`History`], enforces the in-range
//! proposal contract, and emits one [`IterationEvent`] per iteration to
//! any attached [`TelemetrySink`]s.
//!
//! Telemetry stays off the hot path: with no sink attached the driver
//! never builds an event and never calls [`Strategy::explain`] (which for
//! the GP strategies costs a full surrogate refit).

use std::cell::RefCell;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::rc::Rc;

use crate::strategy::{DecisionTrace, Strategy};
use crate::{ActionSpace, History};

/// Time attributed to one named application phase within an iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSlice {
    /// Phase name (e.g. `"factorization"`).
    pub name: String,
    /// Busy time of the phase in seconds.
    pub seconds: f64,
}

impl PhaseSlice {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, seconds: f64) -> Self {
        PhaseSlice { name: name.into(), seconds }
    }
}

/// What the executor measured for one iteration.
///
/// The driver is runtime-agnostic: simulated runtimes, real thread pools
/// and pre-measured response tables all reduce to a duration plus an
/// optional per-phase breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Iteration makespan in seconds (what strategies optimize).
    pub duration: f64,
    /// Optional per-phase busy-time breakdown of the iteration.
    pub phases: Vec<PhaseSlice>,
}

impl Observation {
    /// An observation with no phase breakdown.
    pub fn of(duration: f64) -> Self {
        Observation { duration, phases: Vec::new() }
    }

    /// An observation with a per-phase breakdown.
    pub fn with_phases(duration: f64, phases: Vec<PhaseSlice>) -> Self {
        Observation { duration, phases }
    }
}

/// Everything there is to know about one driver iteration.
///
/// The JSONL serialization of this struct ([`IterationEvent::to_json`])
/// is a stable schema: field names and ordering are pinned by a golden
/// test and consumed by external tooling, so changes are semver-relevant.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationEvent {
    /// 0-based iteration index.
    pub iteration: usize,
    /// `Strategy::name()` of the deciding strategy.
    pub strategy: String,
    /// The action (node count) the strategy chose.
    pub action: usize,
    /// Measured iteration duration in seconds.
    pub duration: f64,
    /// Sum of all iteration durations up to and including this one.
    pub cumulative_time: f64,
    /// Duration of the best-known action (from an oracle or response
    /// table), when configured on the driver.
    pub best_known: Option<f64>,
    /// Instantaneous regret `duration − best_known`, when available.
    pub regret: Option<f64>,
    /// Per-phase breakdown reported by the executor (may be empty).
    pub phases: Vec<PhaseSlice>,
    /// Strategy introspection for this decision, when a sink asked for it.
    pub trace: Option<DecisionTrace>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

impl IterationEvent {
    /// One-line JSON rendering with a pinned field order:
    /// `iteration, strategy, action, duration, cumulative_time,
    /// best_known, regret, phases, posterior, excluded, note`.
    ///
    /// Every key is always present; `best_known`/`regret` are `null` when
    /// unset and `posterior`/`excluded`/`note` are empty when the decision
    /// trace was not requested. Non-finite floats serialize as `null`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str(&format!(
            "{{\"iteration\":{},\"strategy\":\"{}\",\"action\":{},\"duration\":{},\
             \"cumulative_time\":{}",
            self.iteration,
            json_escape(&self.strategy),
            self.action,
            json_f64(self.duration),
            json_f64(self.cumulative_time),
        ));
        s.push_str(&format!(",\"best_known\":{}", self.best_known.map_or("null".into(), json_f64)));
        s.push_str(&format!(",\"regret\":{}", self.regret.map_or("null".into(), json_f64)));
        s.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"seconds\":{}}}",
                json_escape(&p.name),
                json_f64(p.seconds)
            ));
        }
        s.push_str("],\"posterior\":[");
        if let Some(t) = &self.trace {
            for (i, d) in t.diagnostics.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"action\":{},\"mean\":{},\"sd\":{},\"acquisition\":{}}}",
                    d.action,
                    json_f64(d.mean),
                    json_f64(d.sd),
                    json_f64(d.acquisition)
                ));
            }
        }
        s.push_str("],\"excluded\":[");
        if let Some(t) = &self.trace {
            for (i, a) in t.excluded.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("{a}"));
            }
        }
        s.push_str(&format!(
            "],\"note\":\"{}\"}}",
            json_escape(self.trace.as_ref().map_or("", |t| t.note.as_str()))
        ));
        s
    }
}

/// Consumer of per-iteration telemetry.
pub trait TelemetrySink {
    /// Whether the driver should compute [`Strategy::explain`] for this
    /// sink's events. Defaults to `true`; return `false` for cheap sinks
    /// (counters, progress bars) to keep GP refits off the loop.
    fn wants_decision_trace(&self) -> bool {
        true
    }

    /// Called once per driver iteration, after the observation is
    /// recorded.
    fn on_iteration(&mut self, event: &IterationEvent);

    /// Called by [`TunerDriver::finish`]; flush buffers here.
    fn finish(&mut self) {}
}

/// In-memory sink for tests and programmatic inspection.
///
/// Cloning shares the underlying buffer, so a test can keep a handle
/// while handing a clone to the driver.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Rc<RefCell<Vec<IterationEvent>>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the events recorded so far.
    pub fn events(&self) -> Vec<IterationEvent> {
        self.events.borrow().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether no event was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }
}

impl TelemetrySink for MemorySink {
    fn on_iteration(&mut self, event: &IterationEvent) {
        self.events.borrow_mut().push(event.clone());
    }
}

/// Sink writing one [`IterationEvent::to_json`] line per iteration.
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl JsonlSink<BufWriter<File>> {
    /// Create (truncate) a JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink { writer: BufWriter::new(File::create(path)?) })
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wrap any writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }

    /// Recover the writer (e.g. a `Vec<u8>` buffer in tests).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> TelemetrySink for JsonlSink<W> {
    fn on_iteration(&mut self, event: &IterationEvent) {
        // Telemetry must never abort a tuning run; I/O errors are dropped.
        let _ = writeln!(self.writer, "{}", event.to_json());
    }

    fn finish(&mut self) {
        let _ = self.writer.flush();
    }
}

/// What [`TunerDriver::step`] hands back to the caller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// 0-based iteration index of this step.
    pub iteration: usize,
    /// Action that was played.
    pub action: usize,
    /// Measured duration.
    pub duration: f64,
}

/// The canonical propose → execute → record loop.
///
/// ```
/// use adaphet_core::{ActionSpace, Observation, StrategyKind, TunerDriver};
///
/// let space = ActionSpace::unstructured(8);
/// let strat = "GP-UCB".parse::<StrategyKind>().unwrap()
///     .build(&space, 0, None).unwrap();
/// let mut driver = TunerDriver::new(strat, &space);
/// driver.run(10, |n| Observation::of(16.0 / n as f64 + n as f64));
/// assert_eq!(driver.history().len(), 10);
/// ```
pub struct TunerDriver {
    strategy: Box<dyn Strategy>,
    space: ActionSpace,
    history: History,
    sinks: Vec<Box<dyn TelemetrySink>>,
    best_known: Option<f64>,
    cumulative: f64,
}

impl TunerDriver {
    /// A driver with no telemetry attached.
    pub fn new(strategy: Box<dyn Strategy>, space: &ActionSpace) -> Self {
        TunerDriver {
            strategy,
            space: space.clone(),
            history: History::new(),
            sinks: Vec::new(),
            best_known: None,
            cumulative: 0.0,
        }
    }

    /// Provide the best-known per-iteration duration (oracle or response
    /// table optimum) so events carry instantaneous regret.
    pub fn with_best_known(mut self, duration: f64) -> Self {
        self.best_known = Some(duration);
        self
    }

    /// Attach a telemetry sink (builder form).
    pub fn with_sink(mut self, sink: Box<dyn TelemetrySink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Attach a telemetry sink.
    pub fn add_sink(&mut self, sink: Box<dyn TelemetrySink>) {
        self.sinks.push(sink);
    }

    /// The strategy driving the loop.
    pub fn strategy(&self) -> &dyn Strategy {
        self.strategy.as_ref()
    }

    /// Observations recorded so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Consume the driver, returning the history (sinks are finished).
    pub fn into_history(mut self) -> History {
        self.finish();
        self.history
    }

    /// Run one iteration: propose, execute, record, emit telemetry.
    ///
    /// Proposals must satisfy the [`Strategy::propose`] range contract;
    /// the driver checks it with a `debug_assert!` so violations surface
    /// in tests rather than corrupting downstream lookups.
    pub fn step<F: FnOnce(usize) -> Observation>(&mut self, execute: F) -> StepOutcome {
        let iteration = self.history.len();
        let action = self.strategy.propose(&self.history);
        debug_assert!(
            (1..=self.space.max_nodes).contains(&action),
            "strategy {:?} proposed out-of-range action {} (space is 1..={})",
            self.strategy.name(),
            action,
            self.space.max_nodes
        );
        // Explain before recording: the trace must describe the history
        // state the decision was actually made from. Skipped entirely
        // when no sink wants it (GP explain costs a surrogate refit).
        let trace = if self.sinks.iter().any(|s| s.wants_decision_trace()) {
            Some(self.strategy.explain(&self.history))
        } else {
            None
        };
        let obs = execute(action);
        self.history.record(action, obs.duration);
        self.cumulative += obs.duration;
        if !self.sinks.is_empty() {
            let event = IterationEvent {
                iteration,
                strategy: self.strategy.name().to_string(),
                action,
                duration: obs.duration,
                cumulative_time: self.cumulative,
                best_known: self.best_known,
                regret: self.best_known.map(|b| obs.duration - b),
                phases: obs.phases,
                trace,
            };
            for sink in &mut self.sinks {
                sink.on_iteration(&event);
            }
        }
        StepOutcome { iteration, action, duration: obs.duration }
    }

    /// Run `iters` iterations through the same executor.
    pub fn run<F: FnMut(usize) -> Observation>(&mut self, iters: usize, mut execute: F) {
        for _ in 0..iters {
            self.step(&mut execute);
        }
    }

    /// Finish all sinks (flush files). Idempotent.
    pub fn finish(&mut self) {
        for sink in &mut self.sinks {
            sink.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpDiscontinuous, StrategyKind};

    fn space() -> ActionSpace {
        ActionSpace::new(
            10,
            vec![(1, 5), (6, 10)],
            Some((1..=10).map(|n| 30.0 / n as f64).collect()),
        )
    }

    fn response(n: usize) -> f64 {
        30.0 / n as f64 + 0.8 * n as f64
    }

    #[test]
    fn driver_records_every_iteration() {
        let sp = space();
        let mut d = TunerDriver::new(Box::new(GpDiscontinuous::new(&sp)), &sp);
        d.run(15, |n| Observation::of(response(n)));
        assert_eq!(d.history().len(), 15);
        let total: f64 = d.history().records().iter().map(|&(_, y)| y).sum();
        assert!((total - d.history().total_time()).abs() < 1e-12);
    }

    #[test]
    fn memory_sink_sees_one_event_per_iteration() {
        let sp = space();
        let sink = MemorySink::new();
        let mut d = TunerDriver::new(Box::new(GpDiscontinuous::new(&sp)), &sp)
            .with_sink(Box::new(sink.clone()))
            .with_best_known(response(6));
        d.run(12, |n| Observation::of(response(n)));
        let events = sink.events();
        assert_eq!(events.len(), d.history().len());
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.iteration, i);
            assert_eq!(e.strategy, "GP-discontinuous");
            assert!(e.trace.is_some(), "sink wants traces by default");
            assert_eq!(e.regret.unwrap(), e.duration - response(6));
        }
        // Cumulative time is monotone and matches the history total.
        let last = events.last().unwrap();
        assert!((last.cumulative_time - d.history().total_time()).abs() < 1e-9);
    }

    #[test]
    fn no_sink_means_no_explain_calls() {
        struct Spy {
            explains: Rc<RefCell<usize>>,
        }
        impl Strategy for Spy {
            fn name(&self) -> &'static str {
                "spy"
            }
            fn propose(&mut self, _h: &History) -> usize {
                1
            }
            fn explain(&self, _h: &History) -> DecisionTrace {
                *self.explains.borrow_mut() += 1;
                DecisionTrace::minimal("spy")
            }
        }
        let count = Rc::new(RefCell::new(0usize));
        let sp = ActionSpace::unstructured(3);
        let mut d = TunerDriver::new(Box::new(Spy { explains: count.clone() }), &sp);
        d.run(5, |_| Observation::of(1.0));
        assert_eq!(*count.borrow(), 0, "explain must not run without a sink");

        let mut d = TunerDriver::new(Box::new(Spy { explains: count.clone() }), &sp)
            .with_sink(Box::new(MemorySink::new()));
        d.run(5, |_| Observation::of(1.0));
        assert_eq!(*count.borrow(), 5, "explain runs once per iteration with a sink");
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_iteration() {
        let sp = space();
        let strat = StrategyKind::GpDiscontinuous.build(&sp, 0, None).unwrap();
        let sink = JsonlSink::new(Vec::new());
        // Route through a shared buffer we can read back.
        struct Tee(Rc<RefCell<Vec<u8>>>);
        impl Write for Tee {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        drop(sink);
        let buf = Rc::new(RefCell::new(Vec::new()));
        let mut d =
            TunerDriver::new(strat, &sp).with_sink(Box::new(JsonlSink::new(Tee(buf.clone()))));
        d.run(8, |n| Observation::of(response(n)));
        d.finish();
        let text = String::from_utf8(buf.borrow().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8);
        for line in lines {
            assert!(line.starts_with("{\"iteration\":"), "line: {line}");
            assert!(line.ends_with('}'), "line: {line}");
        }
    }

    #[test]
    fn phases_flow_into_events() {
        let sp = ActionSpace::unstructured(4);
        let sink = MemorySink::new();
        let mut d = TunerDriver::new(Box::new(crate::AllNodes::new(4)), &sp)
            .with_sink(Box::new(sink.clone()));
        d.step(|_| {
            Observation::with_phases(
                2.0,
                vec![PhaseSlice::new("factorization", 1.5), PhaseSlice::new("solve", 0.5)],
            )
        });
        let e = &sink.events()[0];
        assert_eq!(e.phases.len(), 2);
        assert_eq!(e.phases[0].name, "factorization");
        assert_eq!(e.phases[1].seconds, 0.5);
    }

    #[test]
    fn json_escapes_and_nonfinite() {
        let e = IterationEvent {
            iteration: 0,
            strategy: "a\"b\\c".into(),
            action: 1,
            duration: f64::NAN,
            cumulative_time: 1.0,
            best_known: None,
            regret: None,
            phases: vec![],
            trace: None,
        };
        let j = e.to_json();
        assert!(j.contains("\"strategy\":\"a\\\"b\\\\c\""));
        assert!(j.contains("\"duration\":null"));
        assert!(j.contains("\"best_known\":null"));
    }
}
