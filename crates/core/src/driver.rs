//! The canonical tuning loop with structured per-iteration telemetry.
//!
//! Every consumer of a [`Strategy`] used to hand-roll the same three-line
//! propose → execute → record loop, which made it impossible to observe
//! *why* a strategy picked an action without instrumenting each call site
//! separately. [`TunerDriver`] owns that loop once: callers provide an
//! executor closure mapping an action (node count) to an [`Observation`]
//! and the driver maintains the [`History`], enforces the in-range
//! proposal contract, and emits one [`IterationEvent`] per iteration to
//! any attached [`TelemetrySink`]s.
//!
//! Telemetry stays off the hot path: with no sink attached the driver
//! never builds an event and never calls [`Strategy::explain`] (which for
//! the GP strategies costs a full surrogate refit).

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::strategy::{DecisionTrace, PosteriorSnapshot, Strategy};
use crate::{ActionSpace, History};

/// Time attributed to one named application phase within an iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSlice {
    /// Phase name (e.g. `"factorization"`).
    pub name: String,
    /// Busy time of the phase in seconds.
    pub seconds: f64,
}

impl PhaseSlice {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, seconds: f64) -> Self {
        PhaseSlice { name: name.into(), seconds }
    }
}

/// Busy vs. idle worker time of one homogeneous node group over an
/// iteration window.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupUtilization {
    /// Group label, e.g. `"chifflot:1-2"`.
    pub name: String,
    /// Seconds of worker (CPU core / GPU) busy time, summed over workers.
    pub busy_s: f64,
    /// Seconds of worker idle time within the window.
    pub idle_s: f64,
}

impl GroupUtilization {
    /// Busy fraction in `[0, 1]` (0 for an empty window).
    pub fn utilization(&self) -> f64 {
        let cap = self.busy_s + self.idle_s;
        if cap <= 0.0 {
            0.0
        } else {
            self.busy_s / cap
        }
    }
}

/// Wall-clock decomposition of one iteration: disjoint per-phase slices
/// (which sum to the iteration duration, unlike the busy-time
/// [`Observation::phases`] which overlap under concurrency) plus per-group
/// utilization.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Disjoint wall-clock slices in completion order; sums to the
    /// iteration duration.
    pub phases: Vec<PhaseSlice>,
    /// Busy vs. idle time per homogeneous node group.
    pub groups: Vec<GroupUtilization>,
}

/// What the executor measured for one iteration.
///
/// The driver is runtime-agnostic: simulated runtimes, real thread pools
/// and pre-measured response tables all reduce to a duration plus an
/// optional per-phase breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Iteration makespan in seconds (what strategies optimize).
    pub duration: f64,
    /// Optional per-phase busy-time breakdown of the iteration.
    pub phases: Vec<PhaseSlice>,
    /// Optional wall-clock phase/utilization decomposition (profiled runs).
    pub breakdown: Option<PhaseBreakdown>,
}

impl Observation {
    /// An observation with no phase breakdown.
    pub fn of(duration: f64) -> Self {
        Observation { duration, phases: Vec::new(), breakdown: None }
    }

    /// An observation with a per-phase breakdown.
    pub fn with_phases(duration: f64, phases: Vec<PhaseSlice>) -> Self {
        Observation { duration, phases, breakdown: None }
    }

    /// An observation with both the busy-time phases and the wall-clock
    /// phase/utilization decomposition.
    pub fn with_breakdown(
        duration: f64,
        phases: Vec<PhaseSlice>,
        breakdown: PhaseBreakdown,
    ) -> Self {
        Observation { duration, phases, breakdown: Some(breakdown) }
    }
}

/// Everything there is to know about one driver iteration.
///
/// The JSONL serialization of this struct ([`IterationEvent::to_json`])
/// is a stable schema: field names and ordering are pinned by a golden
/// test and consumed by external tooling, so changes are semver-relevant.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationEvent {
    /// 0-based iteration index.
    pub iteration: usize,
    /// `Strategy::name()` of the deciding strategy.
    pub strategy: String,
    /// The action (node count) the strategy chose.
    pub action: usize,
    /// Measured iteration duration in seconds.
    pub duration: f64,
    /// Sum of all iteration durations up to and including this one.
    pub cumulative_time: f64,
    /// Duration of the best-known action (from an oracle or response
    /// table), when configured on the driver.
    pub best_known: Option<f64>,
    /// Instantaneous regret `duration − best_known`, when available.
    pub regret: Option<f64>,
    /// Per-phase breakdown reported by the executor (may be empty).
    pub phases: Vec<PhaseSlice>,
    /// Strategy introspection for this decision, when a sink asked for it.
    pub trace: Option<DecisionTrace>,
    /// Wall-clock phase/utilization decomposition, when the executor
    /// profiled the iteration.
    pub phase_breakdown: Option<PhaseBreakdown>,
    /// Extra measurements the resilience policy re-took this iteration
    /// after an outlier/timeout verdict (0 in fault-free runs).
    pub retries: usize,
    /// Fault/resilience annotation for this iteration (e.g.
    /// `"node-death:rank=5"`, `"rebaseline"`, `"retry:1"`), `None` on
    /// unremarkable iterations.
    pub fault: Option<String>,
    /// The strategy's full posterior over the live space right before
    /// this decision ([`Strategy::posterior_snapshot`]), when a sink
    /// asked for decision traces and the strategy maintains a surrogate.
    pub snapshot: Option<PosteriorSnapshot>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

impl IterationEvent {
    /// One-line JSON rendering with a pinned field order:
    /// `iteration, strategy, action, duration, cumulative_time,
    /// best_known, regret, phases, posterior, excluded, note,
    /// phase_breakdown, retries, fault, snapshot`.
    ///
    /// Every key is always present; `best_known`/`regret` are `null` when
    /// unset, `posterior`/`excluded`/`note` are empty when the decision
    /// trace was not requested, `phase_breakdown` is `null` for
    /// unprofiled iterations, `fault` is `null` for unremarkable
    /// iterations, and `snapshot` is `null` when the strategy has no
    /// surrogate posterior to report (it was appended last so parsers of
    /// the older 14-key schema keep reading a stable prefix). Non-finite
    /// floats serialize as `null`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str(&format!(
            "{{\"iteration\":{},\"strategy\":\"{}\",\"action\":{},\"duration\":{},\
             \"cumulative_time\":{}",
            self.iteration,
            json_escape(&self.strategy),
            self.action,
            json_f64(self.duration),
            json_f64(self.cumulative_time),
        ));
        s.push_str(&format!(",\"best_known\":{}", self.best_known.map_or("null".into(), json_f64)));
        s.push_str(&format!(",\"regret\":{}", self.regret.map_or("null".into(), json_f64)));
        s.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"seconds\":{}}}",
                json_escape(&p.name),
                json_f64(p.seconds)
            ));
        }
        s.push_str("],\"posterior\":[");
        if let Some(t) = &self.trace {
            for (i, d) in t.diagnostics.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"action\":{},\"mean\":{},\"sd\":{},\"acquisition\":{}}}",
                    d.action,
                    json_f64(d.mean),
                    json_f64(d.sd),
                    json_f64(d.acquisition)
                ));
            }
        }
        s.push_str("],\"excluded\":[");
        if let Some(t) = &self.trace {
            for (i, a) in t.excluded.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("{a}"));
            }
        }
        s.push_str(&format!(
            "],\"note\":\"{}\"",
            json_escape(self.trace.as_ref().map_or("", |t| t.note.as_str()))
        ));
        s.push_str(",\"phase_breakdown\":");
        match &self.phase_breakdown {
            None => s.push_str("null"),
            Some(b) => {
                s.push_str("{\"phases\":[");
                for (i, p) in b.phases.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!(
                        "{{\"name\":\"{}\",\"seconds\":{}}}",
                        json_escape(&p.name),
                        json_f64(p.seconds)
                    ));
                }
                s.push_str("],\"groups\":[");
                for (i, g) in b.groups.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!(
                        "{{\"name\":\"{}\",\"busy_s\":{},\"idle_s\":{},\"utilization\":{}}}",
                        json_escape(&g.name),
                        json_f64(g.busy_s),
                        json_f64(g.idle_s),
                        json_f64(g.utilization())
                    ));
                }
                s.push_str("]}");
            }
        }
        s.push_str(&format!(",\"retries\":{}", self.retries));
        s.push_str(",\"fault\":");
        match &self.fault {
            None => s.push_str("null"),
            Some(f) => s.push_str(&format!("\"{}\"", json_escape(f))),
        }
        s.push_str(",\"snapshot\":");
        match &self.snapshot {
            None => s.push_str("null"),
            Some(snap) => {
                s.push_str("{\"points\":[");
                for (i, p) in snap.points.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!(
                        "{{\"action\":{},\"mean\":{},\"sd\":{},\"lp_bound\":{},\"excluded\":{}}}",
                        p.action,
                        json_f64(p.mean),
                        json_f64(p.sd),
                        p.lp_bound.map_or("null".into(), json_f64),
                        p.excluded,
                    ));
                }
                s.push_str("]}");
            }
        }
        s.push('}');
        s
    }
}

/// Consumer of per-iteration telemetry.
///
/// Sinks are `Send` so a driver holding them can move into a worker
/// thread (sinks with shared buffers use `Arc<Mutex<…>>`, never
/// `Rc<RefCell<…>>`).
pub trait TelemetrySink: Send {
    /// Whether the driver should compute [`Strategy::explain`] for this
    /// sink's events. Defaults to `true`; return `false` for cheap sinks
    /// (counters, progress bars) to keep GP refits off the loop.
    fn wants_decision_trace(&self) -> bool {
        true
    }

    /// Called once per driver iteration, after the observation is
    /// recorded.
    fn on_iteration(&mut self, event: &IterationEvent);

    /// Called by [`TunerDriver::finish`]; flush buffers here and surface
    /// any I/O error swallowed during the run — telemetry the user asked
    /// for must not vanish silently.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// In-memory sink for tests and programmatic inspection.
///
/// Cloning shares the underlying buffer, so a test can keep a handle
/// while handing a clone to the driver.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<IterationEvent>>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<IterationEvent>> {
        // Event pushes can't corrupt the buffer; ignore poisoning.
        self.events.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Snapshot of the events recorded so far.
    pub fn events(&self) -> Vec<IterationEvent> {
        self.lock().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no event was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

impl TelemetrySink for MemorySink {
    fn on_iteration(&mut self, event: &IterationEvent) {
        self.lock().push(event.clone());
    }
}

/// Sink writing one [`IterationEvent::to_json`] line per iteration.
///
/// Mid-run I/O errors never abort the tuning loop; the *first* error is
/// latched and returned from [`TelemetrySink::finish`], so a failing
/// writer surfaces instead of silently dropping iterations.
pub struct JsonlSink<W: Write> {
    writer: W,
    error: Option<io::Error>,
}

impl JsonlSink<BufWriter<File>> {
    /// Create (truncate) a JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wrap any writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, error: None }
    }

    /// Recover the writer (e.g. a `Vec<u8>` buffer in tests).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write + Send> TelemetrySink for JsonlSink<W> {
    fn on_iteration(&mut self, event: &IterationEvent) {
        // Telemetry must never abort a tuning run mid-flight; keep the
        // first error for `finish` to report.
        if let Err(e) = writeln!(self.writer, "{}", event.to_json()) {
            self.error.get_or_insert(e);
        }
    }

    fn finish(&mut self) -> io::Result<()> {
        let flush = self.writer.flush();
        match self.error.take() {
            Some(e) => Err(e),
            None => flush,
        }
    }
}

/// What [`TunerDriver::step`] hands back to the caller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// 0-based iteration index of this step.
    pub iteration: usize,
    /// Action that was played.
    pub action: usize,
    /// Measured duration.
    pub duration: f64,
}

/// When and how the driver second-guesses a measurement or a platform
/// change (the resilience half of the tuning loop).
///
/// The [`Default`] policy disables everything — a fault-free run takes
/// exactly the code path it took before this type existed. Use
/// [`ResiliencePolicy::standard`] to switch all mechanisms on.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePolicy {
    /// Declare a measurement suspect when it exceeds `factor ×` the
    /// running duration estimate (median of recent iterations). `None`
    /// disables the timeout check.
    pub timeout_factor: Option<f64>,
    /// How many times a suspect measurement may be re-taken within one
    /// iteration. `0` disables retries entirely.
    pub max_retries: usize,
    /// MAD multiple beyond which a measurement counts as an outlier of
    /// its per-action history (needs ≥ 4 prior observations of the same
    /// action). Only consulted when `max_retries > 0`.
    pub outlier_mad_k: f64,
    /// Drop history records whose action no longer exists after a
    /// platform change (they were measured with a now-dead node).
    pub quarantine: bool,
    /// After a platform change that leaves the live all-nodes count
    /// unmeasured, force the next proposal to all live nodes so bound
    /// mechanisms regain their `y(N)` reference.
    pub rebaseline: bool,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            timeout_factor: None,
            max_retries: 0,
            outlier_mad_k: 8.0,
            quarantine: false,
            rebaseline: false,
        }
    }
}

impl ResiliencePolicy {
    /// All resilience mechanisms on, with conservative thresholds: 3×
    /// timeout, one retry, 8-MAD outlier fence, quarantine and
    /// re-baselining enabled.
    pub fn standard() -> Self {
        ResiliencePolicy {
            timeout_factor: Some(3.0),
            max_retries: 1,
            outlier_mad_k: 8.0,
            quarantine: true,
            rebaseline: true,
        }
    }
}

/// Why [`TunerDriverBuilder::build`] refused to produce a driver.
#[derive(Debug)]
pub enum DriverBuildError {
    /// Neither [`TunerDriverBuilder::strategy`] nor
    /// [`TunerDriverBuilder::kind`] was called.
    MissingStrategy,
    /// The configured [`StrategyKind`] could not be built.
    Strategy(crate::UnknownStrategyError),
    /// The requested [`WarmStart`](crate::WarmStart) could not be
    /// honoured — typically [`StoreError::SpaceMismatch`]: the snapshot
    /// was taken over a different action space than the live one (e.g.
    /// before a fault shrank the platform) and folding it in verbatim
    /// could re-introduce excluded actions.
    WarmStart(adaphet_store::StoreError),
}

impl std::fmt::Display for DriverBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverBuildError::MissingStrategy => {
                write!(f, "driver builder needs a strategy (call .strategy() or .kind())")
            }
            DriverBuildError::Strategy(e) => write!(f, "{e}"),
            DriverBuildError::WarmStart(e) => write!(f, "warm start rejected: {e}"),
        }
    }
}

impl std::error::Error for DriverBuildError {}

impl From<crate::UnknownStrategyError> for DriverBuildError {
    fn from(e: crate::UnknownStrategyError) -> Self {
        DriverBuildError::Strategy(e)
    }
}

/// Typed configuration for [`TunerDriver`] (and, via
/// [`build_session`](TunerDriverBuilder::build_session), the split
/// [`Session`](crate::Session)) — the only way to construct either.
/// Obtain via [`TunerDriver::builder`].
pub struct TunerDriverBuilder {
    space: ActionSpace,
    strategy: Option<Box<dyn Strategy>>,
    kind: Option<crate::StrategyKind>,
    seed: u64,
    iters: Option<usize>,
    best_known: Option<f64>,
    oracle_best: Option<usize>,
    sinks: Vec<Box<dyn TelemetrySink>>,
    resilience: ResiliencePolicy,
    max_in_flight: usize,
    warm_start: crate::WarmStart,
    store: Option<adaphet_store::SurrogateStore>,
    signature: Option<adaphet_store::PlatformSignature>,
}

impl TunerDriverBuilder {
    /// Drive with an already-built strategy (overrides a prior `kind`).
    pub fn strategy(mut self, strategy: Box<dyn Strategy>) -> Self {
        self.strategy = Some(strategy);
        self.kind = None;
        self
    }

    /// Drive with a [`StrategyKind`](crate::StrategyKind), built at
    /// [`build`](Self::build) time from the space, seed and (for the
    /// oracle) [`oracle_best`](Self::oracle_best).
    pub fn kind(mut self, kind: crate::StrategyKind) -> Self {
        self.kind = Some(kind);
        self.strategy = None;
        self
    }

    /// Seed for stochastic strategies built via [`kind`](Self::kind).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Default iteration budget consumed by
    /// [`TunerDriver::run_configured`].
    pub fn iters(mut self, iters: usize) -> Self {
        self.iters = Some(iters);
        self
    }

    /// Best-known per-iteration duration (oracle or response-table
    /// optimum) so events carry instantaneous regret.
    pub fn best_known(mut self, duration: f64) -> Self {
        self.best_known = Some(duration);
        self
    }

    /// Best action for [`StrategyKind::Oracle`](crate::StrategyKind).
    pub fn oracle_best(mut self, best: usize) -> Self {
        self.oracle_best = Some(best);
        self
    }

    /// Attach a telemetry sink (repeatable).
    pub fn sink(mut self, sink: Box<dyn TelemetrySink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Set the resilience policy (default: everything off).
    pub fn resilience(mut self, policy: ResiliencePolicy) -> Self {
        self.resilience = policy;
        self
    }

    /// Cap the pending-action ledger of a split
    /// [`Session`](crate::Session) (default: unbounded). The synchronous
    /// [`TunerDriver`] loop never has more than one proposal in flight,
    /// so this only matters for [`build_session`](Self::build_session)
    /// consumers like the tuning service.
    pub fn max_in_flight(mut self, limit: usize) -> Self {
        self.max_in_flight = limit.max(1);
        self
    }

    /// How the session's surrogate starts (default:
    /// [`WarmStart::Cold`]). [`WarmStart::FromSnapshot`] folds the given
    /// snapshot in (refused with [`DriverBuildError::WarmStart`] when its
    /// action space disagrees with the live one);
    /// [`WarmStart::FromStore`] asks the attached [`store`](Self::store)
    /// for the nearest-signature snapshot and projects it onto the live
    /// space, falling back to a cold start when nothing matches.
    pub fn warm_start(mut self, warm: crate::WarmStart) -> Self {
        self.warm_start = warm;
        self
    }

    /// Attach a persistent [`SurrogateStore`]: the source for
    /// [`WarmStart::FromStore`] look-ups, and the destination the built
    /// [`Session`](crate::Session) snapshots itself into when it finishes.
    pub fn store(mut self, store: &adaphet_store::SurrogateStore) -> Self {
        self.store = Some(store.clone());
        self
    }

    /// The platform signature used to key store look-ups and the
    /// session's own closing snapshot. Defaults to
    /// [`signature_from_space`](crate::signature_from_space) of the
    /// builder's space (exact same-space re-runs still round-trip, but
    /// cross-platform similarity needs real speeds/bandwidths).
    pub fn signature(mut self, sig: adaphet_store::PlatformSignature) -> Self {
        self.signature = Some(sig);
        self
    }

    /// Build the split propose/observe [`Session`](crate::Session) state
    /// machine (what services shard across worker threads).
    pub fn build_session(self) -> Result<crate::Session, DriverBuildError> {
        let mut strategy = match (self.strategy, self.kind) {
            (Some(s), _) => s,
            (None, Some(k)) => k.build(&self.space, self.seed, self.oracle_best)?,
            (None, None) => return Err(DriverBuildError::MissingStrategy),
        };
        let space = self.space;
        // Whether a prior actually reached the strategy — the health
        // tracker's warm-start-effectiveness signal keys off this, not
        // off what was merely requested.
        let mut warm_started = false;
        match self.warm_start {
            crate::WarmStart::Cold => {}
            crate::WarmStart::FromSnapshot(snap) => {
                snap.matches_space(space.max_nodes, &space.groups)
                    .map_err(DriverBuildError::WarmStart)?;
                strategy.warm_start(crate::SurrogatePrior::from_snapshot(&snap));
                warm_started = true;
            }
            crate::WarmStart::FromStore { min_similarity } => {
                if let Some(store) = &self.store {
                    let sig = self
                        .signature
                        .clone()
                        .unwrap_or_else(|| crate::signature_from_space(&space));
                    if let Ok(Some((snap, _similarity))) =
                        store.nearest(&sig, strategy.name(), min_similarity)
                    {
                        let snap = if snap.matches_space(space.max_nodes, &space.groups).is_ok() {
                            snap
                        } else {
                            snap.project_onto(space.max_nodes, &space.groups, space.lp.as_deref())
                        };
                        strategy.warm_start(crate::SurrogatePrior::from_snapshot(&snap));
                        warm_started = true;
                    }
                }
            }
        }
        Ok(crate::Session::from_parts(
            strategy,
            space,
            self.sinks,
            self.best_known,
            self.iters,
            self.resilience,
            self.max_in_flight,
            self.store,
            self.signature,
            warm_started,
        ))
    }

    /// Build the driver (the synchronous loop over an owned session).
    pub fn build(self) -> Result<TunerDriver, DriverBuildError> {
        Ok(TunerDriver { session: self.build_session()? })
    }
}

/// The canonical propose → execute → record loop.
///
/// Construction goes through the typed [`TunerDriver::builder`]:
///
/// ```
/// use adaphet_core::{ActionSpace, Observation, ResiliencePolicy, StrategyKind, TunerDriver};
///
/// let space = ActionSpace::unstructured(8);
/// let mut driver = TunerDriver::builder(&space)
///     .kind(StrategyKind::GpUcb)
///     .seed(0)
///     .iters(10)
///     .resilience(ResiliencePolicy::standard())
///     .build()
///     .unwrap();
/// driver.run_configured(|n| Observation::of(16.0 / n as f64 + n as f64));
/// assert_eq!(driver.history().len(), 10);
/// ```
pub struct TunerDriver {
    session: crate::Session,
}

impl TunerDriver {
    /// Start a typed configuration over `space`.
    pub fn builder(space: &ActionSpace) -> TunerDriverBuilder {
        TunerDriverBuilder {
            space: space.clone(),
            strategy: None,
            kind: None,
            seed: 0,
            iters: None,
            best_known: None,
            oracle_best: None,
            sinks: Vec::new(),
            resilience: ResiliencePolicy::default(),
            max_in_flight: usize::MAX,
            warm_start: crate::WarmStart::Cold,
            store: None,
            signature: None,
        }
    }

    /// Attach a telemetry sink after construction.
    pub fn add_sink(&mut self, sink: Box<dyn TelemetrySink>) {
        self.session.add_sink(sink);
    }

    /// The strategy driving the loop.
    pub fn strategy(&self) -> &dyn Strategy {
        self.session.strategy()
    }

    /// The live action space the next proposal will be drawn from.
    pub fn space(&self) -> &ActionSpace {
        self.session.space()
    }

    /// The active resilience policy.
    pub fn resilience(&self) -> &ResiliencePolicy {
        self.session.resilience()
    }

    /// Observations recorded so far (quarantined records removed).
    pub fn history(&self) -> &History {
        self.session.history()
    }

    /// Monotone count of iterations executed (never shrinks, unlike
    /// `history().len()` under quarantine).
    pub fn iterations_run(&self) -> usize {
        self.session.iterations_proposed()
    }

    /// The iteration budget configured via
    /// [`TunerDriverBuilder::iters`], if any.
    pub fn configured_iters(&self) -> Option<usize> {
        self.session.configured_iters()
    }

    /// The underlying propose/observe [`Session`](crate::Session).
    pub fn session(&self) -> &crate::Session {
        &self.session
    }

    /// The loop's convergence-health report (see
    /// [`Session::health`](crate::Session::health)).
    pub fn health(&self) -> crate::HealthReport {
        self.session.health()
    }

    /// Unwrap the driver into its [`Session`](crate::Session) (sinks and
    /// history travel with it) — the migration path from a synchronous
    /// loop to service-managed tuning.
    pub fn into_session(self) -> crate::Session {
        self.session
    }

    /// Consume the driver, returning the history (sinks are finished).
    ///
    /// # Panics
    ///
    /// Panics if a sink fails to finish: telemetry that was explicitly
    /// attached must not vanish silently. Call [`TunerDriver::finish`]
    /// first to handle the error gracefully (sinks latch their error and
    /// raise it only once, so a handled error is not raised again here).
    pub fn into_history(self) -> History {
        self.session.into_history()
    }

    /// Replace the live action space mid-run (platform fault: node death
    /// shrank the cluster, or a repair grew it back).
    ///
    /// `stale_from` names the first action whose past measurements are no
    /// longer trustworthy — for a death of rank `r`, every measurement
    /// that used `≥ r` nodes ran on the dead node. With
    /// [`ResiliencePolicy::quarantine`] on, those records are dropped;
    /// with [`ResiliencePolicy::rebaseline`] on and no surviving
    /// observation of the new all-nodes count, the next proposal is
    /// forced to `new_space.max_nodes` (emitting a `tuner.rebaseline`
    /// count) so bound mechanisms regain their reference. `note` is
    /// carried into the next [`IterationEvent::fault`] annotation.
    pub fn apply_platform_change(
        &mut self,
        new_space: &ActionSpace,
        stale_from: Option<usize>,
        note: impl Into<String>,
    ) {
        self.session.apply_platform_change(new_space, stale_from, note);
    }

    /// Run one iteration: propose, execute (re-measuring suspect
    /// observations up to the policy's retry budget), record, emit
    /// telemetry.
    ///
    /// This is exactly one [`Session::propose`](crate::Session::propose)
    /// resolved to completion: the executor is re-invoked while the
    /// session answers [`Observed::Retry`](crate::Observed), so behaviour
    /// is bit-identical to the pre-split owning loop.
    ///
    /// Proposals must satisfy the [`Strategy::propose`] range contract
    /// over the *live* space; the session checks it with a
    /// `debug_assert!` so violations surface in tests rather than
    /// corrupting downstream lookups.
    pub fn step<F: FnMut(usize) -> Observation>(&mut self, mut execute: F) -> StepOutcome {
        let proposal =
            self.session.propose().expect("the sequential loop never exceeds the ledger cap");
        let mut obs = execute(proposal.action);
        loop {
            match self
                .session
                .observe(proposal.ticket, obs)
                .expect("the ticket was just issued and stays in the ledger until recorded")
            {
                crate::Observed::Recorded(outcome) => return outcome,
                crate::Observed::Retry { action, .. } => obs = execute(action),
            }
        }
    }

    /// Run `iters` iterations through the same executor.
    pub fn run<F: FnMut(usize) -> Observation>(&mut self, iters: usize, mut execute: F) {
        for _ in 0..iters {
            self.step(&mut execute);
        }
    }

    /// Run the iteration budget configured via
    /// [`TunerDriverBuilder::iters`].
    ///
    /// # Panics
    ///
    /// Panics if no budget was configured.
    pub fn run_configured<F: FnMut(usize) -> Observation>(&mut self, execute: F) {
        let iters = self
            .session
            .configured_iters()
            .expect("no iteration budget configured (builder .iters())");
        self.run(iters, execute);
    }

    /// Finish all sinks (flush files). Every sink is finished even if an
    /// earlier one fails; the first error is returned. Idempotent: sinks
    /// surface a latched error once.
    pub fn finish(&mut self) -> io::Result<()> {
        self.session.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpDiscontinuous, StrategyKind};

    fn space() -> ActionSpace {
        ActionSpace::new(
            10,
            vec![(1, 5), (6, 10)],
            Some((1..=10).map(|n| 30.0 / n as f64).collect()),
        )
    }

    fn response(n: usize) -> f64 {
        30.0 / n as f64 + 0.8 * n as f64
    }

    fn driver_for(sp: &ActionSpace, strat: Box<dyn Strategy>) -> TunerDriver {
        TunerDriver::builder(sp).strategy(strat).build().unwrap()
    }

    #[test]
    fn driver_records_every_iteration() {
        let sp = space();
        let mut d = driver_for(&sp, Box::new(GpDiscontinuous::new(&sp)));
        d.run(15, |n| Observation::of(response(n)));
        assert_eq!(d.history().len(), 15);
        assert_eq!(d.iterations_run(), 15);
        let total: f64 = d.history().records().iter().map(|&(_, y)| y).sum();
        assert!((total - d.history().total_time()).abs() < 1e-12);
    }

    #[test]
    fn builder_requires_a_strategy() {
        let sp = space();
        match TunerDriver::builder(&sp).build() {
            Err(DriverBuildError::MissingStrategy) => {}
            other => panic!("expected MissingStrategy, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn builder_kind_and_configured_run() {
        let sp = space();
        let mut d = TunerDriver::builder(&sp)
            .kind(StrategyKind::GpDiscontinuous)
            .seed(7)
            .iters(6)
            .build()
            .unwrap();
        assert_eq!(d.configured_iters(), Some(6));
        d.run_configured(|n| Observation::of(response(n)));
        assert_eq!(d.history().len(), 6);
    }

    #[test]
    fn memory_sink_sees_one_event_per_iteration() {
        let sp = space();
        let sink = MemorySink::new();
        let mut d = TunerDriver::builder(&sp)
            .strategy(Box::new(GpDiscontinuous::new(&sp)))
            .sink(Box::new(sink.clone()))
            .best_known(response(6))
            .build()
            .unwrap();
        d.run(12, |n| Observation::of(response(n)));
        let events = sink.events();
        assert_eq!(events.len(), d.history().len());
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.iteration, i);
            assert_eq!(e.strategy, "GP-discontinuous");
            assert!(e.trace.is_some(), "sink wants traces by default");
            assert_eq!(e.regret.unwrap(), e.duration - response(6));
            assert_eq!(e.retries, 0);
            assert_eq!(e.fault, None, "fault-free runs carry no annotation");
        }
        // Cumulative time is monotone and matches the history total.
        let last = events.last().unwrap();
        assert!((last.cumulative_time - d.history().total_time()).abs() < 1e-9);
    }

    #[test]
    fn no_sink_means_no_explain_calls() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Spy {
            explains: Arc<AtomicUsize>,
        }
        impl Strategy for Spy {
            fn name(&self) -> &'static str {
                "spy"
            }
            fn propose(&mut self, _space: &ActionSpace, _h: &History) -> usize {
                1
            }
            fn explain(&self, _space: &ActionSpace, _h: &History) -> DecisionTrace {
                self.explains.fetch_add(1, Ordering::Relaxed);
                DecisionTrace::minimal("spy")
            }
        }
        let count = Arc::new(AtomicUsize::new(0));
        let sp = ActionSpace::unstructured(3);
        let mut d = driver_for(&sp, Box::new(Spy { explains: count.clone() }));
        d.run(5, |_| Observation::of(1.0));
        assert_eq!(count.load(Ordering::Relaxed), 0, "explain must not run without a sink");

        let mut d = TunerDriver::builder(&sp)
            .strategy(Box::new(Spy { explains: count.clone() }))
            .sink(Box::new(MemorySink::new()))
            .build()
            .unwrap();
        d.run(5, |_| Observation::of(1.0));
        assert_eq!(count.load(Ordering::Relaxed), 5, "explain runs once per iteration with a sink");
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_iteration() {
        let sp = space();
        let strat = StrategyKind::GpDiscontinuous.build(&sp, 0, None).unwrap();
        // Route through a shared buffer we can read back.
        struct Tee(Arc<Mutex<Vec<u8>>>);
        impl Write for Tee {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut d = TunerDriver::builder(&sp)
            .strategy(strat)
            .sink(Box::new(JsonlSink::new(Tee(buf.clone()))))
            .build()
            .unwrap();
        d.run(8, |n| Observation::of(response(n)));
        d.finish().expect("no I/O errors on an in-memory buffer");
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8);
        for line in lines {
            assert!(line.starts_with("{\"iteration\":"), "line: {line}");
            assert!(line.ends_with('}'), "line: {line}");
        }
    }

    /// A writer that fails every call, as a stand-in for a closed file.
    struct FailingWriter;
    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::new(io::ErrorKind::BrokenPipe, "writer closed"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn failing_jsonl_writer_surfaces_an_error_from_finish() {
        let sp = ActionSpace::unstructured(4);
        let mut d = TunerDriver::builder(&sp)
            .strategy(Box::new(crate::AllNodes::new(4)))
            .sink(Box::new(JsonlSink::new(FailingWriter)))
            .build()
            .unwrap();
        // The run itself is never aborted by telemetry failures...
        d.run(3, |_| Observation::of(1.0));
        assert_eq!(d.history().len(), 3);
        // ...but finish reports the first error instead of dropping it.
        let err = d.finish().expect_err("sink error must surface");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        // The latched error is raised exactly once.
        assert!(d.finish().is_ok(), "handled errors are not raised twice");
    }

    #[test]
    fn drivers_and_sinks_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<TunerDriver>();
        assert_send::<MemorySink>();
        assert_send::<JsonlSink<io::Sink>>();
        assert_send::<JsonlSink<BufWriter<File>>>();
        assert_send::<Box<dyn TelemetrySink>>();
        assert_send::<Box<dyn Strategy>>();
    }

    #[test]
    fn driver_with_sink_moves_across_threads() {
        let sp = space();
        let sink = MemorySink::new();
        let mut d = TunerDriver::builder(&sp)
            .strategy(Box::new(GpDiscontinuous::new(&sp)))
            .sink(Box::new(sink.clone()))
            .build()
            .unwrap();
        let handle = std::thread::spawn(move || {
            d.run(4, |n| Observation::of(response(n)));
            d.into_history().len()
        });
        assert_eq!(handle.join().unwrap(), 4);
        assert_eq!(sink.len(), 4);
    }

    #[test]
    fn phases_flow_into_events() {
        let sp = ActionSpace::unstructured(4);
        let sink = MemorySink::new();
        let mut d = TunerDriver::builder(&sp)
            .strategy(Box::new(crate::AllNodes::new(4)))
            .sink(Box::new(sink.clone()))
            .build()
            .unwrap();
        d.step(|_| {
            Observation::with_phases(
                2.0,
                vec![PhaseSlice::new("factorization", 1.5), PhaseSlice::new("solve", 0.5)],
            )
        });
        let e = &sink.events()[0];
        assert_eq!(e.phases.len(), 2);
        assert_eq!(e.phases[0].name, "factorization");
        assert_eq!(e.phases[1].seconds, 0.5);
    }

    #[test]
    fn json_escapes_and_nonfinite() {
        let e = IterationEvent {
            iteration: 0,
            strategy: "a\"b\\c".into(),
            action: 1,
            duration: f64::NAN,
            cumulative_time: 1.0,
            best_known: None,
            regret: None,
            phases: vec![],
            trace: None,
            phase_breakdown: None,
            retries: 0,
            fault: None,
            snapshot: None,
        };
        let j = e.to_json();
        assert!(j.contains("\"strategy\":\"a\\\"b\\\\c\""));
        assert!(j.contains("\"duration\":null"));
        assert!(j.contains("\"best_known\":null"));
        assert!(
            j.ends_with("\"phase_breakdown\":null,\"retries\":0,\"fault\":null,\"snapshot\":null}"),
            "{j}"
        );
    }

    #[test]
    fn fault_annotation_serializes_as_a_string() {
        let e = IterationEvent {
            iteration: 3,
            strategy: "s".into(),
            action: 2,
            duration: 1.0,
            cumulative_time: 4.0,
            best_known: None,
            regret: None,
            phases: vec![],
            trace: None,
            phase_breakdown: None,
            retries: 2,
            fault: Some("node-death:rank=5;rebaseline".into()),
            snapshot: None,
        };
        let j = e.to_json();
        assert!(
            j.ends_with(
                "\"retries\":2,\"fault\":\"node-death:rank=5;rebaseline\",\"snapshot\":null}"
            ),
            "{j}"
        );
    }

    #[test]
    fn posterior_snapshots_flow_into_events_once_the_gp_fits() {
        let sp = space();
        let sink = MemorySink::new();
        let mut d = TunerDriver::builder(&sp)
            .strategy(Box::new(GpDiscontinuous::new(&sp)))
            .sink(Box::new(sink.clone()))
            .build()
            .unwrap();
        d.run(12, |n| Observation::of(response(n)));
        let events = sink.events();
        assert!(events[0].snapshot.is_none(), "no surrogate before any data");
        let snap = events
            .iter()
            .rev()
            .find_map(|e| e.snapshot.as_ref())
            .expect("late iterations carry a posterior snapshot");
        // One point per action of the space, in order, with the LP bound.
        assert_eq!(snap.points.len(), sp.max_nodes);
        for (i, p) in snap.points.iter().enumerate() {
            assert_eq!(p.action, i + 1);
            assert!(p.sd >= 0.0);
            assert_eq!(p.lp_bound, sp.lp_at(p.action));
        }
        // The bound mechanism excludes hopeless left points and the
        // snapshot says so (y(10) ≈ 11, LP(n) = 30/n ≥ 11 for n ≤ 2).
        assert!(snap.points.iter().any(|p| p.excluded), "bound exclusions are visible");
    }

    #[test]
    fn no_sink_means_no_snapshot_computation() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Spy {
            snapshots: Arc<AtomicUsize>,
        }
        impl Strategy for Spy {
            fn name(&self) -> &'static str {
                "spy"
            }
            fn propose(&mut self, _space: &ActionSpace, _h: &History) -> usize {
                1
            }
            fn posterior_snapshot(
                &self,
                _space: &ActionSpace,
                _h: &History,
            ) -> Option<crate::PosteriorSnapshot> {
                self.snapshots.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
        let count = Arc::new(AtomicUsize::new(0));
        let sp = ActionSpace::unstructured(3);
        let mut d = driver_for(&sp, Box::new(Spy { snapshots: count.clone() }));
        d.run(5, |_| Observation::of(1.0));
        assert_eq!(count.load(Ordering::Relaxed), 0, "snapshot must not run without a sink");
    }

    #[test]
    fn breakdown_flows_into_events() {
        let sp = ActionSpace::unstructured(4);
        let sink = MemorySink::new();
        let mut d = TunerDriver::builder(&sp)
            .strategy(Box::new(crate::AllNodes::new(4)))
            .sink(Box::new(sink.clone()))
            .build()
            .unwrap();
        let breakdown = PhaseBreakdown {
            phases: vec![PhaseSlice::new("generation", 0.5), PhaseSlice::new("solve", 1.5)],
            groups: vec![GroupUtilization { name: "g:1-4".into(), busy_s: 6.0, idle_s: 2.0 }],
        };
        d.step(|_| Observation::with_breakdown(2.0, vec![], breakdown.clone()));
        let e = &sink.events()[0];
        assert_eq!(e.phase_breakdown.as_ref(), Some(&breakdown));
        let j = e.to_json();
        assert!(
            j.contains(
                "\"phase_breakdown\":{\"phases\":[{\"name\":\"generation\",\"seconds\":0.5},\
                 {\"name\":\"solve\",\"seconds\":1.5}],\"groups\":[{\"name\":\"g:1-4\",\
                 \"busy_s\":6,\"idle_s\":2,\"utilization\":0.75}]}"
            ),
            "{j}"
        );
    }

    #[test]
    fn timeout_suspects_are_retried_and_annotated() {
        let sp = ActionSpace::unstructured(4);
        let sink = MemorySink::new();
        let mut d = TunerDriver::builder(&sp)
            .strategy(Box::new(crate::AllNodes::new(4)))
            .sink(Box::new(sink.clone()))
            .resilience(ResiliencePolicy::standard())
            .build()
            .unwrap();
        // Three clean iterations establish the running estimate (1.0)...
        let mut calls = 0;
        d.run(3, |_| Observation::of(1.0));
        // ...then a 10× straggler measurement, whose retry comes back clean.
        d.step(|_| {
            calls += 1;
            if calls == 1 {
                Observation::of(10.0)
            } else {
                Observation::of(1.0)
            }
        });
        assert_eq!(calls, 2, "one retry after the timeout verdict");
        let e = &sink.events()[3];
        assert_eq!(e.retries, 1);
        assert_eq!(e.fault.as_deref(), Some("retry:1"));
        assert_eq!(e.duration, 1.0, "the retried measurement is what gets recorded");
        // The discarded attempt still cost wall-clock time: 3×1 + 10 + 1.
        assert!((e.cumulative_time - 14.0).abs() < 1e-12);
        assert_eq!(d.history().records().last(), Some(&(4, 1.0)));
    }

    #[test]
    fn outlier_suspects_need_per_action_history() {
        let sp = ActionSpace::unstructured(4);
        let mut d = TunerDriver::builder(&sp)
            .strategy(Box::new(crate::AllNodes::new(4)))
            .resilience(ResiliencePolicy {
                timeout_factor: None,
                max_retries: 1,
                outlier_mad_k: 8.0,
                quarantine: false,
                rebaseline: false,
            })
            .build()
            .unwrap();
        // Tight per-action history around 1.0 (4 points), then a spike.
        let mut durations = vec![1.0, 1.01, 0.99, 1.0, 50.0, 1.0].into_iter();
        let mut executions = 0;
        d.run(5, |_| {
            executions += 1;
            Observation::of(durations.next().unwrap())
        });
        // Iteration 5 measured 50.0 (an 8-MAD outlier of {≈1.0}×4), was
        // retried once, and recorded the clean re-measurement.
        assert_eq!(executions, 6);
        assert_eq!(d.history().records().last(), Some(&(4, 1.0)));
        assert_eq!(d.history().len(), 5);
    }

    #[test]
    fn default_policy_never_retries() {
        let sp = ActionSpace::unstructured(4);
        let mut d = driver_for(&sp, Box::new(crate::AllNodes::new(4)));
        let mut executions = 0;
        d.run(6, |_| {
            executions += 1;
            // Wild swings that would trip any enabled detector.
            Observation::of(if executions % 2 == 0 { 100.0 } else { 0.01 })
        });
        assert_eq!(executions, 6, "disabled policy must never re-execute");
    }

    #[test]
    fn platform_change_quarantines_and_rebaselines() {
        let sp = ActionSpace::unstructured(10);
        let sink = MemorySink::new();
        let mut d = TunerDriver::builder(&sp)
            .strategy(Box::new(crate::naive::DivideConquer::new(&sp)))
            .sink(Box::new(sink.clone()))
            .resilience(ResiliencePolicy::standard())
            .build()
            .unwrap();
        d.run(6, |n| Observation::of(30.0 / n as f64 + n as f64));
        let before = d.history().len();
        assert_eq!(before, 6);
        // Rank 6 dies: actions ≥ 6 were measured with the dead node.
        let survivor = ActionSpace::unstructured(5);
        d.apply_platform_change(&survivor, Some(6), "node-death:rank=6");
        assert!(d.history().len() < before, "stale records quarantined");
        assert!(d.history().records().iter().all(|&(a, _)| a < 6));
        // The next step is forced to the new all-nodes count and carries
        // the full annotation.
        let out = d.step(|n| Observation::of(30.0 / n as f64 + n as f64));
        assert_eq!(out.action, 5, "rebaseline forces the live maximum");
        let e = sink.events().last().unwrap().clone();
        let fault = e.fault.expect("faulted iteration must be annotated");
        assert!(fault.starts_with("node-death:rank=6"), "{fault}");
        assert!(fault.contains("quarantine:"), "{fault}");
        assert!(fault.contains("rebaseline"), "{fault}");
        // Subsequent iterations are unremarkable again.
        let _ = d.step(|n| Observation::of(30.0 / n as f64 + n as f64));
        assert_eq!(sink.events().last().unwrap().fault, None);
    }

    #[test]
    fn platform_change_without_policy_keeps_history() {
        let sp = ActionSpace::unstructured(10);
        let mut d = driver_for(&sp, Box::new(crate::naive::DivideConquer::new(&sp)));
        d.run(6, |n| Observation::of(30.0 / n as f64 + n as f64));
        let before = d.history().clone();
        let survivor = ActionSpace::unstructured(5);
        d.apply_platform_change(&survivor, Some(6), "node-death:rank=6");
        assert_eq!(d.history(), &before, "no quarantine without the policy");
        assert_eq!(d.space().max_nodes, 5, "the live space still shrinks");
        // Strategies obey the live space even without any resilience.
        for _ in 0..8 {
            let out = d.step(|n| Observation::of(30.0 / n as f64 + n as f64));
            assert!(out.action <= 5, "proposal {} exceeds live space", out.action);
        }
    }

    #[test]
    fn iteration_counter_survives_quarantine() {
        let sp = ActionSpace::unstructured(8);
        let sink = MemorySink::new();
        let mut d = TunerDriver::builder(&sp)
            .strategy(Box::new(crate::naive::DivideConquer::new(&sp)))
            .sink(Box::new(sink.clone()))
            .resilience(ResiliencePolicy::standard())
            .build()
            .unwrap();
        d.run(4, |n| Observation::of(n as f64));
        let survivor = ActionSpace::unstructured(3);
        d.apply_platform_change(&survivor, Some(4), "node-death:rank=4");
        d.run(2, |n| Observation::of(n as f64));
        // Event iteration indices keep counting 0..6 even though the
        // history shrank under quarantine.
        let idx: Vec<usize> = sink.events().iter().map(|e| e.iteration).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(d.iterations_run(), 6);
    }
}
