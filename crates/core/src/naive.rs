//! The paper's two naive heuristics: divide-and-conquer dichotomy and the
//! Right-Left walk.

use crate::{ActionSpace, History, Strategy};

/// Divide-and-conquer dichotomy (paper Section IV-A).
///
/// The interval is split in two; the midpoint of each half is measured;
/// the half with the lower measurement becomes the new interval. Converges
/// in `O(log N)` measurements on clean convex curves, but a single noisy
/// comparison sends it into the wrong half forever — the non-resilience
/// the paper observes in scenario (n).
#[derive(Debug, Clone)]
pub struct DivideConquer {
    lo: usize,
    hi: usize,
    /// Points queued for measurement (left midpoint, right midpoint).
    pending: Vec<usize>,
    /// Measurements collected for the current split: (action, value).
    split: Vec<(usize, f64)>,
    awaiting: Option<usize>,
    converged: Option<usize>,
}

impl DivideConquer {
    /// Search over the full action space.
    pub fn new(space: &ActionSpace) -> Self {
        DivideConquer {
            lo: 1,
            hi: space.max_nodes,
            pending: Vec::new(),
            split: Vec::new(),
            awaiting: None,
            converged: None,
        }
    }
}

impl Strategy for DivideConquer {
    fn name(&self) -> &'static str {
        "DC"
    }

    fn propose(&mut self, space: &ActionSpace, hist: &History) -> usize {
        let n = space.max_nodes;
        // Track the live space: after node loss the interval (and any
        // queued probes or converged choice) must fold back inside it.
        if self.hi > n {
            self.hi = n;
            self.lo = self.lo.min(n);
            self.pending.retain(|&a| a <= n);
            self.split.retain(|&(a, _)| a <= n);
            if self.converged.is_some_and(|b| b > n) {
                self.converged = None;
            }
        }
        // Ingest the answer to the previous question. On a quarantined
        // post-fault history the probe's record may have been dropped —
        // then the question is simply re-asked by the split logic below.
        if let Some(a) = self.awaiting.take() {
            if let Some(&(la, y)) = hist.records().last() {
                if la == a {
                    self.split.push((a, y));
                }
            }
        }
        if let Some(best) = self.converged {
            return best;
        }
        if self.pending.is_empty() && self.split.len() == 2 {
            // Decide the half. split[0] is the left midpoint.
            let (left, yl) = self.split[0];
            let (right, yr) = self.split[1];
            let mid = (self.lo + self.hi) / 2;
            if yl <= yr {
                self.hi = mid;
            } else {
                self.lo = mid + 1;
            }
            let _ = (left, right);
            self.split.clear();
        }
        if self.pending.is_empty() {
            if self.hi - self.lo < 2 {
                // Interval exhausted: exploit the better endpoint (or the
                // overall best observation within the final interval).
                let best = (self.lo..=self.hi)
                    .filter_map(|a| hist.mean_for(a).map(|m| (a, m)))
                    .min_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
                    .map(|(a, _)| a)
                    .unwrap_or(self.lo);
                self.converged = Some(best);
                return best;
            }
            let mid = (self.lo + self.hi) / 2;
            let m1 = (self.lo + mid) / 2;
            let m2 = ((mid + 1) + self.hi) / 2;
            self.pending.push(m1);
            if m2 != m1 {
                self.pending.push(m2);
            }
        }
        let next = self.pending.remove(0);
        self.awaiting = Some(next);
        next
    }
}

/// The Right-Left heuristic (paper Section IV-A): start from all nodes and
/// walk left while the left neighbour measures faster; stop (and exploit)
/// at the first non-improvement. Works only when the right side of the
/// curve is monotone — local minima (scenario (p): 128 beats 127) or a
/// single noisy sample stop it early.
#[derive(Debug, Clone)]
pub struct RightLeft {
    n: usize,
    current: usize,
    stopped: bool,
}

impl RightLeft {
    /// Walk from `space.max_nodes` downwards.
    pub fn new(space: &ActionSpace) -> Self {
        RightLeft { n: space.max_nodes, current: space.max_nodes, stopped: false }
    }
}

impl Strategy for RightLeft {
    fn name(&self) -> &'static str {
        "Right-Left"
    }

    fn propose(&mut self, space: &ActionSpace, hist: &History) -> usize {
        // Node loss moves the walk's ceiling (and any settled choice)
        // down with the live platform.
        if self.n > space.max_nodes {
            self.n = space.max_nodes;
            self.current = self.current.min(self.n);
        }
        if hist.is_empty() {
            self.current = self.n;
            return self.n;
        }
        if self.stopped {
            return self.current;
        }
        let last = hist.records().last().copied().expect("non-empty");
        if last.0 == self.current && self.current < self.n {
            // We just probed one step left of the previous best. On a
            // history this strategy did not build itself the right
            // neighbour may never have been measured — then there is
            // nothing to compare against and the walk just continues.
            let prev = self.current + 1;
            match hist.first_for(prev) {
                Some(y_prev) if last.1 >= y_prev => {
                    // Worse: settle on the previous point.
                    self.stopped = true;
                    self.current = prev;
                    return prev;
                }
                _ => {} // improvement (or no reference): keep walking
            }
        }
        if self.current == 1 {
            self.stopped = true;
            return 1;
        }
        self.current -= 1;
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a strategy against a deterministic response curve.
    fn drive(
        strat: &mut dyn Strategy,
        space: &ActionSpace,
        f: impl Fn(usize) -> f64,
        iters: usize,
    ) -> History {
        let mut h = History::new();
        for _ in 0..iters {
            let a = strat.propose(space, &h);
            h.record(a, f(a));
        }
        h
    }

    #[test]
    fn dc_finds_minimum_of_clean_convex_curve() {
        let space = ActionSpace::unstructured(32);
        let mut dc = DivideConquer::new(&space);
        let f = |n: usize| (n as f64 - 11.0).powi(2) + 5.0;
        let h = drive(&mut dc, &space, f, 30);
        let last = h.records().last().unwrap().0;
        assert!((10..=12).contains(&last), "converged to {last}");
    }

    #[test]
    fn dc_converges_and_exploits() {
        let space = ActionSpace::unstructured(16);
        let mut dc = DivideConquer::new(&space);
        let f = |n: usize| n as f64; // best is 1
        let h = drive(&mut dc, &space, f, 25);
        // After convergence the same action repeats.
        let tail: Vec<usize> = h.records()[20..].iter().map(|r| r.0).collect();
        assert!(tail.windows(2).all(|w| w[0] == w[1]), "not exploiting: {tail:?}");
        assert!(tail[0] <= 2, "picked {}", tail[0]);
    }

    #[test]
    fn dc_is_misled_by_one_bad_measurement() {
        // The non-resilience the paper describes: corrupt the very first
        // midpoint measurement and DC commits to the wrong half.
        let space = ActionSpace::unstructured(32);
        let mut dc = DivideConquer::new(&space);
        let mut h = History::new();
        let truth = |n: usize| (n as f64 - 4.0).powi(2); // best at 4 (left half)
        let mut first = true;
        for _ in 0..25 {
            let a = dc.propose(&space, &h);
            let mut y = truth(a);
            if first {
                y += 1e6; // outlier on the left midpoint
                first = false;
            }
            h.record(a, y);
        }
        let last = h.records().last().unwrap().0;
        assert!(last > 8, "should have been misled to the right, got {last}");
    }

    #[test]
    fn right_left_descends_monotone_tail() {
        // Curve decreasing toward 6 then increasing: walking from 12 stops
        // around the minimum.
        let space = ActionSpace::unstructured(12);
        let mut rl = RightLeft::new(&space);
        let f = |n: usize| (n as f64 - 6.0).abs() + 1.0;
        let h = drive(&mut rl, &space, f, 20);
        let last = h.records().last().unwrap().0;
        assert!((6..=7).contains(&last), "stopped at {last}");
    }

    #[test]
    fn right_left_stuck_at_local_minimum() {
        // The paper's scenario (p): using all 12 beats 11, so Right-Left
        // never discovers the true optimum at 6.
        let space = ActionSpace::unstructured(12);
        let mut rl = RightLeft::new(&space);
        let f = |n: usize| match n {
            12 => 10.0,
            11 => 11.0, // immediate wall
            6 => 1.0,   // unreachable optimum
            _ => 10.5,
        };
        let h = drive(&mut rl, &space, f, 15);
        let last = h.records().last().unwrap().0;
        assert_eq!(last, 12, "should settle on all nodes");
        assert_eq!(h.count_for(6), 0, "never explores the optimum");
    }

    #[test]
    fn right_left_walks_to_one_on_increasing_curve() {
        let space = ActionSpace::unstructured(8);
        let mut rl = RightLeft::new(&space);
        let f = |n: usize| n as f64; // fewer is always better
        let h = drive(&mut rl, &space, f, 12);
        assert_eq!(h.records().last().unwrap().0, 1);
    }

    #[test]
    fn both_heuristics_fold_into_a_shrunken_live_space() {
        let full = ActionSpace::unstructured(16);
        let live = ActionSpace::unstructured(6);
        let f = |n: usize| n as f64;
        let mut dc = DivideConquer::new(&full);
        let mut rl = RightLeft::new(&full);
        let mut h = History::new();
        for _ in 0..4 {
            let a = dc.propose(&full, &h);
            h.record(a, f(a));
        }
        // The platform shrinks to 6 nodes mid-run: every further proposal
        // must stay inside the live space.
        for _ in 0..12 {
            let a = dc.propose(&live, &h);
            assert!((1..=6).contains(&a), "DC proposed {a} on a 6-node platform");
            h.record(a, f(a));
        }
        let mut h2 = History::new();
        for _ in 0..3 {
            let a = rl.propose(&full, &h2);
            h2.record(a, f(a));
        }
        for _ in 0..12 {
            let a = rl.propose(&live, &h2);
            assert!((1..=6).contains(&a), "Right-Left proposed {a} on a 6-node platform");
            h2.record(a, f(a));
        }
    }
}
