//! Non-stationary extension (the paper's Section VIII: "further
//! investigation is required to propose or adapt the GP strategies to
//! non-stationary scenarios").
//!
//! [`DriftReset`] wraps any strategy with a simple change detector: when
//! the recent observations of the incumbent best action drift by more than
//! a threshold from their historical level, the inner strategy is rebuilt
//! and only the post-change history is shown to it — so a workload change
//! (e.g. the matrix size or the network load shifting mid-run) triggers
//! fresh exploration instead of poisoned exploitation.

use crate::{ActionSpace, History, Strategy};

/// Wraps a strategy with drift detection and reset.
pub struct DriftReset {
    factory: Box<dyn FnMut() -> Box<dyn Strategy> + Send>,
    inner: Box<dyn Strategy>,
    /// Observations per side of the comparison window.
    pub window: usize,
    /// Relative mean shift that triggers a reset.
    pub threshold: f64,
    /// Iteration index where the current epoch began.
    epoch_start: usize,
    resets: usize,
}

impl DriftReset {
    /// Wrap strategies produced by `factory` (called once immediately and
    /// once per reset).
    pub fn new(
        mut factory: impl FnMut() -> Box<dyn Strategy> + Send + 'static,
        window: usize,
        threshold: f64,
    ) -> Self {
        assert!(window >= 2, "need at least two observations per window");
        assert!(threshold > 0.0, "threshold must be positive");
        let inner = factory();
        DriftReset {
            factory: Box::new(factory),
            inner,
            window,
            threshold,
            epoch_start: 0,
            resets: 0,
        }
    }

    /// How many resets have fired so far.
    pub fn resets(&self) -> usize {
        self.resets
    }

    /// The current epoch's view of the history.
    fn epoch_history(&self, hist: &History) -> History {
        let mut h = History::new();
        for &(a, y) in &hist.records()[self.epoch_start.min(hist.len())..] {
            h.record(a, y);
        }
        h
    }

    /// Detect drift on the action with the most epoch observations: the
    /// mean of its last `window` observations vs. the mean of its earlier
    /// ones.
    fn drifted(&self, epoch: &History) -> bool {
        let Some(best) = epoch.grouped().into_iter().max_by_key(|(_, v)| v.len()).map(|(a, _)| a)
        else {
            return false;
        };
        let vs = epoch.values_for(best);
        if vs.len() < 2 * self.window {
            return false;
        }
        let (old, recent) = vs.split_at(vs.len() - self.window);
        let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
        let m_old = mean(old);
        let m_new = mean(recent);
        (m_new - m_old).abs() > self.threshold * m_old.abs().max(1e-12)
    }
}

impl Strategy for DriftReset {
    fn name(&self) -> &'static str {
        "drift-reset"
    }

    fn propose(&mut self, space: &ActionSpace, hist: &History) -> usize {
        let epoch = self.epoch_history(hist);
        if self.drifted(&epoch) {
            self.inner = (self.factory)();
            self.epoch_start = hist.len();
            self.resets += 1;
            return self.inner.propose(space, &History::new());
        }
        self.inner.propose(space, &epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActionSpace, GpDiscontinuous};

    fn gp_space(n: usize) -> ActionSpace {
        let lp: Vec<f64> = (1..=n).map(|k| 40.0 / k as f64).collect();
        ActionSpace::new(n, vec![], Some(lp))
    }

    fn gp_factory(n: usize) -> impl FnMut() -> Box<dyn Strategy> + Send {
        move || Box::new(GpDiscontinuous::new(&gp_space(n)))
    }

    #[test]
    fn no_reset_on_stationary_workload() {
        let n = 10;
        let space = gp_space(n);
        let mut s = DriftReset::new(gp_factory(n), 3, 0.3);
        let mut h = History::new();
        let f = |a: usize| 40.0 / a as f64 + 0.8 * a as f64;
        for _ in 0..60 {
            let a = s.propose(&space, &h);
            h.record(a, f(a));
        }
        assert_eq!(s.resets(), 0, "stationary run must not reset");
    }

    #[test]
    fn reset_fires_on_level_shift_and_readapts() {
        let n = 12;
        let space = gp_space(n);
        let mut s = DriftReset::new(gp_factory(n), 3, 0.3);
        let mut h = History::new();
        // Phase 1: optimum at 6. Phase 2 (iteration 60+): everything 3x
        // slower except a new optimum at 11.
        let f1 = |a: usize| 40.0 / a as f64 + 1.0 * (a as f64 - 6.0).abs();
        let f2 = |a: usize| 30.0 + 2.0 * (a as f64 - 11.0).abs();
        for it in 0..140 {
            let a = s.propose(&space, &h);
            let y = if it < 60 { f1(a) } else { f2(a) };
            h.record(a, y);
        }
        assert!(s.resets() >= 1, "level shift must trigger a reset");
        let late: Vec<usize> = h.records()[120..].iter().map(|r| r.0).collect();
        let near = late.iter().filter(|&&a| (10..=12).contains(&a)).count();
        assert!(near * 2 > late.len(), "post-shift optimum not found: {late:?}");
    }

    #[test]
    fn epoch_history_hides_pre_reset_records() {
        let space = gp_space(8);
        let mut s = DriftReset::new(gp_factory(8), 2, 0.2);
        let mut h = History::new();
        // Hammer one action with a sudden shift to force a reset.
        for it in 0..20 {
            let _ = s.propose(&space, &h);
            // Override the played action: feed constant action 8 so the
            // detector sees the shift quickly.
            h.record(8, if it < 10 { 5.0 } else { 50.0 });
        }
        assert!(s.resets() >= 1);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn tiny_window_rejected() {
        let _ = DriftReset::new(gp_factory(4), 1, 0.5);
    }
}
