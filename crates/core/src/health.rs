//! Per-session convergence health: signals, a declarative rule engine,
//! and hysteresis.
//!
//! The paper's premise is *quickly learning how to run fast* — so the
//! first question an operator asks of a long-running session is "is it
//! still learning?". [`HealthTracker`] answers it from the iteration
//! stream alone, with arithmetic cheap enough to run unconditionally on
//! the session hot path (no surrogate refits, no allocation beyond a
//! bounded window):
//!
//! * **regret slope** — least-squares slope of the recent durations,
//!   normalized by their mean (a unitless per-record trend);
//! * **stall** — records since the session best last improved;
//! * **exploration collapse** — the strategy's posterior sd ceiling
//!   (taken opportunistically from snapshots the session already
//!   computes) against the LP lower bound gap;
//! * **retry / fault pressure** — the resilience policy's retry and
//!   quarantine verdicts inside the window;
//! * **warm-start effectiveness** — whether a warm-started session
//!   reached the best-known band faster than the cold baseline estimate.
//!
//! A small declarative [rule table](HealthTracker::rules) folds the
//! signals into [`HealthState`] (`Ok / Warn(reason) / Stalled /
//! Diverging`); the first matching rule wins, so severity is the table
//! order. Transitions are damped by hysteresis: a candidate state must
//! win [`HealthPolicy::hysteresis`] consecutive evaluations before it
//! becomes the published state (and increments the
//! `tuner.health.transition` counter).

use crate::strategy::PosteriorSnapshot;
use std::collections::VecDeque;

/// Published convergence-health state of a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealthState {
    /// Converging normally (or too little data to say otherwise).
    Ok,
    /// Something needs operator attention; the payload is a stable
    /// machine-readable reason slug (`"fault-pressure"`,
    /// `"retry-pressure"`, `"exploration-collapse"`,
    /// `"warm-start-ineffective"`).
    Warn(String),
    /// The best-known band is out of reach and the best has not improved
    /// in [`HealthPolicy::stall_k`] records.
    Stalled,
    /// Recent durations are trending up.
    Diverging,
}

impl HealthState {
    /// Canonical lowercase state name — the wire enum string, pinned by
    /// the service golden tests.
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthState::Ok => "ok",
            HealthState::Warn(_) => "warn",
            HealthState::Stalled => "stalled",
            HealthState::Diverging => "diverging",
        }
    }

    /// The warn reason slug, when the state carries one.
    pub fn reason(&self) -> Option<&str> {
        match self {
            HealthState::Warn(r) => Some(r.as_str()),
            _ => None,
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason() {
            Some(r) => write!(f, "warn({r})"),
            None => f.write_str(self.as_str()),
        }
    }
}

/// Thresholds of the health rule engine.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthPolicy {
    /// Sliding-window length, in recorded observations, over which the
    /// slope / retry / fault signals are computed.
    pub window: usize,
    /// Records without a new session best before the stall rule fires.
    pub stall_k: usize,
    /// Fractional band over the best-known duration inside which the
    /// session counts as converged (`duration <= (1 + band) * best_known`).
    pub band: f64,
    /// Normalized slope (per record, relative to the window mean) above
    /// which the divergence rule fires; requires a full window.
    pub diverge_slope: f64,
    /// Retry verdicts inside the window before the retry-pressure rule
    /// fires.
    pub warn_retries: usize,
    /// Posterior sd ceiling, relative to the session best, below which
    /// exploration counts as collapsed (when the LP gap says the optimum
    /// may not have been found yet).
    pub sd_collapse: f64,
    /// Records a warm-started session gets to reach the best-known band
    /// before the warm-start-ineffective rule fires; 0 means "derive from
    /// the action-space size" (`max(8, max_nodes / 2)`), the cold
    /// baseline estimate.
    pub cold_baseline: usize,
    /// Consecutive evaluations a candidate state must win before it is
    /// published (1 = no damping).
    pub hysteresis: usize,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            window: 12,
            stall_k: 10,
            band: 0.10,
            diverge_slope: 0.02,
            warn_retries: 2,
            sd_collapse: 1e-3,
            cold_baseline: 0,
            hysteresis: 2,
        }
    }
}

/// The raw signals the rule engine folds — exposed so services can put
/// them on the wire next to the folded state.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSignals {
    /// Total observations recorded.
    pub records: usize,
    /// Records since the session best last improved.
    pub since_best: usize,
    /// Normalized least-squares slope of the window durations (per
    /// record, relative to the window mean); `None` until the window is
    /// full.
    pub regret_slope: Option<f64>,
    /// Retry verdicts attached to records inside the window.
    pub retries_window: usize,
    /// Fault-annotated records (node death, quarantine, rebaseline)
    /// inside the window.
    pub faults_window: usize,
    /// Largest posterior sd from the most recent snapshot the session
    /// computed, when a surrogate strategy produced one.
    pub posterior_sd_max: Option<f64>,
    /// Gap between the session best and the LP lower bound's minimum,
    /// when the space carries an LP curve.
    pub lp_gap: Option<f64>,
    /// Whether the latest record landed inside the best-known band
    /// (`None` without a best-known reference).
    pub in_band: Option<bool>,
    /// First record index (1-based) that landed inside the best-known
    /// band, `None` until it happens.
    pub band_record: Option<usize>,
    /// Whether the session's surrogate was warm-started.
    pub warm_started: bool,
}

/// One published health evaluation: the folded state plus the signals
/// behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// The folded, hysteresis-damped state.
    pub state: HealthState,
    /// The signals the rule engine saw.
    pub signals: HealthSignals,
    /// Published state transitions so far (0 while the session has only
    /// ever been `Ok`).
    pub transitions: u64,
}

struct WindowRecord {
    duration: f64,
    retries: usize,
    faulted: bool,
}

/// One rule of the engine: a name (the warn reason slug where relevant)
/// and a predicate from signals to a state. Rules are evaluated in table
/// order; the first `Some` wins.
struct Rule {
    #[allow(dead_code)] // documentation + future introspection
    name: &'static str,
    check: fn(&HealthSignals, &HealthPolicy) -> Option<HealthState>,
}

/// The declarative rule table, severity-ordered (see DESIGN.md §9 for
/// the prose semantics of each rule).
const RULES: &[Rule] = &[
    Rule {
        name: "diverging",
        check: |s, p| match s.regret_slope {
            Some(slope) if slope > p.diverge_slope => Some(HealthState::Diverging),
            _ => None,
        },
    },
    Rule {
        name: "stalled",
        check: |s, p| {
            (s.since_best >= p.stall_k && s.in_band == Some(false)).then_some(HealthState::Stalled)
        },
    },
    Rule {
        name: "fault-pressure",
        check: |s, _| (s.faults_window > 0).then(|| HealthState::Warn("fault-pressure".into())),
    },
    Rule {
        name: "retry-pressure",
        check: |s, p| {
            (s.retries_window >= p.warn_retries).then(|| HealthState::Warn("retry-pressure".into()))
        },
    },
    Rule {
        name: "exploration-collapse",
        check: |s, p| match (s.posterior_sd_max, s.lp_gap) {
            (Some(sd), Some(gap))
                if s.in_band == Some(false) && gap > 0.0 && sd < p.sd_collapse * gap =>
            {
                Some(HealthState::Warn("exploration-collapse".into()))
            }
            _ => None,
        },
    },
    Rule {
        name: "warm-start-ineffective",
        check: |s, p| {
            (s.warm_started
                && s.in_band.is_some()
                && s.band_record.is_none()
                && s.records > p.cold_baseline)
                .then(|| HealthState::Warn("warm-start-ineffective".into()))
        },
    },
];

/// Derives a session's convergence-health state from its iteration
/// stream. Owned by [`Session`](crate::Session); fed on every record /
/// retry / snapshot, queried via [`Session::health`](crate::Session::health).
pub struct HealthTracker {
    policy: HealthPolicy,
    window: VecDeque<WindowRecord>,
    records: usize,
    best: Option<f64>,
    since_best: usize,
    best_known: Option<f64>,
    lp_min: Option<f64>,
    warm_started: bool,
    posterior_sd_max: Option<f64>,
    in_band: Option<bool>,
    band_record: Option<usize>,
    state: HealthState,
    /// Hysteresis: the candidate state currently accumulating wins, and
    /// how many consecutive evaluations it has won.
    candidate: Option<(HealthState, usize)>,
    transitions: u64,
}

impl HealthTracker {
    /// A fresh tracker in state `Ok`. `cold_baseline = 0` in the policy
    /// resolves to `max(8, max_nodes / 2)` here.
    pub fn new(
        mut policy: HealthPolicy,
        max_nodes: usize,
        best_known: Option<f64>,
        lp_min: Option<f64>,
        warm_started: bool,
    ) -> Self {
        policy.window = policy.window.max(2);
        policy.hysteresis = policy.hysteresis.max(1);
        if policy.cold_baseline == 0 {
            policy.cold_baseline = 8.max(max_nodes / 2);
        }
        HealthTracker {
            policy,
            window: VecDeque::new(),
            records: 0,
            best: None,
            since_best: 0,
            best_known,
            lp_min,
            warm_started,
            posterior_sd_max: None,
            in_band: None,
            band_record: None,
            state: HealthState::Ok,
            candidate: None,
            transitions: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// The rule names, in severity order (for docs and introspection).
    pub fn rules() -> Vec<&'static str> {
        RULES.iter().map(|r| r.name).collect()
    }

    /// Feed one recorded observation: its duration, how many retries the
    /// resilience policy spent on it, and whether it carried a fault
    /// annotation (node death, quarantine, rebaseline). Re-evaluates the
    /// state.
    pub fn on_record(&mut self, duration: f64, retries: usize, faulted: bool) {
        self.records += 1;
        match self.best {
            Some(b) if duration >= b => self.since_best += 1,
            _ => {
                self.best = Some(duration);
                self.since_best = 0;
            }
        }
        if let Some(bk) = self.best_known {
            let inside = duration <= (1.0 + self.policy.band) * bk;
            self.in_band = Some(inside);
            if inside && self.band_record.is_none() {
                self.band_record = Some(self.records);
            }
        }
        if self.window.len() >= self.policy.window {
            self.window.pop_front();
        }
        self.window.push_back(WindowRecord { duration, retries, faulted });
        self.evaluate();
    }

    /// Feed the posterior snapshot the session computed anyway (never
    /// triggers surrogate work of its own): retains the sd ceiling.
    pub fn on_posterior(&mut self, snapshot: &PosteriorSnapshot) {
        let sd_max = snapshot.points.iter().map(|p| p.sd).fold(f64::NEG_INFINITY, f64::max);
        if sd_max.is_finite() {
            self.posterior_sd_max = Some(sd_max);
        }
    }

    /// The current signals (what [`report`](Self::report) embeds).
    pub fn signals(&self) -> HealthSignals {
        HealthSignals {
            records: self.records,
            since_best: self.since_best,
            regret_slope: self.slope(),
            retries_window: self.window.iter().map(|r| r.retries).sum(),
            faults_window: self.window.iter().filter(|r| r.faulted).count(),
            posterior_sd_max: self.posterior_sd_max,
            lp_gap: match (self.best, self.lp_min) {
                (Some(b), Some(lp)) => Some(b - lp),
                _ => None,
            },
            in_band: self.in_band,
            band_record: self.band_record,
            warm_started: self.warm_started,
        }
    }

    /// The published state (hysteresis-damped).
    pub fn state(&self) -> &HealthState {
        &self.state
    }

    /// Published transitions so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// The full report: state, signals, transition count.
    pub fn report(&self) -> HealthReport {
        HealthReport {
            state: self.state.clone(),
            signals: self.signals(),
            transitions: self.transitions,
        }
    }

    /// Normalized least-squares slope of the window durations; `None`
    /// until the window is full (a short window's trend is noise).
    fn slope(&self) -> Option<f64> {
        if self.window.len() < self.policy.window {
            return None;
        }
        let n = self.window.len() as f64;
        let mean_x = (n - 1.0) / 2.0;
        let mean_y = self.window.iter().map(|r| r.duration).sum::<f64>() / n;
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, r) in self.window.iter().enumerate() {
            let dx = i as f64 - mean_x;
            num += dx * (r.duration - mean_y);
            den += dx * dx;
        }
        if den <= 0.0 || mean_y.abs() < f64::EPSILON {
            return Some(0.0);
        }
        Some(num / den / mean_y.abs())
    }

    /// Fold the rule table over the current signals and apply hysteresis.
    fn evaluate(&mut self) {
        let signals = self.signals();
        let verdict =
            RULES.iter().find_map(|r| (r.check)(&signals, &self.policy)).unwrap_or(HealthState::Ok);
        if verdict == self.state {
            self.candidate = None;
            return;
        }
        let streak = match self.candidate.take() {
            Some((c, streak)) if c == verdict => streak + 1,
            _ => 1,
        };
        if streak >= self.policy.hysteresis {
            self.state = verdict;
            self.transitions += 1;
            adaphet_metrics::global().add("tuner.health.transition", 1.0);
        } else {
            self.candidate = Some((verdict, streak));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> HealthTracker {
        HealthTracker::new(HealthPolicy::default(), 10, Some(4.0), Some(3.0), false)
    }

    #[test]
    fn starts_ok_and_stays_ok_on_improving_durations() {
        let mut t = tracker();
        for i in 0..30 {
            t.on_record(10.0 - 0.2 * i as f64, 0, false);
        }
        assert_eq!(*t.state(), HealthState::Ok);
        assert_eq!(t.transitions(), 0);
        let s = t.signals();
        assert_eq!(s.since_best, 0);
        assert!(s.regret_slope.unwrap() < 0.0);
    }

    #[test]
    fn rising_durations_diverge_and_recover() {
        let mut t = tracker();
        for _ in 0..12 {
            t.on_record(4.1, 0, false); // in-band plateau
        }
        assert_eq!(*t.state(), HealthState::Ok);
        for i in 0..14 {
            t.on_record(5.0 + 0.8 * i as f64, 0, false);
        }
        assert_eq!(*t.state(), HealthState::Diverging, "{:?}", t.signals());
        // Back to flat: slope decays, state recovers through hysteresis.
        for _ in 0..20 {
            t.on_record(4.0, 0, false);
        }
        assert_eq!(*t.state(), HealthState::Ok);
        assert!(t.transitions() >= 2);
    }

    #[test]
    fn no_new_best_above_band_is_stalled() {
        let mut t = tracker();
        t.on_record(6.0, 0, false); // best = 6, band is 4.4
        for _ in 0..15 {
            t.on_record(6.5, 0, false);
        }
        assert_eq!(*t.state(), HealthState::Stalled, "{:?}", t.signals());
        // A best inside the band clears the stall.
        t.on_record(4.2, 0, false);
        t.on_record(4.2, 0, false);
        assert_eq!(*t.state(), HealthState::Ok);
    }

    #[test]
    fn converged_sessions_do_not_stall() {
        // In-band plateau: no new best, but nothing to find either.
        let mut t = tracker();
        for _ in 0..40 {
            t.on_record(4.1, 0, false);
        }
        assert_eq!(*t.state(), HealthState::Ok, "{:?}", t.signals());
    }

    #[test]
    fn faults_warn_then_age_out() {
        let mut t = tracker();
        for _ in 0..12 {
            t.on_record(4.1, 0, false);
        }
        t.on_record(5.0, 0, true); // quarantine/rebaseline record
        t.on_record(4.1, 0, false);
        t.on_record(4.1, 0, false);
        assert_eq!(*t.state(), HealthState::Warn("fault-pressure".into()));
        for _ in 0..14 {
            t.on_record(4.1, 0, false);
        }
        assert_eq!(*t.state(), HealthState::Ok, "fault aged out of the window");
        assert_eq!(t.transitions(), 2);
    }

    #[test]
    fn retry_pressure_warns() {
        let mut t = tracker();
        for _ in 0..5 {
            t.on_record(4.1, 0, false);
        }
        t.on_record(4.1, 1, false);
        t.on_record(4.1, 1, false);
        t.on_record(4.1, 0, false);
        assert_eq!(*t.state(), HealthState::Warn("retry-pressure".into()));
    }

    #[test]
    fn hysteresis_dampens_single_evaluation_flips() {
        let mut t = tracker();
        for _ in 0..8 {
            t.on_record(4.1, 0, false);
        }
        // One faulted record makes Warn the candidate, but the state only
        // flips on the second consecutive Warn evaluation.
        t.on_record(4.5, 0, true);
        assert_eq!(*t.state(), HealthState::Ok);
        t.on_record(4.1, 0, false);
        assert_eq!(*t.state(), HealthState::Warn("fault-pressure".into()));
    }

    #[test]
    fn exploration_collapse_needs_sd_floor_and_open_gap() {
        let mut t = tracker();
        // Above band (best 6 > 4.4), tiny posterior sd, real LP gap.
        t.on_posterior(&PosteriorSnapshot {
            points: vec![crate::strategy::PosteriorPoint {
                action: 1,
                mean: 6.0,
                sd: 1e-6,
                lp_bound: Some(3.0),
                excluded: false,
            }],
        });
        t.on_record(6.0, 0, false);
        t.on_record(6.0, 0, false);
        assert_eq!(*t.state(), HealthState::Warn("exploration-collapse".into()));
        let s = t.signals();
        assert_eq!(s.lp_gap, Some(3.0));
        assert_eq!(s.posterior_sd_max, Some(1e-6));
    }

    #[test]
    fn ineffective_warm_start_warns_effective_one_does_not() {
        let mut warm = HealthTracker::new(HealthPolicy::default(), 10, Some(4.0), None, true);
        // Reaches the band immediately: never warns about warm start.
        for _ in 0..20 {
            warm.on_record(4.1, 0, false);
        }
        assert_eq!(*warm.state(), HealthState::Ok);
        assert_eq!(warm.signals().band_record, Some(1));

        let mut bad = HealthTracker::new(
            HealthPolicy { stall_k: usize::MAX, ..HealthPolicy::default() },
            10,
            Some(4.0),
            None,
            true,
        );
        // Stays well above the band past the cold baseline (stall rule
        // disabled here to isolate the warm-start rule).
        for _ in 0..10 {
            bad.on_record(6.0, 0, false);
        }
        assert_eq!(*bad.state(), HealthState::Warn("warm-start-ineffective".into()));
    }

    #[test]
    fn state_strings_are_canonical() {
        assert_eq!(HealthState::Ok.as_str(), "ok");
        assert_eq!(HealthState::Warn("x".into()).as_str(), "warn");
        assert_eq!(HealthState::Stalled.as_str(), "stalled");
        assert_eq!(HealthState::Diverging.as_str(), "diverging");
        assert_eq!(HealthState::Warn("fault-pressure".into()).to_string(), "warn(fault-pressure)");
        assert_eq!(HealthState::Stalled.to_string(), "stalled");
    }

    #[test]
    fn rule_table_is_severity_ordered() {
        assert_eq!(
            HealthTracker::rules(),
            vec![
                "diverging",
                "stalled",
                "fault-pressure",
                "retry-pressure",
                "exploration-collapse",
                "warm-start-ineffective",
            ]
        );
    }
}
