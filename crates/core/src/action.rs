//! The action space: node counts, homogeneous groups, and the LP bound.

/// Search space of the tuner.
///
/// Actions are node counts `1..=max_nodes`, where "n nodes" always means
/// the n fastest (the paper's first reduction: "trading a slow node for a
/// fast one is always detrimental"). The homogeneous machine groups and
/// the optional LP lower-bound curve feed the structure-aware strategies.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionSpace {
    /// Total number of nodes `N`.
    pub max_nodes: usize,
    /// Homogeneous groups as inclusive 1-based `(first, last)` node
    /// counts, fastest group first (e.g. `[(1,5), (6,10), (11,15)]`).
    pub groups: Vec<(usize, usize)>,
    /// `LP(n)` for `n = 1..=N` (`lp[n-1]`), when available.
    pub lp: Option<Vec<f64>>,
}

impl ActionSpace {
    /// Build a space; groups defaulting to one group covering everything
    /// when empty.
    ///
    /// # Panics
    /// Panics when `max_nodes` is 0, groups do not partition `1..=N`, or
    /// the LP curve has the wrong length.
    pub fn new(max_nodes: usize, groups: Vec<(usize, usize)>, lp: Option<Vec<f64>>) -> Self {
        assert!(max_nodes >= 1, "need at least one node");
        let groups = if groups.is_empty() { vec![(1, max_nodes)] } else { groups };
        let mut expect = 1usize;
        for &(lo, hi) in &groups {
            assert_eq!(lo, expect, "groups must partition 1..=N contiguously");
            assert!(hi >= lo && hi <= max_nodes, "group bound out of range");
            expect = hi + 1;
        }
        assert_eq!(expect, max_nodes + 1, "groups must cover all nodes");
        if let Some(lp) = &lp {
            assert_eq!(lp.len(), max_nodes, "LP curve must have one value per action");
        }
        ActionSpace { max_nodes, groups, lp }
    }

    /// A space with no structure information.
    pub fn unstructured(max_nodes: usize) -> Self {
        Self::new(max_nodes, vec![], None)
    }

    /// All actions `1..=N`.
    pub fn actions(&self) -> Vec<usize> {
        (1..=self.max_nodes).collect()
    }

    /// Index of the group containing action `n`.
    ///
    /// # Panics
    /// Panics if `n` is outside `1..=N`.
    pub fn group_of(&self, n: usize) -> usize {
        assert!((1..=self.max_nodes).contains(&n), "action out of range");
        self.groups
            .iter()
            .position(|&(lo, hi)| n >= lo && n <= hi)
            .expect("groups partition the space")
    }

    /// The UCB-struct action set: "multiple complete groups of homogeneous
    /// nodes", i.e. cumulative group boundaries (5, 10, 15 in the paper's
    /// example).
    pub fn struct_actions(&self) -> Vec<usize> {
        self.groups.iter().map(|&(_, hi)| hi).collect()
    }

    /// `LP(n)`, if an LP curve was provided.
    pub fn lp_at(&self, n: usize) -> Option<f64> {
        self.lp.as_ref().map(|lp| lp[n - 1])
    }

    /// The paper's bound mechanism: actions whose LP bound does not beat
    /// the measured all-nodes duration `y_all` are excluded (`N` itself is
    /// always kept). Returns the surviving actions in increasing order.
    pub fn bounded_actions(&self, y_all: f64) -> Vec<usize> {
        match &self.lp {
            None => self.actions(),
            Some(lp) => {
                let mut keep: Vec<usize> = (1..=self.max_nodes)
                    .filter(|&n| n == self.max_nodes || lp[n - 1] < y_all)
                    .collect();
                if keep.is_empty() {
                    keep.push(self.max_nodes);
                }
                keep
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ActionSpace {
        ActionSpace::new(10, vec![(1, 4), (5, 8), (9, 10)], None)
    }

    #[test]
    fn actions_enumerate_all_counts() {
        assert_eq!(space().actions(), (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn group_lookup() {
        let s = space();
        assert_eq!(s.group_of(1), 0);
        assert_eq!(s.group_of(4), 0);
        assert_eq!(s.group_of(5), 1);
        assert_eq!(s.group_of(10), 2);
    }

    #[test]
    fn struct_actions_are_group_boundaries() {
        assert_eq!(space().struct_actions(), vec![4, 8, 10]);
    }

    #[test]
    fn default_single_group() {
        let s = ActionSpace::unstructured(6);
        assert_eq!(s.groups, vec![(1, 6)]);
        assert_eq!(s.struct_actions(), vec![6]);
    }

    #[test]
    fn bound_mechanism_filters_hopeless_left_points() {
        // LP(n) = 100/n: with y_all = 30, actions with LP >= 30 (n <= 3)
        // are excluded.
        let lp: Vec<f64> = (1..=10).map(|n| 100.0 / n as f64).collect();
        let s = ActionSpace::new(10, vec![], Some(lp));
        let kept = s.bounded_actions(30.0);
        assert_eq!(kept, vec![4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn bound_mechanism_always_keeps_all_nodes_action() {
        let lp = vec![100.0; 5];
        let s = ActionSpace::new(5, vec![], Some(lp));
        assert_eq!(s.bounded_actions(1.0), vec![5]);
    }

    #[test]
    fn no_lp_means_no_filtering() {
        let s = ActionSpace::unstructured(4);
        assert_eq!(s.bounded_actions(0.0), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn bad_groups_rejected() {
        ActionSpace::new(10, vec![(1, 4), (6, 10)], None);
    }

    #[test]
    #[should_panic(expected = "one value per action")]
    fn bad_lp_length_rejected() {
        ActionSpace::new(3, vec![], Some(vec![1.0, 2.0]));
    }
}
