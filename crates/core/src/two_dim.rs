//! Two-dimensional extension: tuning generation *and* factorization node
//! counts together (the paper's Fig. 8 / future-work discussion).
//!
//! The paper shows one scenario ((f) G5K 2L-6M-15S 128) where using fewer
//! generation nodes beats all-nodes generation by ≈3%, and argues the GP
//! "should gracefully extend to more dimensions". This module provides
//! that extension: a GP-UCB over the `(n_gen, n_fact)` grid with a
//! separable exponential kernel.

use crate::ActionSpace;
use adaphet_gp::{GpConfig, GpModel, Kernel, Trend, UcbSchedule};

/// Observation history over 2D actions.
#[derive(Debug, Clone, Default)]
pub struct History2d {
    records: Vec<((usize, usize), f64)>,
}

impl History2d {
    /// Empty history.
    pub fn new() -> Self {
        History2d::default()
    }

    /// Append an observation for `(n_gen, n_fact)`.
    pub fn record(&mut self, action: (usize, usize), duration: f64) {
        self.records.push((action, duration));
    }

    /// Number of iterations so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records.
    pub fn records(&self) -> &[((usize, usize), f64)] {
        &self.records
    }

    /// Times a 2D action was played.
    pub fn count_for(&self, action: (usize, usize)) -> usize {
        self.records.iter().filter(|&&(a, _)| a == action).count()
    }

    /// Best (lowest mean) action so far.
    pub fn best_action(&self) -> Option<(usize, usize)> {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<(usize, usize), (f64, usize)> = BTreeMap::new();
        for &(a, y) in &self.records {
            let e = m.entry(a).or_insert((0.0, 0));
            e.0 += y;
            e.1 += 1;
        }
        m.into_iter()
            .map(|(a, (s, c))| (a, s / c as f64))
            .min_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
            .map(|(a, _)| a)
    }
}

/// A strategy over `(n_gen, n_fact)` pairs.
///
/// Like [`Strategy`](crate::Strategy), `propose` receives the **live**
/// [`ActionSpace`] each call and must answer inside
/// `1..=space.max_nodes` on both axes — after node loss the grid shrinks
/// with the platform.
pub trait Strategy2d {
    /// Display name.
    fn name(&self) -> &'static str;
    /// Next `(n_gen, n_fact)` to play from the live `space`.
    fn propose(&mut self, space: &ActionSpace, hist: &History2d) -> (usize, usize);
}

/// GP-UCB on the 2D grid with a product (separable) exponential kernel:
/// `k((g,f),(g',f')) = α exp(−|g−g'|/θ) exp(−|f−f'|/θ)` encoded through
/// the 1D machinery by embedding the grid on a space-filling axis — the
/// model is fit on a scalarized coordinate per axis via an additive
/// composition: we fit one GP over the flattened grid using the L1
/// distance between grid points, which the exponential kernel turns into
/// exactly the product kernel above.
#[derive(Debug, Clone)]
pub struct GpUcb2d {
    n: usize,
    /// β_t schedule.
    pub schedule: UcbSchedule,
    /// Grid stride used for L1 flattening (n+1 keeps axes distinguishable).
    stride: usize,
}

impl GpUcb2d {
    /// Over the grid `1..=n × 1..=n`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        GpUcb2d { n, schedule: UcbSchedule::default(), stride: n + 1 }
    }

    /// Embed a 2D action: the exponential kernel over this scalar equals
    /// the product of per-axis exponential kernels only along axis-aligned
    /// moves; diagonal moves are over-penalized, which is conservative
    /// (more exploration) and keeps us within the 1D GP substrate.
    fn embed(&self, (g, f): (usize, usize)) -> f64 {
        (g * self.stride + f) as f64
    }

    fn grid(&self) -> Vec<(usize, usize)> {
        (1..=self.n).flat_map(|g| (1..=self.n).map(move |f| (g, f))).collect()
    }

    fn fit(&self, hist: &History2d) -> Option<GpModel> {
        if hist.len() < 3 {
            return None;
        }
        let xs: Vec<f64> = hist.records().iter().map(|&(a, _)| self.embed(a)).collect();
        let ys: Vec<f64> = hist.records().iter().map(|&(_, y)| y).collect();
        let var = adaphet_linalg::sample_variance(&ys).max(1e-9);
        let cfg = GpConfig {
            kernel: Kernel::Exponential { theta: self.stride as f64 / 2.0 },
            process_var: var,
            noise_var: 0.01 * var,
            trend: Trend::constant(),
        };
        GpModel::fit(cfg, &xs, &ys).ok()
    }
}

impl Strategy2d for GpUcb2d {
    fn name(&self) -> &'static str {
        "GP-UCB-2D"
    }

    fn propose(&mut self, space: &ActionSpace, hist: &History2d) -> (usize, usize) {
        // The grid edge follows the live platform.
        let n = self.n.min(space.max_nodes);
        // Initialization: corners of the grid (all/all first), then center.
        let init = [(n, n), (n, 1), (1, n), (n.div_ceil(2), n.div_ceil(2))];
        if hist.len() < init.len() {
            return init[hist.len()];
        }
        match self.fit(hist) {
            Some(model) => {
                let beta = self.schedule.beta(hist.len(), n * n);
                self.grid()
                    .into_iter()
                    .filter(|&(g, f)| g <= n && f <= n)
                    .map(|a| {
                        let p = model.predict(self.embed(a));
                        (a, p.mean - beta.sqrt() * p.sd())
                    })
                    .min_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
                    .map(|(a, _)| a)
                    .unwrap_or((n, n))
            }
            None => {
                let (g, f) = hist.best_action().unwrap_or((n, n));
                (g.min(n), f.min(n))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(
        strat: &mut dyn Strategy2d,
        f: impl Fn((usize, usize)) -> f64,
        iters: usize,
        n: usize,
    ) -> History2d {
        let space = ActionSpace::unstructured(n);
        let mut h = History2d::new();
        for _ in 0..iters {
            let a = strat.propose(&space, &h);
            assert!((1..=n).contains(&a.0) && (1..=n).contains(&a.1));
            h.record(a, f(a));
        }
        h
    }

    #[test]
    fn starts_with_all_nodes() {
        let mut s = GpUcb2d::new(6);
        let space = ActionSpace::unstructured(6);
        assert_eq!(s.propose(&space, &History2d::new()), (6, 6));
    }

    #[test]
    fn finds_interior_optimum() {
        // Optimum at (4, 3) in a 6x6 grid — the Fig. 8 situation where
        // fewer generation nodes beat all-nodes generation.
        let mut s = GpUcb2d::new(6);
        let f =
            |(g, fa): (usize, usize)| (g as f64 - 4.0).powi(2) + (fa as f64 - 3.0).powi(2) + 1.0;
        let h = drive(&mut s, f, 60, 6);
        let late: Vec<(usize, usize)> = h.records()[45..].iter().map(|r| r.0).collect();
        let near =
            late.iter().filter(|&&(g, fa)| (3..=5).contains(&g) && (2..=4).contains(&fa)).count();
        assert!(near * 2 > late.len(), "late plays: {late:?}");
    }

    #[test]
    fn history2d_bookkeeping() {
        let mut h = History2d::new();
        h.record((2, 3), 5.0);
        h.record((2, 3), 7.0);
        h.record((1, 1), 4.0);
        assert_eq!(h.len(), 3);
        assert_eq!(h.count_for((2, 3)), 2);
        assert_eq!(h.best_action(), Some((1, 1)));
    }

    #[test]
    fn single_cell_grid() {
        let mut s = GpUcb2d::new(1);
        let h = drive(&mut s, |_| 1.0, 5, 1);
        assert!(h.records().iter().all(|&(a, _)| a == (1, 1)));
    }
}
