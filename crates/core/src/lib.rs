#![warn(missing_docs)]

//! Exploration strategies for online heterogeneous node-set selection —
//! the paper's primary contribution.
//!
//! An iterative multi-phase application picks, at every iteration, how
//! many of the fastest nodes to use for its dominant phase, observes the
//! iteration duration, and must converge quickly to the best count. This
//! crate implements every strategy of the paper's Section IV:
//!
//! | strategy | module | paper verdict |
//! |---|---|---|
//! | DC (dichotomy) | [`DivideConquer`] | fast, fooled by noise |
//! | Right-Left | [`RightLeft`] | fast, stuck in local minima |
//! | Brent | [`BrentSearch`] | good until discontinuities/noise |
//! | UCB | [`Ucb`] | no-regret but explores everything |
//! | UCB-struct | [`UcbStruct`] | strong but can miss the optimum |
//! | GP-UCB | [`GpUcb`] | good on small smooth spaces |
//! | **GP-discontinuous** | [`GpDiscontinuous`] | robust everywhere (the contribution) |
//!
//! plus the baselines used by the evaluation ([`AllNodes`], [`Oracle`],
//! [`RandomSearch`]) and the non-parsimonious classics the paper tried and
//! dismissed ([`SimulatedAnnealing`], [`StochasticApproximation`]).
//!
//! # Protocol
//!
//! Strategies implement [`Strategy`]: the driver calls
//! [`Strategy::propose`] with the observation [`History`] so far and runs
//! one iteration with the returned node count, appending the measured
//! duration to the history. All strategies are deterministic given their
//! construction (seeded RNGs where randomness is inherent).
//!
//! ```
//! use adaphet_core::{ActionSpace, GpDiscontinuous, History, Strategy};
//!
//! // A 10-node cluster, two homogeneous groups, a synthetic LP bound.
//! let space = ActionSpace::new(10, vec![(1, 4), (5, 10)],
//!                              Some((1..=10).map(|n| 40.0 / n as f64).collect()));
//! let mut strat = GpDiscontinuous::new(&space);
//! let mut hist = History::new();
//! for _ in 0..20 {
//!     let n = strat.propose(&hist);
//!     assert!((1..=10).contains(&n));
//!     // Fake response: best at 6 nodes.
//!     let y = 40.0 / n as f64 + 0.8 * (n as f64) + if n >= 5 { 0.0 } else { 6.0 };
//!     hist.record(n, y);
//! }
//! ```

mod action;
mod bandit;
mod drift;
mod brent;
mod extra;
mod gp_disc;
mod gp_ucb;
mod history;
mod naive;
mod strategy;
mod two_dim;

pub use action::ActionSpace;
pub use bandit::{Ucb, UcbStruct};
pub use drift::DriftReset;
pub use brent::BrentSearch;
pub use extra::{NelderMead1d, RandomSearch, SimulatedAnnealing, StochasticApproximation};
pub use gp_disc::{GpDiscOptions, GpDiscontinuous};
pub use gp_ucb::GpUcb;
pub use history::History;
pub use naive::{DivideConquer, RightLeft};
pub use strategy::{AllNodes, Oracle, Strategy};
pub use two_dim::{GpUcb2d, History2d, Strategy2d};
