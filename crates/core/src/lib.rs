#![warn(missing_docs)]

//! Exploration strategies for online heterogeneous node-set selection —
//! the paper's primary contribution.
//!
//! An iterative multi-phase application picks, at every iteration, how
//! many of the fastest nodes to use for its dominant phase, observes the
//! iteration duration, and must converge quickly to the best count. This
//! crate implements every strategy of the paper's Section IV:
//!
//! | strategy | module | paper verdict |
//! |---|---|---|
//! | DC (dichotomy) | [`DivideConquer`] | fast, fooled by noise |
//! | Right-Left | [`RightLeft`] | fast, stuck in local minima |
//! | Brent | [`BrentSearch`] | good until discontinuities/noise |
//! | UCB | [`Ucb`] | no-regret but explores everything |
//! | UCB-struct | [`UcbStruct`] | strong but can miss the optimum |
//! | GP-UCB | [`GpUcb`] | good on small smooth spaces |
//! | **GP-discontinuous** | [`GpDiscontinuous`] | robust everywhere (the contribution) |
//!
//! plus the baselines used by the evaluation ([`AllNodes`], [`Oracle`],
//! [`RandomSearch`]) and the non-parsimonious classics the paper tried and
//! dismissed ([`SimulatedAnnealing`], [`StochasticApproximation`]).
//!
//! # Protocol
//!
//! Strategies implement [`Strategy`]: the canonical loop is owned by
//! [`TunerDriver`], which calls [`Strategy::propose`] with the *live*
//! [`ActionSpace`] and the observation [`History`] so far, runs one
//! iteration with the returned node count through a caller-provided
//! executor, and records the measured duration. Proposals must stay
//! inside `1..=space.max_nodes` of the live space — which can shrink
//! mid-run when a node dies (see the [`Strategy`] range contract). All
//! strategies are deterministic given their construction (seeded RNGs
//! where randomness is inherent).
//!
//! Strategies are built by canonical name through [`StrategyKind`];
//! drivers are configured through the typed [`TunerDriver::builder`]
//! (strategy, seed, iteration budget, sinks, [`ResiliencePolicy`]) and
//! emit one structured [`IterationEvent`] per iteration to any attached
//! [`TelemetrySink`] — including the strategy's own account of its
//! decision via [`Strategy::explain`].
//!
//! ```
//! use adaphet_core::{
//!     ActionSpace, MemorySink, Observation, StrategyKind, TunerDriver,
//! };
//!
//! // A 10-node cluster, two homogeneous groups, a synthetic LP bound.
//! let space = ActionSpace::new(10, vec![(1, 4), (5, 10)],
//!                              Some((1..=10).map(|n| 40.0 / n as f64).collect()));
//!
//! let sink = MemorySink::new();
//! let mut driver = TunerDriver::builder(&space)
//!     .kind("GP-discontinuous".parse::<StrategyKind>().unwrap())
//!     .sink(Box::new(sink.clone()))
//!     .build()
//!     .unwrap();
//! // Fake response: best at 6 nodes.
//! driver.run(20, |n| {
//!     Observation::of(40.0 / n as f64 + 0.8 * (n as f64)
//!                     + if n >= 5 { 0.0 } else { 6.0 })
//! });
//!
//! assert_eq!(driver.history().len(), 20);
//! let events = sink.events();
//! assert_eq!(events.len(), 20);
//! // Once the GP phase starts, events carry posterior diagnostics and
//! // the LP-bound exclusions.
//! assert!(events.iter().any(|e| {
//!     let t = e.trace.as_ref().unwrap();
//!     !t.diagnostics.is_empty() && !t.excluded.is_empty()
//! }));
//! ```

mod action;
mod bandit;
mod brent;
mod drift;
mod driver;
mod extra;
mod gp_disc;
mod gp_ucb;
mod health;
mod history;
mod kind;
mod naive;
mod session;
mod strategy;
mod two_dim;
mod warm;

// ---- The curated public surface, by layer ----------------------------
//
// Sessions & drivers: the loop (synchronous or split), its configuration
// and its telemetry.
pub use driver::{
    DriverBuildError, GroupUtilization, IterationEvent, JsonlSink, MemorySink, Observation,
    PhaseBreakdown, PhaseSlice, ResiliencePolicy, StepOutcome, TelemetrySink, TunerDriver,
    TunerDriverBuilder,
};
pub use health::{HealthPolicy, HealthReport, HealthSignals, HealthState, HealthTracker};
pub use session::{Observed, Proposal, Session, SessionError, Ticket};

// Cross-session warm-starting: the request type, the resolved prior, the
// shared surrogate knobs, and the persistent store it all rides on
// (re-exported from `adaphet-store` so driver users need one crate).
pub use adaphet_store::{
    GpHyper, GroupSig, PlatformSignature, StoreError, SurrogateSnapshot, SurrogateStore,
};
pub use warm::{
    signature_from_space, SurrogateOptions, SurrogatePrior, WarmStart, PRIOR_NOISE_INFLATION,
};

// Strategy construction: the validated by-name registry and the trait.
pub use kind::{StrategyKind, UnknownStrategyError, PAPER_STRATEGIES};
pub use strategy::{ActionDiagnostic, DecisionTrace, PosteriorPoint, PosteriorSnapshot, Strategy};

// The problem statement: action spaces and observation histories.
pub use action::ActionSpace;
pub use history::History;

// The strategy zoo (normally reached through [`StrategyKind::build`];
// exported for direct construction with non-default options).
pub use bandit::{Ucb, UcbStruct};
pub use brent::BrentSearch;
pub use drift::DriftReset;
pub use extra::{NelderMead1d, RandomSearch, SimulatedAnnealing, StochasticApproximation};
pub use gp_disc::{GpDiscOptions, GpDiscontinuous};
pub use gp_ucb::{GpUcb, GpUcbOptions};
pub use naive::{DivideConquer, RightLeft};
pub use strategy::{AllNodes, Oracle};

// The 2-d prototype (`two_dim.rs`): a separate experimental surface.
pub use two_dim::{GpUcb2d, History2d, Strategy2d};
