//! The generic optimizers the paper tried and dismissed as
//! non-parsimonious ("We also investigated Stochastic Approximation and
//! Simulated Annealing, but they achieved bad results because they are not
//! parsimonious"), plus a random-search floor. They are kept for the
//! ablation benchmarks.

use crate::{ActionSpace, History, Strategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random search (a sanity floor for the comparisons).
#[derive(Debug, Clone)]
pub struct RandomSearch {
    n: usize,
    rng: StdRng,
}

impl RandomSearch {
    /// Uniform over `1..=N`, deterministic given `seed`.
    pub fn new(space: &ActionSpace, seed: u64) -> Self {
        RandomSearch { n: space.max_nodes, rng: StdRng::seed_from_u64(seed) }
    }
}

impl Strategy for RandomSearch {
    fn name(&self) -> &'static str {
        "Random"
    }
    fn propose(&mut self, space: &ActionSpace, _hist: &History) -> usize {
        // Draw over the construction space to keep the RNG stream
        // identical fault-free, then fold into the live platform.
        self.rng.random_range(1..=self.n).min(space.max_nodes)
    }
}

/// Simulated annealing over node counts (R `optim`'s SANN analogue):
/// propose a random neighbour, accept with the Metropolis rule under a
/// geometric cooling schedule. Each acceptance test costs a full
/// application iteration — hence the non-parsimony.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    n: usize,
    rng: StdRng,
    current: usize,
    current_y: Option<f64>,
    temp: f64,
    cooling: f64,
    awaiting: Option<usize>,
}

impl SimulatedAnnealing {
    /// Start from all nodes with an initial temperature matched to the
    /// typical duration scale.
    pub fn new(space: &ActionSpace, seed: u64) -> Self {
        SimulatedAnnealing {
            n: space.max_nodes,
            rng: StdRng::seed_from_u64(seed),
            current: space.max_nodes,
            current_y: None,
            temp: 1.0,
            cooling: 0.95,
            awaiting: None,
        }
    }
}

impl Strategy for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "SANN"
    }

    fn propose(&mut self, space: &ActionSpace, hist: &History) -> usize {
        // Fold into the live space after node loss.
        if self.n > space.max_nodes {
            self.n = space.max_nodes;
            self.current = self.current.min(self.n);
        }
        // Absorb the pending observation (quarantine may have dropped it).
        if let Some(cand) = self.awaiting.take() {
            if let Some(&(_, y)) = hist.records().last() {
                match self.current_y {
                    None => {
                        self.current = cand.min(self.n);
                        self.current_y = Some(y);
                    }
                    Some(cy) => {
                        let accept = y < cy || {
                            let p = ((cy - y) / (self.temp * cy.abs().max(1e-9))).exp();
                            self.rng.random_range(0.0..1.0) < p
                        };
                        if accept {
                            self.current = cand.min(self.n);
                            self.current_y = Some(y);
                        }
                    }
                }
                self.temp *= self.cooling;
            }
        }
        if self.current_y.is_none() {
            self.awaiting = Some(self.current);
            return self.current;
        }
        // Neighbour proposal: a step whose width shrinks with temperature.
        let span = ((self.n as f64 * self.temp).ceil() as i64).max(1);
        let step = self.rng.random_range(-span..=span);
        let cand = (self.current as i64 + step).clamp(1, self.n as i64) as usize;
        self.awaiting = Some(cand);
        cand
    }
}

/// Kiefer–Wolfowitz stochastic approximation: finite-difference gradient
/// steps `x ← x − a_t (y(x+c) − y(x−c)) / (2c)` with decaying gains. Needs
/// two measurements per step and drifts under discontinuities.
#[derive(Debug, Clone)]
pub struct StochasticApproximation {
    n: usize,
    x: f64,
    t: usize,
    plus: Option<f64>,
    awaiting: Option<bool>, // true = plus probe, false = minus probe
}

impl StochasticApproximation {
    /// Start from the middle of the space.
    pub fn new(space: &ActionSpace) -> Self {
        StochasticApproximation {
            n: space.max_nodes,
            x: (space.max_nodes as f64 + 1.0) / 2.0,
            t: 1,
            plus: None,
            awaiting: None,
        }
    }

    fn clamp(&self, v: f64) -> usize {
        (v.round() as i64).clamp(1, self.n as i64) as usize
    }
}

impl Strategy for StochasticApproximation {
    fn name(&self) -> &'static str {
        "SPSA"
    }

    fn propose(&mut self, space: &ActionSpace, hist: &History) -> usize {
        // Fold into the live space after node loss.
        if self.n > space.max_nodes {
            self.n = space.max_nodes;
            self.x = self.x.min(self.n as f64);
        }
        let c = (self.n as f64 / 8.0 / (self.t as f64).powf(0.25)).max(1.0);
        if let Some(was_plus) = self.awaiting.take() {
            if let Some(&(_, y)) = hist.records().last() {
                if was_plus {
                    self.plus = Some(y);
                } else if let Some(yp) = self.plus.take() {
                    let grad = (yp - y) / (2.0 * c);
                    let a = self.n as f64 / (4.0 * self.t as f64);
                    self.x = (self.x - a * grad).clamp(1.0, self.n as f64);
                    self.t += 1;
                }
            }
        }
        let probe_plus = self.plus.is_none();
        self.awaiting = Some(probe_plus);
        if probe_plus {
            self.clamp(self.x + c)
        } else {
            self.clamp(self.x - c)
        }
    }
}

/// 1D Nelder–Mead as an online strategy (the paper: "We also tried
/// multi-dimension algorithms like Nelder-Mead and BFGS with no better
/// results"). In one dimension the simplex is a segment; each propose
/// evaluates one vertex-update candidate.
#[derive(Debug, Clone)]
pub struct NelderMead1d {
    n: usize,
    /// The two simplex vertices and their values (None until measured).
    simplex: [(f64, Option<f64>); 2],
    awaiting: Option<usize>, // which vertex the last proposal refreshed
    pending_candidate: Option<f64>,
    converged: bool,
}

impl NelderMead1d {
    /// Initial segment spans the middle half of the space.
    pub fn new(space: &ActionSpace) -> Self {
        let n = space.max_nodes;
        let a = (n as f64 * 0.25).max(1.0);
        let b = (n as f64 * 0.75).max(a + 1.0).min(n as f64);
        NelderMead1d {
            n,
            simplex: [(a, None), (b, None)],
            awaiting: None,
            pending_candidate: None,
            converged: false,
        }
    }

    fn clamp(&self, v: f64) -> usize {
        (v.round() as i64).clamp(1, self.n as i64) as usize
    }
}

impl Strategy for NelderMead1d {
    fn name(&self) -> &'static str {
        "Nelder-Mead"
    }

    fn propose(&mut self, space: &ActionSpace, hist: &History) -> usize {
        // Fold the simplex into the live space after node loss; a vertex
        // beyond the surviving platform must be re-measured at the edge.
        if self.n > space.max_nodes {
            self.n = space.max_nodes;
            let edge = self.n as f64;
            for v in &mut self.simplex {
                if v.0 > edge {
                    *v = (edge, None);
                }
            }
        }
        // Absorb the pending measurement.
        if let Some(idx) = self.awaiting.take() {
            let Some(&(_, y)) = hist.records().last() else {
                // Quarantined away: forget the candidate and re-plan.
                self.pending_candidate = None;
                return self.clamp(self.simplex[0].0);
            };
            if let Some(cand) = self.pending_candidate.take() {
                // Candidate replaces the worst vertex if it improves it.
                let worst = if self.simplex[0].1.unwrap_or(f64::INFINITY)
                    >= self.simplex[1].1.unwrap_or(f64::INFINITY)
                {
                    0
                } else {
                    1
                };
                if y < self.simplex[worst].1.unwrap_or(f64::INFINITY) {
                    self.simplex[worst] = (cand, Some(y));
                } else {
                    // Shrink toward the best vertex.
                    let best = 1 - worst;
                    let bx = self.simplex[best].0;
                    let wx = self.simplex[worst].0;
                    self.simplex[worst] = (bx + 0.5 * (wx - bx), None);
                }
            } else {
                self.simplex[idx].1 = Some(y);
            }
        }
        // Measure unmeasured vertices first.
        for (i, (x, v)) in self.simplex.iter().enumerate() {
            if v.is_none() {
                self.awaiting = Some(i);
                return self.clamp(*x);
            }
        }
        let (x0, f0) = (self.simplex[0].0, self.simplex[0].1.unwrap());
        let (x1, f1) = (self.simplex[1].0, self.simplex[1].1.unwrap());
        if (x0 - x1).abs() < 0.75 {
            self.converged = true;
        }
        if self.converged {
            let best = if f0 <= f1 { x0 } else { x1 };
            return self.clamp(best);
        }
        // Reflect the worst vertex through the best.
        let (bx, wx) = if f0 <= f1 { (x0, x1) } else { (x1, x0) };
        let candidate = (bx + (bx - wx)).clamp(1.0, self.n as f64);
        self.pending_candidate = Some(candidate);
        self.awaiting = Some(usize::MAX);
        self.clamp(candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(
        strat: &mut dyn Strategy,
        space: &ActionSpace,
        f: impl Fn(usize) -> f64,
        iters: usize,
    ) -> History {
        let mut h = History::new();
        for _ in 0..iters {
            let a = strat.propose(space, &h);
            assert!((1..=64).contains(&a), "out of range: {a}");
            h.record(a, f(a));
        }
        h
    }

    #[test]
    fn random_covers_the_space() {
        let space = ActionSpace::unstructured(10);
        let mut r = RandomSearch::new(&space, 1);
        let h = drive(&mut r, &space, |n| n as f64, 200);
        for a in 1..=10 {
            assert!(h.count_for(a) > 0, "action {a} never tried");
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let space = ActionSpace::unstructured(10);
        let seq = |seed| {
            let mut r = RandomSearch::new(&space, seed);
            let h = History::new();
            (0..10).map(|_| r.propose(&space, &h)).collect::<Vec<_>>()
        };
        assert_eq!(seq(5), seq(5));
        assert_ne!(seq(5), seq(6));
    }

    #[test]
    fn sann_eventually_prefers_good_region() {
        let space = ActionSpace::unstructured(20);
        let mut s = SimulatedAnnealing::new(&space, 3);
        let f = |n: usize| (n as f64 - 8.0).powi(2) + 1.0;
        let h = drive(&mut s, &space, f, 150);
        let late: Vec<usize> = h.records()[120..].iter().map(|r| r.0).collect();
        let near = late.iter().filter(|&&a| (5..=11).contains(&a)).count();
        assert!(near * 2 >= late.len(), "late: {late:?}");
    }

    #[test]
    fn sann_explores_more_than_exploitative_methods() {
        // Non-parsimony: count distinct actions visited.
        let space = ActionSpace::unstructured(30);
        let mut s = SimulatedAnnealing::new(&space, 7);
        let h = drive(&mut s, &space, |n| n as f64, 60);
        let distinct: std::collections::BTreeSet<usize> = h.records().iter().map(|r| r.0).collect();
        assert!(distinct.len() >= 8, "only {} distinct", distinct.len());
    }

    #[test]
    fn spsa_descends_smooth_curve() {
        let space = ActionSpace::unstructured(40);
        let mut s = StochasticApproximation::new(&space);
        let f = |n: usize| (n as f64 - 30.0).powi(2);
        let h = drive(&mut s, &space, f, 120);
        let late: Vec<usize> = h.records()[100..].iter().map(|r| r.0).collect();
        let near = late.iter().filter(|&&a| (24..=36).contains(&a)).count();
        assert!(near * 2 >= late.len(), "late: {late:?}");
    }

    #[test]
    fn nelder_mead_1d_descends_convex_curve() {
        let space = ActionSpace::unstructured(40);
        let mut nm = NelderMead1d::new(&space);
        let f = |n: usize| (n as f64 - 22.0).powi(2) + 3.0;
        let h = drive(&mut nm, &space, f, 60);
        let last = h.records().last().unwrap().0;
        assert!((17..=27).contains(&last), "settled at {last}");
    }

    #[test]
    fn nelder_mead_1d_settles_and_exploits() {
        let space = ActionSpace::unstructured(16);
        let mut nm = NelderMead1d::new(&space);
        let h = drive(&mut nm, &space, |n| n as f64, 40);
        let tail: Vec<usize> = h.records()[35..].iter().map(|r| r.0).collect();
        assert!(tail.windows(2).all(|w| w[0] == w[1]), "not settled: {tail:?}");
    }

    #[test]
    fn spsa_alternates_probe_pairs() {
        let space = ActionSpace::unstructured(16);
        let mut s = StochasticApproximation::new(&space);
        let mut h = History::new();
        let a1 = s.propose(&space, &h);
        h.record(a1, 1.0);
        let a2 = s.propose(&space, &h);
        h.record(a2, 2.0);
        // Plus probe then minus probe around the same center.
        assert!(a1 > a2, "probes {a1}, {a2}");
    }
}
