//! GP-discontinuous — the paper's proposed strategy (Section IV-D).
//!
//! Four ingredients on top of plain GP-UCB:
//!
//! 1. **LP-residual modeling**: the GP models `y(n) − LP(n)`; the `1/x`
//!    part of the response is already captured by the LP lower bound, so
//!    the residual's trend is simply *linear* in `n`;
//! 2. **Bound mechanism**: after the first iteration measures `y(N)`,
//!    every `n` with `LP(n) ≥ y(N)` is discarded from the search space;
//! 3. **Dummy variables**: one step-function trend term per homogeneous
//!    machine group lets the surrogate jump at group boundaries (the
//!    slow-node critical-path discontinuities) without breaking the GP's
//!    smoothness prior;
//! 4. **Conservative hyper-parameters**: θ is fixed to 1 and α to the
//!    sample variance (no ML fit — with few points ML is overconfident);
//!    σ²_N comes from the paper's pooled replicate estimator.
//!
//! Initialization: all nodes → bounded leftmost → middle twice → the last
//! point of each (bounded) group once — only then does GP-UCB take over.

use crate::{
    ActionDiagnostic, ActionSpace, DecisionTrace, History, PosteriorPoint, PosteriorSnapshot,
    Strategy, SurrogateOptions, SurrogatePrior,
};
use adaphet_gp::{
    estimate_noise_from_replicates, GpConfig, GpModel, Kernel, ModelCache, PairwiseDistances,
    Trend, UcbSchedule,
};
use adaphet_linalg::Mat;
use adaphet_store::GpHyper;

/// What a surrogate fit consumes: inputs `xs`, LP residuals, the stage-1
/// configuration, and per-point noise multipliers (empty when cold).
type FitInputs = (Vec<f64>, Vec<f64>, GpConfig, Vec<f64>);

/// Feature toggles for ablation studies — each switch removes one of the
/// paper's four ingredients (Section IV-D) so its contribution can be
/// quantified in isolation — plus the shared [`SurrogateOptions`]
/// (prior, noise floor; this strategy fixes θ = 1 so the MLE grid knobs
/// are unused here).
#[derive(Debug, Clone, PartialEq)]
pub struct GpDiscOptions {
    /// Apply the LP bound mechanism to prune the search space.
    pub use_bounds: bool,
    /// Include the per-group dummy variables in the trend.
    pub use_dummies: bool,
    /// Model the residual over the LP instead of the raw duration.
    pub use_lp_residual: bool,
    /// Shared surrogate knobs (warm-start prior, noise floor).
    pub surrogate: SurrogateOptions,
}

impl Default for GpDiscOptions {
    fn default() -> Self {
        GpDiscOptions {
            use_bounds: true,
            use_dummies: true,
            use_lp_residual: true,
            surrogate: SurrogateOptions::default(),
        }
    }
}

/// The GP-discontinuous strategy.
#[derive(Debug, Clone)]
pub struct GpDiscontinuous {
    space: ActionSpace,
    /// β_t schedule of the UCB rule.
    pub schedule: UcbSchedule,
    /// Feature toggles (all on = the paper's strategy).
    pub options: GpDiscOptions,
    /// Surrogate state kept warm across `propose` calls.
    surrogate: SurrogateState,
}

/// Persistent surrogate state: the pairwise-distance matrix of the history
/// (grown by appending) and one [`ModelCache`] per fit stage. The caches
/// take the O(n²) incremental path when the stage's hyper-parameters repeat
/// across proposals and refit (reusing the distances) when they change, so
/// proposals stay bitwise identical to the scratch [`GpDiscontinuous::fit`].
#[derive(Debug, Clone, Default)]
struct SurrogateState {
    dists: PairwiseDistances,
    /// Stage-1 fit with α₀ = sample variance.
    pilot: ModelCache,
    /// Stage-2 fit with the MAD-robust α (skipped when α = α₀).
    tuned: ModelCache,
    active: ActiveModel,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum ActiveModel {
    #[default]
    None,
    Pilot,
    Tuned,
}

/// One point of the surrogate curve (for the Fig. 4C visualization).
#[derive(Debug, Clone, Copy)]
pub struct SurrogatePoint {
    /// Action (node count).
    pub n: usize,
    /// Predicted duration `LP(n) + μ_r(n)`.
    pub mean: f64,
    /// Posterior standard deviation of the residual.
    pub sd: f64,
    /// Whether the action survives the bound mechanism.
    pub in_bounds: bool,
}

impl GpDiscontinuous {
    /// Build over a space; the LP curve in `space.lp` powers both the
    /// residual trend and the bound mechanism (without it the strategy
    /// degrades gracefully to a grouped-trend GP-UCB).
    pub fn new(space: &ActionSpace) -> Self {
        Self::with_options(space, GpDiscOptions::default())
    }

    /// Build an ablated variant (see [`GpDiscOptions`]).
    pub fn with_options(space: &ActionSpace, options: GpDiscOptions) -> Self {
        // A gentler β than canonical GP-UCB: the trend + bound structure
        // already carries most of the information, so less forced
        // exploration is needed (mirroring the parsimony the paper reports
        // for its DiceKriging-based implementation).
        let schedule = UcbSchedule { delta: 0.1, scale: 0.3 };
        GpDiscontinuous {
            space: space.clone(),
            schedule,
            options,
            surrogate: SurrogateState::default(),
        }
    }

    fn lp(&self, space: &ActionSpace, n: usize) -> f64 {
        if !self.options.use_lp_residual {
            return 0.0;
        }
        space.lp_at(n).unwrap_or(0.0)
    }

    /// Candidate actions after the bound mechanism (needs `y(N)`). The
    /// bound baseline is the first observation of the *live* all-nodes
    /// count: after node loss no such observation exists until the driver
    /// re-baselines, and the bound is simply inactive in between.
    fn candidates(&self, space: &ActionSpace, hist: &History) -> Vec<usize> {
        if !self.options.use_bounds {
            return space.actions();
        }
        match hist.first_for(space.max_nodes) {
            Some(y_all) => space.bounded_actions(y_all),
            None => space.actions(),
        }
    }

    /// The prior pseudo-observations inside the live space, if any.
    fn prior_obs(&self, space: &ActionSpace) -> Option<(Vec<(usize, f64)>, f64)> {
        let prior = self.options.surrogate.active_prior()?;
        let obs = prior.observations_in(space);
        if obs.is_empty() {
            None
        } else {
            Some((obs, prior.noise_inflation))
        }
    }

    /// The initialization point for iteration `t`, or `None` once the GP
    /// phase should take over.
    ///
    /// Warm-started sessions compress the parsimonious sequence to two
    /// points: all nodes must still be measured live (the bound
    /// mechanism's `y(N)` reference cannot come from another platform),
    /// followed by one exploit probe at the donor's best action — the
    /// leftmost/middle/group probes exist only to make the first fit
    /// possible, and the prior pseudo-observations already do that.
    fn init_action(&self, space: &ActionSpace, hist: &History) -> Option<usize> {
        let n = space.max_nodes;
        let t = hist.len();
        if t == 0 {
            return Some(n);
        }
        if let Some((obs, _)) = self.prior_obs(space) {
            // One exploit probe at the donor's best candidate (the warm
            // analogue of the cold sequence's near-optimal `nl` play),
            // then the GP takes over. `None` — donor optimum excluded by
            // the live bound or never observed — skips straight to the GP.
            if t == 1 {
                return crate::warm::prior_best_action(&obs, &self.candidates(space, hist));
            }
            return None;
        }
        let cands = self.candidates(space, hist);
        let nl = *cands.first().expect("bounded set non-empty");
        if t == 1 {
            return Some(nl);
        }
        let mid = ((nl + n) / 2).clamp(1, n);
        if t == 2 || t == 3 {
            return Some(mid);
        }
        // Group-last measurements: the last point of each group inside the
        // bounded region, except the final group (N is already measured).
        // If a group's last point is taken, evaluate the next point.
        let k = t - 4;
        let mut probes = Vec::new();
        for &(_, hi) in &space.groups {
            if hi >= n {
                continue; // the all-nodes group is already covered
            }
            if !cands.contains(&hi) {
                continue; // excluded by the bound mechanism
            }
            let probe = if hist.count_for(hi) == 0 {
                hi
            } else {
                // "we choose to evaluate the next point"
                let next = hi + 1;
                if next <= n && hist.count_for(next) == 0 && cands.contains(&next) {
                    next
                } else {
                    continue;
                }
            };
            probes.push(probe);
        }
        probes.get(k).copied()
    }

    /// Observations, stage-1 hyper-parameters and per-point noise
    /// multipliers for the residual surrogate; `None` with too little
    /// data. Warm-started sessions prepend the prior pseudo-observations
    /// (nugget inflated by κ) ahead of the live history; cold sessions
    /// get an empty multiplier vector and the exact pre-warm-start
    /// arithmetic.
    fn fit_inputs(&self, space: &ActionSpace, hist: &History) -> Option<FitInputs> {
        let prior = self.prior_obs(space);
        let (records, mults): (Vec<(usize, f64)>, Vec<f64>) = match &prior {
            None => (hist.records().to_vec(), Vec::new()),
            Some((obs, inflation)) => {
                let mut recs = obs.clone();
                recs.extend_from_slice(hist.records());
                let mut m = vec![*inflation; obs.len()];
                m.extend(std::iter::repeat_n(1.0, hist.len()));
                (recs, m)
            }
        };
        if (prior.is_none() && hist.len() < 3) || records.len() < 3 {
            return None;
        }
        let xs: Vec<f64> = records.iter().map(|&(a, _)| a as f64).collect();
        let rs: Vec<f64> = records.iter().map(|&(a, y)| y - self.lp(space, a)).collect();
        // Trend: linear + dummies, but only for groups with data (an
        // all-zero dummy column would make the GLS rank deficient).
        let cands = self.candidates(space, hist);
        let trend = if self.options.use_dummies {
            let groups_with_data: Vec<(usize, usize)> = space
                .groups
                .iter()
                .copied()
                .filter(|&(lo, hi)| {
                    records.iter().any(|&(a, _)| a >= lo && a <= hi)
                        && cands.iter().any(|&c| c >= lo && c <= hi)
                })
                .collect();
            Trend::linear_with_group_dummies(&groups_with_data)
        } else {
            Trend::linear()
        };
        // θ = 1 and α = sample variance (the paper's conservative fix).
        // The variance is taken on the *detrended* residuals: the linear
        // + dummy trend absorbs the large-scale variation, and α should
        // only cover what is left for the GP — using the raw variance
        // would inflate the confidence bands on wide action spaces and
        // cause pointless exploration.
        let floor = self.options.surrogate.noise_floor;
        let alpha0 = adaphet_linalg::sample_variance(&rs).max(floor);
        let noise = estimate_noise_from_replicates(&xs, &rs).unwrap_or(0.01 * alpha0).max(floor);
        let cfg = GpConfig {
            kernel: Kernel::Exponential { theta: 1.0 },
            process_var: alpha0,
            noise_var: noise,
            trend,
        };
        Some((xs, rs, cfg, mults))
    }

    /// The MAD-robust stage-2 process variance given the stage-1 fit.
    fn stage2_alpha(first: &GpModel, xs: &[f64], rs: &[f64], alpha0: f64, noise: f64) -> f64 {
        let detrended: Vec<f64> =
            xs.iter().zip(rs).map(|(&x, &r)| r - first.trend_mean(x)).collect();
        // Robust scale (MAD) so a single outlier iteration (a system
        // hiccup) does not blow the bands open for the rest of the run.
        robust_variance(&detrended).max(0.1 * alpha0).max(4.0 * noise).max(1e-9)
    }

    /// Fit the residual surrogate from scratch over the construction
    /// space; `None` with too little data or a rank-deficient trend
    /// (callers fall back).
    pub fn fit(&self, hist: &History) -> Option<GpModel> {
        self.fit_in(&self.space, hist)
    }

    /// [`Self::fit`] over an explicit live space.
    fn fit_in(&self, space: &ActionSpace, hist: &History) -> Option<GpModel> {
        let (xs, rs, cfg, mults) = self.fit_inputs(space, hist)?;
        let (alpha0, noise) = (cfg.process_var, cfg.noise_var);
        let n = xs.len();
        let dists = Mat::from_fn(n, n, |i, j| (xs[i] - xs[j]).abs());
        let first =
            GpModel::fit_with_distances_and_noise(cfg.clone(), &xs, &rs, &dists, &mults).ok()?;
        let alpha = Self::stage2_alpha(&first, &xs, &rs, alpha0, noise);
        if (alpha - alpha0).abs() < 1e-12 {
            return Some(first);
        }
        GpModel::fit_with_distances_and_noise(
            GpConfig { process_var: alpha, ..cfg },
            &xs,
            &rs,
            &dists,
            &mults,
        )
        .ok()
    }

    /// Bring the persistent surrogate in line with `hist`, incrementally
    /// when the history grew by appending under unchanged hyper-parameters
    /// and by a distance-reusing refit otherwise. Returns `true` when a
    /// model is ready in [`Self::surrogate_model`]; the model is bitwise
    /// identical to what [`Self::fit`] would build from scratch.
    fn refresh_surrogate(&mut self, space: &ActionSpace, hist: &History) -> bool {
        self.surrogate.active = ActiveModel::None;
        let Some((xs, rs, cfg, mults)) = self.fit_inputs(space, hist) else {
            return false;
        };
        let (alpha0, noise) = (cfg.process_var, cfg.noise_var);
        self.surrogate.dists.sync(&xs);
        let Ok(first) = self.surrogate.pilot.fit_or_update_with_noise(
            &cfg,
            &xs,
            &rs,
            self.surrogate.dists.matrix(),
            &mults,
        ) else {
            return false;
        };
        let alpha = Self::stage2_alpha(first, &xs, &rs, alpha0, noise);
        if (alpha - alpha0).abs() < 1e-12 {
            self.surrogate.active = ActiveModel::Pilot;
            return true;
        }
        let cfg2 = GpConfig { process_var: alpha, ..cfg };
        match self.surrogate.tuned.fit_or_update_with_noise(
            &cfg2,
            &xs,
            &rs,
            self.surrogate.dists.matrix(),
            &mults,
        ) {
            Ok(_) => {
                self.surrogate.active = ActiveModel::Tuned;
                true
            }
            Err(_) => false,
        }
    }

    /// The model selected by the last [`Self::refresh_surrogate`], if any.
    fn surrogate_model(&self) -> Option<&GpModel> {
        match self.surrogate.active {
            ActiveModel::None => None,
            ActiveModel::Pilot => self.surrogate.pilot.model(),
            ActiveModel::Tuned => self.surrogate.tuned.model(),
        }
    }

    /// Full surrogate curve for visualization (paper Fig. 4C): predicted
    /// duration and uncertainty per action, bound flags included.
    pub fn surrogate_curve(&self, hist: &History) -> Option<Vec<SurrogatePoint>> {
        let model = self.fit(hist)?;
        let space = &self.space;
        let cands = self.candidates(space, hist);
        Some(
            space
                .actions()
                .into_iter()
                .map(|a| {
                    let p = model.predict(a as f64);
                    SurrogatePoint {
                        n: a,
                        mean: self.lp(space, a) + p.mean,
                        sd: p.sd(),
                        in_bounds: cands.contains(&a),
                    }
                })
                .collect(),
        )
    }
}

/// Outlier-robust variance estimate: `(1.4826 · MAD)²` (consistent with
/// the normal variance), falling back to the sample variance for fewer
/// than four points.
fn robust_variance(xs: &[f64]) -> f64 {
    if xs.len() < 4 {
        return adaphet_linalg::sample_variance(xs);
    }
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let mut v = xs.to_vec();
    let m = median(&mut v);
    let mut dev: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    let mad = median(&mut dev);
    (1.4826 * mad).powi(2)
}

impl Strategy for GpDiscontinuous {
    fn name(&self) -> &'static str {
        "GP-discontinuous"
    }

    fn propose(&mut self, space: &ActionSpace, hist: &History) -> usize {
        if let Some(a) = self.init_action(space, hist) {
            return a;
        }
        let cands = self.candidates(space, hist);
        // Warm path: reuse the surrogate from the previous proposal
        // (incremental update or distance-sharing refit) — bitwise the same
        // model `self.fit(hist)` would build from scratch. A changed live
        // space changes the residuals, which the cache detects and refits.
        match self.refresh_surrogate(space, hist) {
            true => {
                let model = self.surrogate_model().expect("refresh left a model");
                let beta = self.schedule.beta(hist.len().max(1), cands.len());
                cands
                    .iter()
                    .map(|&a| {
                        let p = model.predict(a as f64);
                        let score = self.lp(space, a) + p.mean - beta.sqrt() * p.sd();
                        (a, score)
                    })
                    .min_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
                    .map(|(a, _)| a)
                    .expect("bounded set non-empty")
            }
            false => {
                // Rank-deficient fit: measure the least-sampled candidate.
                cands
                    .iter()
                    .copied()
                    .min_by_key(|&a| (hist.count_for(a), a))
                    .expect("bounded set non-empty")
            }
        }
    }

    fn explain(&self, space: &ActionSpace, hist: &History) -> DecisionTrace {
        let cands = self.candidates(space, hist);
        let excluded: Vec<usize> =
            space.actions().into_iter().filter(|a| !cands.contains(a)).collect();
        if self.init_action(space, hist).is_some() {
            return DecisionTrace { diagnostics: Vec::new(), excluded, note: "init".into() };
        }
        match self.fit_in(space, hist) {
            Some(model) => {
                let beta = self.schedule.beta(hist.len().max(1), cands.len());
                let diagnostics = cands
                    .iter()
                    .map(|&a| {
                        let p = model.predict(a as f64);
                        let mean = self.lp(space, a) + p.mean;
                        let sd = p.sd();
                        ActionDiagnostic {
                            action: a,
                            mean,
                            sd,
                            acquisition: mean - beta.sqrt() * sd,
                        }
                    })
                    .collect();
                DecisionTrace { diagnostics, excluded, note: "gp-lcb".into() }
            }
            None => {
                let diagnostics = cands
                    .iter()
                    .map(|&a| ActionDiagnostic {
                        action: a,
                        mean: hist.mean_for(a).unwrap_or(f64::NAN),
                        sd: f64::NAN,
                        acquisition: hist.count_for(a) as f64,
                    })
                    .collect();
                DecisionTrace { diagnostics, excluded, note: "fallback-least-sampled".into() }
            }
        }
    }

    fn posterior_snapshot(&self, space: &ActionSpace, hist: &History) -> Option<PosteriorSnapshot> {
        let model = self.fit_in(space, hist)?;
        let cands = self.candidates(space, hist);
        let points = space
            .actions()
            .into_iter()
            .map(|a| {
                let p = model.predict(a as f64);
                PosteriorPoint {
                    action: a,
                    mean: self.lp(space, a) + p.mean,
                    sd: p.sd(),
                    lp_bound: space.lp_at(a),
                    excluded: !cands.contains(&a),
                }
            })
            .collect();
        Some(PosteriorSnapshot { points })
    }

    fn warm_start(&mut self, prior: SurrogatePrior) -> bool {
        // The cached surrogate was built without the prior prefix; drop
        // it so the next refresh refits over prior + live data.
        self.surrogate = SurrogateState::default();
        self.options.surrogate.prior = Some(prior);
        true
    }

    fn surrogate_hyper(&self, space: &ActionSpace, hist: &History) -> Option<GpHyper> {
        let model = self.fit_in(space, hist)?;
        let cfg = model.config();
        Some(GpHyper {
            kernel_family: cfg.kernel.family().to_string(),
            theta: cfg.kernel.theta(),
            process_var: cfg.process_var,
            noise_var: cfg.noise_var,
            trend_coefficients: model.trend_coefficients().to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(
        strat: &mut dyn Strategy,
        space: &ActionSpace,
        f: impl Fn(usize) -> f64,
        iters: usize,
    ) -> History {
        let mut h = History::new();
        for _ in 0..iters {
            let a = strat.propose(space, &h);
            h.record(a, f(a));
        }
        h
    }

    /// LP curve of a convex-ish response.
    fn lp_curve(n: usize, work: f64) -> Vec<f64> {
        (1..=n).map(|k| work / k as f64).collect()
    }

    #[test]
    fn first_iteration_uses_all_nodes() {
        let space = ActionSpace::new(12, vec![], Some(lp_curve(12, 60.0)));
        let mut g = GpDiscontinuous::new(&space);
        assert_eq!(g.propose(&space, &History::new()), 12);
    }

    #[test]
    fn bound_mechanism_skips_hopeless_left_points() {
        // y(12) = 8; LP(n) = 60/n, so LP >= 8 for n <= 7: leftmost = 8.
        let space = ActionSpace::new(12, vec![], Some(lp_curve(12, 60.0)));
        let mut g = GpDiscontinuous::new(&space);
        let mut h = History::new();
        h.record(12, 8.0);
        let second = g.propose(&space, &h);
        assert_eq!(second, 8, "leftmost bounded point");
        // And the strategy never proposes a bounded-out point: with
        // y(12) = f(12) = 8.6, LP(n) = 60/n >= 8.6 for n <= 6.
        let f = |n: usize| 60.0 / n as f64 + 0.3 * n as f64;
        let h = drive(&mut GpDiscontinuous::new(&space), &space, f, 40);
        // First iteration is forced to 12; later ones respect the bound.
        for &(a, _) in &h.records()[1..] {
            assert!(a >= 7, "proposed bounded-out action {a}");
        }
    }

    #[test]
    fn initialization_measures_group_boundaries() {
        let space = ActionSpace::new(
            12,
            vec![(1, 4), (5, 8), (9, 12)],
            Some(lp_curve(12, 1.0)), // weak bound: LP(1) = 1 < y(12), nothing filtered
        );
        let mut g = GpDiscontinuous::new(&space);
        let f = |n: usize| 1.0 / n as f64 + 0.2 * n as f64;
        let h = drive(&mut g, &space, f, 8);
        let seq: Vec<usize> = h.records().iter().map(|r| r.0).collect();
        // N, leftmost, mid, mid, then group lasts 4 and 8.
        assert_eq!(&seq[..4], &[12, 1, 6, 6]);
        assert!(seq[4..6].contains(&4), "group-1 boundary probed: {seq:?}");
        assert!(seq[4..6].contains(&8), "group-2 boundary probed: {seq:?}");
    }

    #[test]
    fn converges_on_smooth_curve() {
        let space = ActionSpace::new(20, vec![], Some(lp_curve(20, 100.0)));
        let mut g = GpDiscontinuous::new(&space);
        let f = |n: usize| 100.0 / n as f64 + 0.9 * n as f64; // min near 10-11
        let h = drive(&mut g, &space, f, 60);
        let late: Vec<usize> = h.records()[40..].iter().map(|r| r.0).collect();
        let near = late.iter().filter(|&&a| (9..=13).contains(&a)).count();
        assert!(near * 2 > late.len(), "late plays: {late:?}");
    }

    #[test]
    fn handles_group_discontinuity() {
        // Adding the slow group (n > 6) causes a jump (critical path).
        // Optimum is exactly at the boundary n = 6.
        let space = ActionSpace::new(16, vec![(1, 6), (7, 16)], Some(lp_curve(16, 48.0)));
        let mut g = GpDiscontinuous::new(&space);
        let f = |n: usize| {
            let base = 48.0 / n as f64 + 0.4 * n as f64;
            if n > 6 {
                base + 6.0
            } else {
                base
            }
        };
        let h = drive(&mut g, &space, f, 60);
        let best_by_truth = (1..=16).min_by(|&a, &b| f(a).partial_cmp(&f(b)).unwrap()).unwrap();
        let late: Vec<usize> = h.records()[40..].iter().map(|r| r.0).collect();
        let near = late.iter().filter(|&&a| (a as i64 - best_by_truth as i64).abs() <= 1).count();
        assert!(near * 2 > late.len(), "true best {best_by_truth}, late plays {late:?}");
    }

    #[test]
    fn noise_resilient_convergence() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let space = ActionSpace::new(15, vec![], Some(lp_curve(15, 75.0)));
        let mut g = GpDiscontinuous::new(&space);
        let mut h = History::new();
        let truth = |n: usize| 75.0 / n as f64 + 1.0 * n as f64; // min ~8-9
        for _ in 0..80 {
            let a = g.propose(&space, &h);
            let noise: f64 = rng.random_range(-0.5..0.5);
            h.record(a, truth(a) + noise);
        }
        let late: Vec<usize> = h.records()[60..].iter().map(|r| r.0).collect();
        let near = late.iter().filter(|&&a| (7..=11).contains(&a)).count();
        assert!(near * 2 > late.len(), "late plays: {late:?}");
    }

    #[test]
    fn surrogate_curve_brackets_truth_on_measured_points() {
        let space = ActionSpace::new(10, vec![], Some(lp_curve(10, 40.0)));
        let mut g = GpDiscontinuous::new(&space);
        let f = |n: usize| 40.0 / n as f64 + 0.5 * n as f64;
        let h = drive(&mut g, &space, f, 25);
        let curve = g.surrogate_curve(&h).expect("fit succeeds");
        assert_eq!(curve.len(), 10);
        for p in curve.iter().filter(|p| h.count_for(p.n) >= 2) {
            let truth = f(p.n);
            assert!(
                (p.mean - truth).abs() <= 4.0 * p.sd + 0.5,
                "n={} mean={} truth={} sd={}",
                p.n,
                p.mean,
                truth,
                p.sd
            );
        }
    }

    #[test]
    fn ablated_variants_behave_differently() {
        // Without the bound mechanism, the leftmost initialization point
        // is 1 instead of the LP-pruned leftmost.
        let space = ActionSpace::new(12, vec![], Some(lp_curve(12, 60.0)));
        let mut full = GpDiscontinuous::new(&space);
        let mut no_bounds = GpDiscontinuous::with_options(
            &space,
            GpDiscOptions { use_bounds: false, ..Default::default() },
        );
        let mut h = History::new();
        h.record(12, 8.0); // LP(n) >= 8 for n <= 7
        assert_eq!(full.propose(&space, &h), 8);
        assert_eq!(no_bounds.propose(&space, &h), 1);

        // Without the LP residual, the modeled mean is the raw duration.
        let no_lp = GpDiscontinuous::with_options(
            &space,
            GpDiscOptions { use_lp_residual: false, ..Default::default() },
        );
        let f = |n: usize| 60.0 / n as f64 + 0.5 * n as f64;
        let mut h = History::new();
        let mut full2 = GpDiscontinuous::new(&space);
        for _ in 0..12 {
            let a = full2.propose(&space, &h);
            h.record(a, f(a));
        }
        let c_full = full2.surrogate_curve(&h).unwrap();
        let c_nolp = no_lp.surrogate_curve(&h).unwrap();
        // Means differ away from data (the LP carries the 1/x shape).
        let diff: f64 = c_full.iter().zip(&c_nolp).map(|(a, b)| (a.mean - b.mean).abs()).sum();
        assert!(diff > 1e-6, "LP residual must change the surrogate");
    }

    #[test]
    fn outlier_observation_does_not_derail_convergence() {
        // StarPU's scheduler tolerates outlier tasks; the tuner must
        // tolerate an outlier *iteration* (e.g. a system hiccup): inject
        // one 20x duration early and check convergence still happens.
        let space = ActionSpace::new(15, vec![], Some(lp_curve(15, 75.0)));
        let mut g = GpDiscontinuous::new(&space);
        let mut h = History::new();
        let truth = |n: usize| 75.0 / n as f64 + 1.0 * n as f64; // min ~8-9
        for it in 0..60 {
            let a = g.propose(&space, &h);
            let mut y = truth(a);
            if it == 6 {
                y *= 20.0; // outlier
            }
            h.record(a, y);
        }
        let late: Vec<usize> = h.records()[45..].iter().map(|r| r.0).collect();
        let near = late.iter().filter(|&&a| (7..=11).contains(&a)).count();
        assert!(near * 2 > late.len(), "late plays after outlier: {late:?}");
    }

    #[test]
    fn zero_variance_replicates_do_not_break_the_fit() {
        // Deterministic observations give a pooled noise estimate of 0;
        // the fit must fall back to a positive nugget, not a singular K.
        let space = ActionSpace::new(8, vec![], Some(lp_curve(8, 16.0)));
        let mut g = GpDiscontinuous::new(&space);
        let mut h = History::new();
        for _ in 0..20 {
            let a = g.propose(&space, &h);
            h.record(a, 16.0 / a as f64 + a as f64); // exactly repeatable
        }
        assert!(g.fit(&h).is_some(), "fit must survive zero-variance replicates");
    }

    #[test]
    fn cached_propose_matches_scratch_fit_decisions() {
        // The persistent surrogate must never change a decision: replay a
        // whole tuning run and recompute each proposal statelessly from a
        // scratch fit with identical scoring.
        let space = ActionSpace::new(16, vec![(1, 6), (7, 16)], Some(lp_curve(16, 48.0)));
        let mut g = GpDiscontinuous::new(&space);
        let f = |n: usize| {
            let base = 48.0 / n as f64 + 0.4 * n as f64;
            if n > 6 {
                base + 6.0
            } else {
                base
            }
        };
        let mut h = History::new();
        for it in 0..40 {
            let a = g.propose(&space, &h);
            let fresh = GpDiscontinuous::new(&space);
            let expected = match fresh.init_action(&space, &h) {
                Some(e) => e,
                None => {
                    let cands = fresh.candidates(&space, &h);
                    match fresh.fit(&h) {
                        Some(model) => {
                            let beta = fresh.schedule.beta(h.len().max(1), cands.len());
                            cands
                                .iter()
                                .map(|&c| {
                                    let p = model.predict(c as f64);
                                    (c, fresh.lp(&space, c) + p.mean - beta.sqrt() * p.sd())
                                })
                                .min_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
                                .map(|(c, _)| c)
                                .unwrap()
                        }
                        None => cands.iter().copied().min_by_key(|&c| (h.count_for(c), c)).unwrap(),
                    }
                }
            };
            assert_eq!(a, expected, "cached and scratch decisions diverged at iteration {it}");
            h.record(a, f(a));
        }
    }

    #[test]
    fn works_without_lp_curve() {
        let space = ActionSpace::unstructured(8);
        let mut g = GpDiscontinuous::new(&space);
        let h = drive(&mut g, &space, |n| (n as f64 - 5.0).powi(2) + 1.0, 30);
        assert!(h.records().iter().all(|&(a, _)| (1..=8).contains(&a)));
        let late = h.records().last().unwrap().0;
        assert!((4..=6).contains(&late), "late play {late}");
    }

    fn prior_from(h: &History) -> SurrogatePrior {
        SurrogatePrior {
            observations: h.records().to_vec(),
            noise_inflation: crate::PRIOR_NOISE_INFLATION,
            hyper: None,
        }
    }

    #[test]
    fn warm_start_compresses_the_initialization_to_two_plays() {
        let space = ActionSpace::new(12, vec![], Some(lp_curve(12, 60.0)));
        let f = |n: usize| 60.0 / n as f64 + 0.5 * n as f64; // min near 11

        // A "previous session" on the same platform donates its history.
        let mut donor = GpDiscontinuous::new(&space);
        let donated = drive(&mut donor, &space, f, 20);
        let mut warm = GpDiscontinuous::new(&space);
        assert!(warm.warm_start(prior_from(&donated)), "GP-disc accepts priors");
        let h = drive(&mut warm, &space, f, 6);
        let seq: Vec<usize> = h.records().iter().map(|r| r.0).collect();
        // All nodes is still measured live first (the y(N) baseline)...
        assert_eq!(seq[0], 12);
        // ...then one exploit probe at the donor's best action and the
        // GP takes over — no forced leftmost / middle / middle sequence;
        // with a converged donor the warm session should sit near the
        // optimum from iteration 2 on.
        let near = seq[1..].iter().filter(|&&a| (9..=12).contains(&a)).count();
        assert!(near >= 3, "warm plays after the baseline: {seq:?}");
    }

    #[test]
    fn warm_start_respects_the_live_bound_mechanism() {
        let space = ActionSpace::new(12, vec![], Some(lp_curve(12, 60.0)));
        let f = |n: usize| 60.0 / n as f64 + 0.3 * n as f64;
        let mut donor = GpDiscontinuous::new(&space);
        let donated = drive(&mut donor, &space, f, 15);
        let mut warm = GpDiscontinuous::new(&space);
        warm.warm_start(prior_from(&donated));
        let h = drive(&mut warm, &space, f, 20);
        // y(12) = f(12) = 8.6; LP(n) = 60/n >= 8.6 for n <= 6: after the
        // forced baseline no excluded action may ever be proposed, prior
        // pseudo-observations at those actions notwithstanding.
        for &(a, _) in &h.records()[1..] {
            assert!(a >= 7, "warm-started proposal {a} violates the bound mechanism");
        }
    }

    #[test]
    fn out_of_space_prior_points_are_ignored_and_proposals_stay_in_range() {
        // A prior measured on a *larger* platform, injected directly
        // (bypassing the builder's space check): its out-of-range points
        // must be dropped, and every proposal must stay in the live space.
        let big = ActionSpace::new(16, vec![], Some(lp_curve(16, 60.0)));
        let f = |n: usize| 60.0 / n as f64 + 0.5 * n as f64;
        let mut donor = GpDiscontinuous::new(&big);
        let donated = drive(&mut donor, &big, f, 20);
        assert!(donated.records().iter().any(|&(a, _)| a > 12), "donor used big actions");
        let small = ActionSpace::new(12, vec![], Some(lp_curve(12, 60.0)));
        let mut warm = GpDiscontinuous::new(&small);
        warm.warm_start(prior_from(&donated));
        let h = drive(&mut warm, &small, f, 15);
        assert!(h.records().iter().all(|&(a, _)| (1..=12).contains(&a)));
    }

    #[test]
    fn warm_runs_are_deterministic_given_the_same_prior() {
        let space = ActionSpace::new(14, vec![(1, 7), (8, 14)], Some(lp_curve(14, 70.0)));
        let f = |n: usize| 70.0 / n as f64 + 0.6 * n as f64;
        let mut donor = GpDiscontinuous::new(&space);
        let donated = drive(&mut donor, &space, f, 18);
        let run = |prior: SurrogatePrior| -> Vec<usize> {
            let mut g = GpDiscontinuous::new(&space);
            g.warm_start(prior);
            drive(&mut g, &space, f, 12).records().iter().map(|r| r.0).collect()
        };
        assert_eq!(run(prior_from(&donated)), run(prior_from(&donated)));
    }

    #[test]
    fn empty_prior_is_bitwise_a_cold_start() {
        let space = ActionSpace::new(12, vec![], Some(lp_curve(12, 60.0)));
        let f = |n: usize| 60.0 / n as f64 + 0.5 * n as f64;
        let mut cold = GpDiscontinuous::new(&space);
        let cold_seq: Vec<usize> =
            drive(&mut cold, &space, f, 15).records().iter().map(|r| r.0).collect();
        let mut warm = GpDiscontinuous::new(&space);
        warm.warm_start(SurrogatePrior {
            observations: vec![],
            noise_inflation: crate::PRIOR_NOISE_INFLATION,
            hyper: None,
        });
        let warm_seq: Vec<usize> =
            drive(&mut warm, &space, f, 15).records().iter().map(|r| r.0).collect();
        assert_eq!(cold_seq, warm_seq);
    }

    #[test]
    fn surrogate_hyper_reports_the_fitted_configuration() {
        let space = ActionSpace::new(10, vec![(1, 5), (6, 10)], Some(lp_curve(10, 40.0)));
        let mut g = GpDiscontinuous::new(&space);
        let h = drive(&mut g, &space, |n| 40.0 / n as f64 + 0.5 * n as f64, 15);
        let hyper = g.surrogate_hyper(&space, &h).expect("fit succeeds");
        assert_eq!(hyper.kernel_family, "exponential");
        assert_eq!(hyper.theta, 1.0, "GP-disc fixes theta");
        assert!(hyper.process_var > 0.0 && hyper.noise_var > 0.0);
        assert!(!hyper.trend_coefficients.is_empty(), "linear + dummy trend");
    }
}
