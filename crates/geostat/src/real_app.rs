//! The real (numerical) application: the same five phases executed as
//! actual kernels on the threaded executor, validated against the dense
//! reference likelihood.

use crate::covariance::{CovParams, Covariance};
use crate::dense::{dense_log_likelihood, sample_field, Locations};
use crate::workload::Workload;
use adaphet_linalg::{
    backward_sub, forward_sub, gemm_update, potrf_tile, syrk_update, trsm_right_lt, Mat,
};
use adaphet_runtime::{Access, BlockHandle, RealRuntime};
use std::sync::Arc;
use std::time::Duration;

/// A stored block: a matrix tile, a vector block, or a scalar accumulator.
#[derive(Debug, Clone)]
pub enum Block {
    /// Matrix tile.
    Tile(Mat),
    /// Vector block.
    Vector(Vec<f64>),
    /// Scalar accumulator.
    Scalar(f64),
}

impl Block {
    fn tile(&self) -> &Mat {
        match self {
            Block::Tile(m) => m,
            _ => panic!("expected a tile block"),
        }
    }
    fn tile_mut(&mut self) -> &mut Mat {
        match self {
            Block::Tile(m) => m,
            _ => panic!("expected a tile block"),
        }
    }
    fn vector(&self) -> &Vec<f64> {
        match self {
            Block::Vector(v) => v,
            _ => panic!("expected a vector block"),
        }
    }
    fn vector_mut(&mut self) -> &mut Vec<f64> {
        match self {
            Block::Vector(v) => v,
            _ => panic!("expected a vector block"),
        }
    }
    fn scalar_mut(&mut self) -> &mut f64 {
        match self {
            Block::Scalar(s) => s,
            _ => panic!("expected a scalar block"),
        }
    }
}

/// The shared-memory ExaGeoStat-like application.
///
/// Holds synthetic spatial data and evaluates the exact log-likelihood of
/// any covariance parameters via the tiled five-phase pipeline; each
/// evaluation returns the value *and* its real wall-clock duration, which
/// the overhead study (paper Fig. 7) compares against the tuner's cost.
pub struct GeoRealApp {
    rt: RealRuntime<Block>,
    workload: Workload,
    loc: Arc<Locations>,
    z: Vec<f64>,
    tiles: Vec<BlockHandle>,
    zb: Vec<BlockHandle>,
    xb: Vec<BlockHandle>,
    det: BlockHandle,
    dot: BlockHandle,
    /// Diagonal jitter matching the dense reference.
    nugget: f64,
    /// When set, tiles at |i-j| >= band are quantized to f32 (the
    /// mixed-precision extension).
    mixed_band: Option<usize>,
}

/// Quantize every entry of a tile to `f32` storage precision.
fn quantize_f32(m: &mut adaphet_linalg::Mat) {
    for v in m.as_mut_slice() {
        *v = *v as f32 as f64;
    }
}

impl GeoRealApp {
    /// Create the application with `workload.n()` synthetic observations
    /// drawn from `true_params` (deterministic given `seed`).
    pub fn new(workload: Workload, true_params: CovParams, seed: u64, n_workers: usize) -> Self {
        let n = workload.n();
        let loc = Arc::new(Locations::sample(n, seed));
        let cov = Covariance::new(true_params);
        let z = sample_field(&loc, &cov, seed ^ 0x5eed);
        let mut rt = RealRuntime::new(n_workers);
        let b = workload.tile;
        let mut tiles = Vec::with_capacity(workload.n_tiles_lower());
        for i in 0..workload.nt {
            for j in 0..=i {
                debug_assert_eq!(tiles.len(), workload.tile_index(i, j));
                tiles.push(rt.register(Block::Tile(Mat::zeros(b, b))));
            }
        }
        let zb: Vec<BlockHandle> = (0..workload.nt)
            .map(|k| rt.register(Block::Vector(z[k * b..(k + 1) * b].to_vec())))
            .collect();
        let xb: Vec<BlockHandle> =
            (0..workload.nt).map(|_| rt.register(Block::Vector(vec![0.0; b]))).collect();
        let det = rt.register(Block::Scalar(0.0));
        let dot = rt.register(Block::Scalar(0.0));
        GeoRealApp {
            rt,
            workload,
            loc,
            z,
            tiles,
            zb,
            xb,
            det,
            dot,
            nugget: 1e-10,
            mixed_band: None,
        }
    }

    /// The observations (for external checks).
    pub fn observations(&self) -> &[f64] {
        &self.z
    }

    /// The workload geometry.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// Exact dense-reference likelihood (O(n³) memory-heavy; small n only).
    pub fn reference_likelihood(&self, params: CovParams) -> f64 {
        dense_log_likelihood(&self.loc, &self.z, &Covariance::new(params))
    }

    /// Evaluate the log-likelihood with the paper's future-work
    /// *mixed-precision* scheme: tiles further than `f64_band` tiles from
    /// the diagonal are stored in single precision (their entries are
    /// quantized to `f32` after every write). `f64_band >= nt` is exact
    /// double precision; smaller bands trade likelihood accuracy for the
    /// speed the simulated path models ([`crate::GeoSimApp`] halves the
    /// flop count of single-precision tiles).
    pub fn eval_likelihood_mixed(&mut self, params: CovParams, f64_band: usize) -> (f64, Duration) {
        self.mixed_band = Some(f64_band);
        let out = self.eval_likelihood(params);
        self.mixed_band = None;
        out
    }

    /// Whether tile `(i, j)` is stored in single precision under `band`.
    fn is_f32_tile(band: Option<usize>, i: usize, j: usize) -> bool {
        match band {
            Some(b) => i.abs_diff(j) >= b,
            None => false,
        }
    }

    /// Evaluate the log-likelihood of `params` via the five tiled phases.
    /// Returns `(log_likelihood, wall_clock)`.
    pub fn eval_likelihood(&mut self, params: CovParams) -> (f64, Duration) {
        let (ll, wall, _) = self.eval_inner(params, false);
        (ll, wall)
    }

    /// Like [`GeoRealApp::eval_likelihood`], but with a barrier after each
    /// phase so the returned breakdown holds *measured* per-phase wall
    /// times `(phase name, seconds)` that sum to the returned total. Each
    /// phase also reports wall time, task count, and flops to the global
    /// metrics recorder (`real.phase.*`) when one is installed. The
    /// barriers forgo inter-phase task overlap, so the total can exceed
    /// an unprofiled evaluation's.
    pub fn eval_likelihood_profiled(
        &mut self,
        params: CovParams,
    ) -> (f64, Duration, Vec<(&'static str, f64)>) {
        self.eval_inner(params, true)
    }

    /// Wait for all submitted tasks of one phase, then record its profile.
    fn profile_barrier(
        &mut self,
        name: &'static str,
        tasks: u64,
        flops: f64,
        walls: &mut Vec<(&'static str, f64)>,
        total: &mut Duration,
    ) {
        let d = self.rt.run();
        *total += d;
        walls.push((name, d.as_secs_f64()));
        let r = adaphet_metrics::global();
        if r.enabled() {
            r.observe(&format!("real.phase.{name}.wall_s"), d.as_secs_f64());
            r.add(&format!("real.phase.{name}.tasks"), tasks as f64);
            r.add(&format!("real.phase.{name}.flops"), flops);
        }
    }

    fn eval_inner(
        &mut self,
        params: CovParams,
        profiled: bool,
    ) -> (f64, Duration, Vec<(&'static str, f64)>) {
        use adaphet_linalg::{flops, TileKernel};
        let w = self.workload;
        let b = w.tile;
        let nt = w.nt;
        let tiles = self.tiles.clone();
        let t = move |i: usize, j: usize| tiles[w.tile_index(i, j)];
        let mut walls: Vec<(&'static str, f64)> = Vec::new();
        let mut total = Duration::ZERO;
        let cov = Covariance::new(params);
        let nugget = self.nugget * params.variance;

        // Phase 1: generation (beyond-band tiles stored in f32).
        let band = self.mixed_band;
        for i in 0..nt {
            for j in 0..=i {
                let h = t(i, j);
                let loc = Arc::clone(&self.loc);
                let f32_tile = Self::is_f32_tile(band, i, j);
                self.rt.submit(vec![(h, Access::Write)], move |s| {
                    let mut g = s.write(h);
                    let tile = g.tile_mut();
                    for c in 0..b {
                        for r in 0..b {
                            let gi = i * b + r;
                            let gj = j * b + c;
                            let mut v = cov.cov(loc.dist(gi, gj));
                            if gi == gj {
                                v += nugget;
                            }
                            tile[(r, c)] = v;
                        }
                    }
                    if f32_tile {
                        quantize_f32(tile);
                    }
                });
            }
        }
        if profiled {
            let tasks = (nt * (nt + 1) / 2) as u64;
            self.profile_barrier("generation", tasks, w.generation_flops(), &mut walls, &mut total);
        }

        // Phase 2: tiled Cholesky.
        for k in 0..nt {
            let d = t(k, k);
            self.rt.submit(vec![(d, Access::ReadWrite)], move |s| {
                potrf_tile(s.write(d).tile_mut()).expect("covariance tile is SPD");
            });
            for i in k + 1..nt {
                let a = t(i, k);
                let f32_tile = Self::is_f32_tile(band, i, k);
                self.rt.submit(vec![(d, Access::Read), (a, Access::ReadWrite)], move |s| {
                    let dg = s.read(d);
                    let mut ag = s.write(a);
                    trsm_right_lt(dg.tile(), ag.tile_mut()).expect("trsm dims");
                    if f32_tile {
                        quantize_f32(ag.tile_mut());
                    }
                });
            }
            for i in k + 1..nt {
                let a = t(i, k);
                let c = t(i, i);
                self.rt.submit(vec![(a, Access::Read), (c, Access::ReadWrite)], move |s| {
                    let ag = s.read(a);
                    syrk_update(ag.tile(), s.write(c).tile_mut()).expect("syrk dims");
                });
                for j in k + 1..i {
                    let a = t(i, k);
                    let bb = t(j, k);
                    let c = t(i, j);
                    let f32_tile = Self::is_f32_tile(band, i, j);
                    self.rt.submit(
                        vec![(a, Access::Read), (bb, Access::Read), (c, Access::ReadWrite)],
                        move |s| {
                            let ag = s.read(a);
                            let bg = s.read(bb);
                            let mut cg = s.write(c);
                            gemm_update(ag.tile(), bg.tile(), cg.tile_mut()).expect("gemm dims");
                            if f32_tile {
                                quantize_f32(cg.tile_mut());
                            }
                        },
                    );
                }
            }
        }
        if profiled {
            let gemms = if nt >= 3 { nt * (nt - 1) * (nt - 2) / 6 } else { 0 };
            let tasks = (nt + nt * (nt - 1) + gemms) as u64;
            self.profile_barrier(
                "factorization",
                tasks,
                w.cholesky_flops(),
                &mut walls,
                &mut total,
            );
        }

        // Phase 3: solve. x := z, then L y = z, Lᵀ x = y over blocks.
        for k in 0..nt {
            let (zk, xk) = (self.zb[k], self.xb[k]);
            self.rt.submit(vec![(zk, Access::Read), (xk, Access::Write)], move |s| {
                let zv = s.read(zk);
                *s.write(xk).vector_mut() = zv.vector().clone();
            });
        }
        for k in 0..nt {
            let (d, xk) = (t(k, k), self.xb[k]);
            self.rt.submit(vec![(d, Access::Read), (xk, Access::ReadWrite)], move |s| {
                let dg = s.read(d);
                let mut xg = s.write(xk);
                let sol = forward_sub(dg.tile(), xg.vector()).expect("nonsingular");
                *xg.vector_mut() = sol;
            });
            for i in k + 1..nt {
                let (a, xk, xi) = (t(i, k), self.xb[k], self.xb[i]);
                self.rt.submit(
                    vec![(a, Access::Read), (xk, Access::Read), (xi, Access::ReadWrite)],
                    move |s| {
                        let ag = s.read(a);
                        let xkg = s.read(xk);
                        let mut xig = s.write(xi);
                        let y = ag.tile().matvec(xkg.vector());
                        for (o, v) in xig.vector_mut().iter_mut().zip(&y) {
                            *o -= v;
                        }
                    },
                );
            }
        }
        for k in (0..nt).rev() {
            let (d, xk) = (t(k, k), self.xb[k]);
            self.rt.submit(vec![(d, Access::Read), (xk, Access::ReadWrite)], move |s| {
                let dg = s.read(d);
                let mut xg = s.write(xk);
                let sol = backward_sub(dg.tile(), xg.vector()).expect("nonsingular");
                *xg.vector_mut() = sol;
            });
            for j in 0..k {
                let (a, xk, xj) = (t(k, j), self.xb[k], self.xb[j]);
                self.rt.submit(
                    vec![(a, Access::Read), (xk, Access::Read), (xj, Access::ReadWrite)],
                    move |s| {
                        // x_j -= L(k,j)ᵀ x_k.
                        let ag = s.read(a);
                        let xkg = s.read(xk);
                        let mut xjg = s.write(xj);
                        let y = ag.tile().matvec_t(xkg.vector());
                        for (o, v) in xjg.vector_mut().iter_mut().zip(&y) {
                            *o -= v;
                        }
                    },
                );
            }
        }
        if profiled {
            let tasks = (3 * nt + nt * (nt - 1)) as u64;
            let fl = nt as f64 * 2.0 * b as f64
                + 2.0
                    * (nt as f64 * flops(TileKernel::SolveTrsm, b)
                        + (nt * (nt - 1) / 2) as f64 * 2.0 * (b * b) as f64);
            self.profile_barrier("solve", tasks, fl, &mut walls, &mut total);
        }

        // Phase 4: determinant (reset + accumulate 2·Σ log L_kk).
        let det = self.det;
        self.rt.submit(vec![(det, Access::Write)], move |s| {
            *s.write(det).scalar_mut() = 0.0;
        });
        for k in 0..nt {
            let d = t(k, k);
            self.rt.submit(vec![(d, Access::Read), (det, Access::ReadWrite)], move |s| {
                let dg = s.read(d);
                let tile = dg.tile();
                let part: f64 = (0..b).map(|r| tile[(r, r)].ln()).sum::<f64>() * 2.0;
                *s.write(det).scalar_mut() += part;
            });
        }
        if profiled {
            let fl = nt as f64 * flops(TileKernel::Determinant, b);
            self.profile_barrier("determinant", (nt + 1) as u64, fl, &mut walls, &mut total);
        }

        // Phase 5: dot product xᵀ z.
        let dot = self.dot;
        self.rt.submit(vec![(dot, Access::Write)], move |s| {
            *s.write(dot).scalar_mut() = 0.0;
        });
        for k in 0..nt {
            let (xk, zk) = (self.xb[k], self.zb[k]);
            self.rt.submit(
                vec![(xk, Access::Read), (zk, Access::Read), (dot, Access::ReadWrite)],
                move |s| {
                    let xg = s.read(xk);
                    let zg = s.read(zk);
                    let part = adaphet_linalg::dot(xg.vector(), zg.vector());
                    *s.write(dot).scalar_mut() += part;
                },
            );
        }

        let wall = if profiled {
            let fl = nt as f64 * flops(TileKernel::DotProduct, b);
            self.profile_barrier("dot-product", (nt + 1) as u64, fl, &mut walls, &mut total);
            total
        } else {
            self.rt.run()
        };
        let det_v = match &*self.rt.block(self.det) {
            Block::Scalar(s) => *s,
            _ => unreachable!(),
        };
        let dot_v = match &*self.rt.block(self.dot) {
            Block::Scalar(s) => *s,
            _ => unreachable!(),
        };
        let n = w.n() as f64;
        let ll = -0.5 * (dot_v + det_v + n * (2.0 * std::f64::consts::PI).ln());
        (ll, wall, walls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(range: f64) -> CovParams {
        CovParams { variance: 1.0, range, smoothness: 0.5 }
    }

    #[test]
    fn tiled_likelihood_matches_dense_reference() {
        let w = Workload::new(4, 16); // n = 64
        let mut app = GeoRealApp::new(w, params(0.15), 42, 4);
        for r in [0.05, 0.15, 0.4] {
            let (ll, _) = app.eval_likelihood(params(r));
            let reference = app.reference_likelihood(params(r));
            assert!(
                (ll - reference).abs() < 1e-6 * (1.0 + reference.abs()),
                "range {r}: tiled {ll} vs dense {reference}"
            );
        }
    }

    #[test]
    fn repeated_evaluations_are_stable() {
        let w = Workload::new(3, 12);
        let mut app = GeoRealApp::new(w, params(0.2), 7, 2);
        let (a, _) = app.eval_likelihood(params(0.2));
        let (b, _) = app.eval_likelihood(params(0.2));
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn likelihood_prefers_true_range() {
        let w = Workload::new(4, 16);
        let mut app = GeoRealApp::new(w, params(0.2), 11, 4);
        let (ll_true, _) = app.eval_likelihood(params(0.2));
        let (ll_far, _) = app.eval_likelihood(params(5.0));
        assert!(ll_true > ll_far, "{ll_true} vs {ll_far}");
    }

    #[test]
    fn mle_via_golden_section_recovers_range() {
        let w = Workload::new(4, 12); // n = 48
        let mut app = GeoRealApp::new(w, params(0.2), 3, 4);
        let (best_log_range, _) = crate::mle::golden_section_max(
            |lr| app.eval_likelihood(params(lr.exp())).0,
            (0.01_f64).ln(),
            (2.0_f64).ln(),
            18,
        );
        let best = best_log_range.exp();
        // MLE on one small sample is noisy; accept a broad band around 0.2.
        assert!(best > 0.02 && best < 1.5, "estimated range {best}");
    }

    #[test]
    fn mixed_precision_trades_accuracy_monotonically() {
        // Full band == exact f64 result; shrinking the band moves the
        // likelihood away from the reference but keeps it finite/usable.
        let w = Workload::new(4, 16);
        let mut app = GeoRealApp::new(w, params(0.15), 21, 4);
        let p = params(0.15);
        let exact = app.eval_likelihood(p).0;
        let full_band = app.eval_likelihood_mixed(p, w.nt).0;
        assert!(
            (exact - full_band).abs() < 1e-12,
            "band >= nt must be exact: {exact} vs {full_band}"
        );
        let narrow = app.eval_likelihood_mixed(p, 1).0;
        let wide = app.eval_likelihood_mixed(p, 3).0;
        let err_narrow = (narrow - exact).abs();
        let err_wide = (wide - exact).abs();
        assert!(narrow.is_finite() && wide.is_finite());
        assert!(err_narrow > 0.0, "f32 storage must perturb the likelihood");
        assert!(
            err_wide <= err_narrow + 1e-9,
            "wider f64 band must not be less accurate: {err_wide} vs {err_narrow}"
        );
        // Single precision of covariance entries is still plenty for the
        // likelihood's leading digits.
        assert!(err_narrow / exact.abs() < 1e-2, "relative error {err_narrow}");
    }

    #[test]
    fn profiled_evaluation_matches_and_slices_sum_to_wall() {
        let w = Workload::new(4, 16);
        let mut app = GeoRealApp::new(w, params(0.15), 42, 4);
        let (ll, _) = app.eval_likelihood(params(0.15));
        let (llp, wall, phases) = app.eval_likelihood_profiled(params(0.15));
        assert!((ll - llp).abs() < 1e-9, "{ll} vs {llp}");
        let names: Vec<&str> = phases.iter().map(|&(n, _)| n).collect();
        assert_eq!(names, ["generation", "factorization", "solve", "determinant", "dot-product"]);
        let sum: f64 = phases.iter().map(|&(_, s)| s).sum();
        assert!(
            (sum - wall.as_secs_f64()).abs() < 1e-9,
            "barriered slices must sum to the total: {sum} vs {:?}",
            wall
        );
    }

    #[test]
    fn profiled_evaluation_reports_closed_form_task_counts() {
        use adaphet_metrics::{install_global, Registry};
        let reg = install_global(Registry::new());
        let w = Workload::new(4, 12);
        let mut app = GeoRealApp::new(w, params(0.2), 9, 2);
        let gen0 = reg.counter_value("real.phase.generation.tasks");
        let fact0 = reg.counter_value("real.phase.factorization.tasks");
        let solve0 = reg.counter_value("real.phase.solve.tasks");
        app.eval_likelihood_profiled(params(0.2));
        // nt = 4: 10 generation tiles; 4 potrf + 6 trsm + 6 syrk + 4 gemm;
        // 4 copies + 2 x (4 trsv + 6 updates).
        assert_eq!(reg.counter_value("real.phase.generation.tasks") - gen0, 10.0);
        assert_eq!(reg.counter_value("real.phase.factorization.tasks") - fact0, 20.0);
        assert_eq!(reg.counter_value("real.phase.solve.tasks") - solve0, 24.0);
        assert!(reg.counter_value("real.phase.factorization.flops") > 0.0);
    }

    #[test]
    fn wall_clock_is_positive() {
        let w = Workload::new(3, 8);
        let mut app = GeoRealApp::new(w, params(0.1), 1, 2);
        let (_, wall) = app.eval_likelihood(params(0.1));
        assert!(wall > Duration::ZERO);
    }
}
