//! Dense reference implementations: location sampling, covariance matrix
//! assembly, synthetic field generation and the exact log-likelihood.
//!
//! These are the ground truth the tiled/task-based paths are validated
//! against (feasible up to a few thousand observations).

use crate::covariance::Covariance;
use adaphet_linalg::{Cholesky, Mat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution as _, StandardNormal};

/// 2D observation locations in the unit square.
#[derive(Debug, Clone, PartialEq)]
pub struct Locations {
    /// (x, y) coordinates.
    pub points: Vec<(f64, f64)>,
}

impl Locations {
    /// Sample `n` uniform locations with a seeded RNG (deterministic).
    pub fn sample(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let points =
            (0..n).map(|_| (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0))).collect();
        Locations { points }
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether there are no locations.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Euclidean distance between locations `i` and `j`.
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        let (xi, yi) = self.points[i];
        let (xj, yj) = self.points[j];
        ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()
    }
}

/// Assemble the dense covariance matrix Σ_θ.
pub fn dense_covariance(loc: &Locations, cov: &Covariance) -> Mat {
    let n = loc.len();
    Mat::from_fn(n, n, |i, j| cov.cov(loc.dist(i, j)))
}

/// Draw a synthetic field `Z = L w` with `w ~ N(0, I)` so that
/// `Z ~ N(0, Σ_θ)` — the data-generation step of an ExaGeoStat experiment.
///
/// A small diagonal jitter keeps near-duplicate locations factorizable.
pub fn sample_field(loc: &Locations, cov: &Covariance, seed: u64) -> Vec<f64> {
    let mut sigma = dense_covariance(loc, cov);
    for i in 0..loc.len() {
        sigma[(i, i)] += 1e-10 * cov.params.variance;
    }
    let chol = Cholesky::factor(&sigma).expect("covariance matrix is SPD");
    let mut rng = StdRng::seed_from_u64(seed);
    let w: Vec<f64> = (0..loc.len()).map(|_| StandardNormal.sample(&mut rng)).collect();
    // Z = L w  (lower-triangular matvec).
    let l = chol.factor_l();
    let n = loc.len();
    let mut z = vec![0.0; n];
    for j in 0..n {
        let wj = w[j];
        if wj == 0.0 {
            continue;
        }
        let col = l.col(j);
        for (zi, &lij) in z[j..].iter_mut().zip(&col[j..]) {
            *zi += lij * wj;
        }
    }
    z
}

/// Exact Gaussian log-likelihood
/// `ℓ(θ) = −½ (Zᵀ Σ_θ⁻¹ Z + log|Σ_θ| + n log 2π)`.
pub fn dense_log_likelihood(loc: &Locations, z: &[f64], cov: &Covariance) -> f64 {
    assert_eq!(loc.len(), z.len(), "observation count mismatch");
    let mut sigma = dense_covariance(loc, cov);
    for i in 0..loc.len() {
        sigma[(i, i)] += 1e-10 * cov.params.variance;
    }
    let chol = Cholesky::factor(&sigma).expect("covariance matrix is SPD");
    let n = loc.len() as f64;
    -0.5 * (chol.quad_form(z) + chol.log_det() + n * (2.0 * std::f64::consts::PI).ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covariance::CovParams;

    fn cov() -> Covariance {
        Covariance::new(CovParams { variance: 1.0, range: 0.2, smoothness: 0.5 })
    }

    #[test]
    fn locations_deterministic_and_in_unit_square() {
        let a = Locations::sample(100, 9);
        let b = Locations::sample(100, 9);
        assert_eq!(a, b);
        for &(x, y) in &a.points {
            assert!((0.0..1.0).contains(&x) && (0.0..1.0).contains(&y));
        }
        assert!(Locations::sample(50, 1) != Locations::sample(50, 2));
    }

    #[test]
    fn covariance_matrix_is_symmetric_with_unit_diagonal() {
        let loc = Locations::sample(20, 3);
        let s = dense_covariance(&loc, &cov());
        for i in 0..20 {
            assert_eq!(s[(i, i)], 1.0);
            for j in 0..i {
                assert_eq!(s[(i, j)], s[(j, i)]);
            }
        }
    }

    #[test]
    fn sampled_field_has_plausible_scale() {
        let loc = Locations::sample(200, 5);
        let z = sample_field(&loc, &cov(), 11);
        let var: f64 = z.iter().map(|v| v * v).sum::<f64>() / z.len() as f64;
        // Marginal variance 1; correlated samples give a loose band.
        assert!(var > 0.2 && var < 5.0, "sample variance {var}");
    }

    #[test]
    fn likelihood_peaks_near_true_parameters() {
        // ℓ at the generating θ should beat clearly wrong ranges.
        let loc = Locations::sample(150, 7);
        let true_cov = cov();
        let z = sample_field(&loc, &true_cov, 13);
        let ll_true = dense_log_likelihood(&loc, &z, &true_cov);
        for wrong_range in [0.002, 5.0] {
            let wrong =
                Covariance::new(CovParams { variance: 1.0, range: wrong_range, smoothness: 0.5 });
            let ll_wrong = dense_log_likelihood(&loc, &z, &wrong);
            assert!(
                ll_true > ll_wrong,
                "range {wrong_range}: ll_true={ll_true} <= ll_wrong={ll_wrong}"
            );
        }
    }

    #[test]
    fn likelihood_of_white_noise_model_matches_formula() {
        // With variance v and zero correlation (huge distances), Σ = vI:
        // ℓ = -½(Σ z²/v + n log v + n log 2π).
        let loc = Locations { points: vec![(0.0, 0.0), (1000.0, 0.0), (0.0, 1000.0)] };
        let c = Covariance::new(CovParams { variance: 2.0, range: 1e-3, smoothness: 0.5 });
        let z = [1.0, -2.0, 0.5];
        let ll = dense_log_likelihood(&loc, &z, &c);
        let n = 3.0;
        let expect = -0.5
            * (z.iter().map(|v| v * v / 2.0).sum::<f64>()
                + n * 2.0_f64.ln()
                + n * (2.0 * std::f64::consts::PI).ln());
        assert!((ll - expect).abs() < 1e-6, "{ll} vs {expect}");
    }
}
