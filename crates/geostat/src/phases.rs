//! Task classes and phase DAG builders for the five application phases.

use crate::dist::TileDist;
use crate::workload::Workload;
use adaphet_linalg::{flops, TileKernel};
use adaphet_runtime::{Access, ClassId, ClassSpec, ClassTable, DataHandle, SimRuntime, TaskDesc};

/// The five application phases, used as trace tags (paper Fig. 1 colors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Covariance-matrix generation (CPU-only).
    Generation = 0,
    /// Tiled Cholesky factorization.
    Factorization = 1,
    /// Forward + backward triangular solve.
    Solve = 2,
    /// Log-determinant reduction.
    Determinant = 3,
    /// Final dot product of the likelihood.
    DotProduct = 4,
}

impl Phase {
    /// All phases in execution order.
    pub fn all() -> [Phase; 5] {
        [
            Phase::Generation,
            Phase::Factorization,
            Phase::Solve,
            Phase::Determinant,
            Phase::DotProduct,
        ]
    }

    /// Human-readable phase name (telemetry and trace labels).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Generation => "generation",
            Phase::Factorization => "factorization",
            Phase::Solve => "solve",
            Phase::Determinant => "determinant",
            Phase::DotProduct => "dot-product",
        }
    }

    /// Phase from its trace tag, if valid.
    pub fn from_tag(tag: u32) -> Option<Phase> {
        Phase::all().into_iter().find(|&p| p as u32 == tag)
    }
}

/// Registered task classes of the application, with the efficiency factors
/// that calibrate the simulator's duration model. GEMM-like kernels run
/// near peak on both architectures; POTRF is a poor GPU citizen; the
/// generation kernel is CPU-only, exactly as in the paper.
#[derive(Debug, Clone, Copy)]
pub struct GeoClasses {
    /// Covariance tile generation.
    pub generate: ClassId,
    /// Diagonal-tile Cholesky.
    pub potrf: ClassId,
    /// Panel triangular solve.
    pub trsm: ClassId,
    /// Diagonal trailing update.
    pub syrk: ClassId,
    /// Off-diagonal trailing update.
    pub gemm: ClassId,
    /// Small solve/copy/reduction tasks.
    pub small: ClassId,
}

impl GeoClasses {
    /// Register the classes into a fresh table.
    pub fn register() -> (ClassTable, GeoClasses) {
        let mut t = ClassTable::new();
        let generate = t.register(ClassSpec {
            name: "generate".into(),
            gpu_capable: false,
            cpu_efficiency: 0.5,
            gpu_efficiency: 1.0,
        });
        let potrf = t.register(ClassSpec {
            name: "potrf".into(),
            gpu_capable: true,
            cpu_efficiency: 0.5,
            gpu_efficiency: 0.05,
        });
        let trsm = t.register(ClassSpec {
            name: "trsm".into(),
            gpu_capable: true,
            cpu_efficiency: 0.8,
            gpu_efficiency: 0.4,
        });
        let syrk = t.register(ClassSpec {
            name: "syrk".into(),
            gpu_capable: true,
            cpu_efficiency: 0.9,
            gpu_efficiency: 0.55,
        });
        let gemm = t.register(ClassSpec {
            name: "gemm".into(),
            gpu_capable: true,
            cpu_efficiency: 0.9,
            gpu_efficiency: 0.6,
        });
        let small = t.register(ClassSpec {
            name: "small".into(),
            gpu_capable: false,
            cpu_efficiency: 0.2,
            gpu_efficiency: 1.0,
        });
        (t, GeoClasses { generate, potrf, trsm, syrk, gemm, small })
    }

    /// Effective GFLOP/s of a node for the factorization phase (dominated
    /// by GEMM) — the per-node weight of the heterogeneous distribution
    /// and of the LP lower bound.
    pub fn fact_gflops(&self, node: &adaphet_runtime::NodeSpec) -> f64 {
        0.9 * node.cpu_gflops() + 0.6 * node.gpus as f64 * node.gpu_gflops
    }

    /// Effective GFLOP/s of a node for the CPU-only generation phase.
    pub fn gen_gflops(&self, node: &adaphet_runtime::NodeSpec) -> f64 {
        0.5 * node.cpu_gflops()
    }
}

/// Handles of the application's registered data.
#[derive(Debug, Clone)]
pub struct GeoData {
    /// Lower tiles of Σ (linear index per [`Workload::tile_index`]).
    pub tiles: Vec<DataHandle>,
    /// Observation vector blocks (constant input).
    pub z: Vec<DataHandle>,
    /// Work vector blocks (overwritten per iteration).
    pub x: Vec<DataHandle>,
    /// Scalar accumulator for the log-determinant.
    pub det: DataHandle,
    /// Scalar accumulator for the dot product.
    pub dot: DataHandle,
}

/// Register all application data on the runtime, initially placed by
/// `dist`.
pub fn register_data(rt: &mut SimRuntime, w: Workload, dist: &TileDist) -> GeoData {
    let mut tiles = Vec::with_capacity(w.n_tiles_lower());
    for i in 0..w.nt {
        for j in 0..=i {
            debug_assert_eq!(tiles.len(), w.tile_index(i, j));
            tiles.push(rt.register_data(w.tile_bytes(), dist.owner(i, j)));
        }
    }
    let z = (0..w.nt).map(|i| rt.register_data(w.vec_block_bytes(), dist.vec_owner(i))).collect();
    let x = (0..w.nt).map(|i| rt.register_data(w.vec_block_bytes(), dist.vec_owner(i))).collect();
    let det = rt.register_data(8, adaphet_runtime::NodeId(0));
    let dot = rt.register_data(8, adaphet_runtime::NodeId(0));
    GeoData { tiles, z, x, det, dot }
}

/// Submit the generation phase: one CPU-only `Generate` task per stored
/// tile, writing it in place (`W` mode — previous contents are dead).
pub fn submit_generation(rt: &mut SimRuntime, c: &GeoClasses, w: Workload, data: &GeoData) {
    let fl = flops(TileKernel::Generate, w.tile);
    for i in 0..w.nt {
        for j in 0..=i {
            rt.submit(TaskDesc {
                class: c.generate,
                flops: fl,
                priority: 0,
                phase: Phase::Generation as u32,
                accesses: vec![(data.tiles[w.tile_index(i, j)], Access::Write)],
            });
        }
    }
}

/// Submit the tiled Cholesky factorization DAG with critical-path-aware
/// priorities (POTRF > TRSM > SYRK > GEMM, earlier panels first).
pub fn submit_cholesky(rt: &mut SimRuntime, c: &GeoClasses, w: Workload, data: &GeoData) {
    submit_cholesky_mixed(rt, c, w, data, None);
}

/// Mixed-precision variant (the paper's future-work extension): tasks
/// writing a tile with `|i − j| >= f64_band` run in single precision, at
/// half the flop cost (and half the transferred bytes would apply on real
/// hardware; the simulator keeps sizes conservative).
pub fn submit_cholesky_mixed(
    rt: &mut SimRuntime,
    c: &GeoClasses,
    w: Workload,
    data: &GeoData,
    f64_band: Option<usize>,
) {
    let nt = w.nt;
    let b = w.tile;
    let t = |i: usize, j: usize| data.tiles[w.tile_index(i, j)];
    let speedup = |i: usize, j: usize| match f64_band {
        Some(band) if i.abs_diff(j) >= band => 0.5,
        _ => 1.0,
    };
    let phase = Phase::Factorization as u32;
    for k in 0..nt {
        let base = 4 * (nt - k) as i32;
        rt.submit(TaskDesc {
            class: c.potrf,
            flops: flops(TileKernel::Potrf, b),
            priority: base + 3,
            phase,
            accesses: vec![(t(k, k), Access::ReadWrite)],
        });
        for i in k + 1..nt {
            rt.submit(TaskDesc {
                class: c.trsm,
                flops: flops(TileKernel::Trsm, b) * speedup(i, k),
                priority: base + 2,
                phase,
                accesses: vec![(t(k, k), Access::Read), (t(i, k), Access::ReadWrite)],
            });
        }
        for i in k + 1..nt {
            rt.submit(TaskDesc {
                class: c.syrk,
                flops: flops(TileKernel::Syrk, b),
                priority: base + 1,
                phase,
                accesses: vec![(t(i, k), Access::Read), (t(i, i), Access::ReadWrite)],
            });
            for j in k + 1..i {
                rt.submit(TaskDesc {
                    class: c.gemm,
                    flops: flops(TileKernel::Gemm, b) * speedup(i, j),
                    priority: base,
                    phase,
                    accesses: vec![
                        (t(i, k), Access::Read),
                        (t(j, k), Access::Read),
                        (t(i, j), Access::ReadWrite),
                    ],
                });
            }
        }
    }
}

/// Submit the solve phase: copy `z` into the work vector `x`, then
/// `L y = z` (forward) and `Lᵀ x = y` (backward) over vector blocks.
pub fn submit_solve(rt: &mut SimRuntime, c: &GeoClasses, w: Workload, data: &GeoData) {
    let nt = w.nt;
    let b = w.tile;
    let t = |i: usize, j: usize| data.tiles[w.tile_index(i, j)];
    let phase = Phase::Solve as u32;
    let trsv_fl = flops(TileKernel::SolveTrsm, b);
    // x := z (copies may land on whichever node owns x's block).
    for i in 0..nt {
        rt.submit(TaskDesc {
            class: c.small,
            flops: 2.0 * b as f64,
            priority: 2,
            phase,
            accesses: vec![(data.z[i], Access::Read), (data.x[i], Access::Write)],
        });
    }
    // Forward sweep.
    for k in 0..nt {
        rt.submit(TaskDesc {
            class: c.small,
            flops: trsv_fl,
            priority: 2,
            phase,
            accesses: vec![(t(k, k), Access::Read), (data.x[k], Access::ReadWrite)],
        });
        for i in k + 1..nt {
            rt.submit(TaskDesc {
                class: c.small,
                flops: 2.0 * (b * b) as f64,
                priority: 2,
                phase,
                accesses: vec![
                    (t(i, k), Access::Read),
                    (data.x[k], Access::Read),
                    (data.x[i], Access::ReadWrite),
                ],
            });
        }
    }
    // Backward sweep (Lᵀ).
    for k in (0..nt).rev() {
        rt.submit(TaskDesc {
            class: c.small,
            flops: trsv_fl,
            priority: 2,
            phase,
            accesses: vec![(t(k, k), Access::Read), (data.x[k], Access::ReadWrite)],
        });
        for j in 0..k {
            rt.submit(TaskDesc {
                class: c.small,
                flops: 2.0 * (b * b) as f64,
                priority: 2,
                phase,
                accesses: vec![
                    (t(k, j), Access::Read),
                    (data.x[k], Access::Read),
                    (data.x[j], Access::ReadWrite),
                ],
            });
        }
    }
}

/// Submit the determinant phase: accumulate `2 Σ log L_kk` into the `det`
/// scalar (a serial reduction of tiny tasks, as in ExaGeoStat).
pub fn submit_determinant(rt: &mut SimRuntime, c: &GeoClasses, w: Workload, data: &GeoData) {
    let fl = flops(TileKernel::Determinant, w.tile);
    for k in 0..w.nt {
        rt.submit(TaskDesc {
            class: c.small,
            flops: fl,
            priority: 1,
            phase: Phase::Determinant as u32,
            accesses: vec![
                (data.tiles[w.tile_index(k, k)], Access::Read),
                (data.det, Access::ReadWrite),
            ],
        });
    }
}

/// Submit the dot-product phase: accumulate `xᵀ z` into the `dot` scalar.
pub fn submit_dot(rt: &mut SimRuntime, c: &GeoClasses, w: Workload, data: &GeoData) {
    let fl = flops(TileKernel::DotProduct, w.tile);
    for k in 0..w.nt {
        rt.submit(TaskDesc {
            class: c.small,
            flops: fl,
            priority: 1,
            phase: Phase::DotProduct as u32,
            accesses: vec![
                (data.x[k], Access::Read),
                (data.z[k], Access::Read),
                (data.dot, Access::ReadWrite),
            ],
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, TileDist};
    use adaphet_runtime::{NetworkSpec, NodeId, NodeSpec, Platform, SimConfig};

    fn platform(n: usize) -> Platform {
        let nodes = (0..n)
            .map(|_| NodeSpec {
                name: "n".into(),
                cpu_cores: 4,
                gpus: 0,
                cpu_gflops_per_core: 10.0,
                gpu_gflops: 0.0,
                nic_gbps: 10.0,
            })
            .collect();
        Platform::new_sorted(nodes, NetworkSpec { backbone_gbps: 100.0, latency_s: 0.0 })
    }

    fn setup(nt: usize, n_nodes: usize) -> (SimRuntime, GeoClasses, Workload, GeoData) {
        setup_tile(nt, n_nodes, 32)
    }

    fn setup_tile(
        nt: usize,
        n_nodes: usize,
        tile: usize,
    ) -> (SimRuntime, GeoClasses, Workload, GeoData) {
        let (table, classes) = GeoClasses::register();
        let mut rt = SimRuntime::new(platform(n_nodes), table, SimConfig::default());
        let w = Workload::new(nt, tile);
        let nodes: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
        let dist = TileDist::build(w, Distribution::BlockCyclic2D, &nodes, &vec![1.0; n_nodes]);
        let data = register_data(&mut rt, w, &dist);
        (rt, classes, w, data)
    }

    #[test]
    fn generation_task_count() {
        let (mut rt, c, w, data) = setup(5, 2);
        submit_generation(&mut rt, &c, w, &data);
        rt.run();
        let gen_events =
            rt.trace().events().iter().filter(|e| e.phase == Phase::Generation as u32).count();
        assert_eq!(gen_events, 15); // 5*6/2 lower tiles
    }

    #[test]
    fn cholesky_task_counts_match_formula() {
        let nt = 6;
        let (mut rt, c, w, data) = setup(nt, 2);
        submit_generation(&mut rt, &c, w, &data);
        submit_cholesky(&mut rt, &c, w, &data);
        rt.run();
        let count = |cls: ClassId| rt.trace().events().iter().filter(|e| e.class == cls).count();
        assert_eq!(count(c.potrf), nt);
        assert_eq!(count(c.trsm), nt * (nt - 1) / 2);
        assert_eq!(count(c.syrk), nt * (nt - 1) / 2);
        assert_eq!(count(c.gemm), nt * (nt - 1) * (nt - 2) / 6);
    }

    #[test]
    fn full_iteration_completes_and_phases_ordered_per_tile() {
        let (mut rt, c, w, data) = setup(4, 2);
        submit_generation(&mut rt, &c, w, &data);
        submit_cholesky(&mut rt, &c, w, &data);
        submit_solve(&mut rt, &c, w, &data);
        submit_determinant(&mut rt, &c, w, &data);
        submit_dot(&mut rt, &c, w, &data);
        let r = rt.run();
        assert!(r.duration() > 0.0);
        // The potrf of tile (0,0) must start after its generation ends.
        let evs = rt.trace().events();
        let gen0 = evs.iter().find(|e| e.phase == Phase::Generation as u32).unwrap();
        let potrf0 = evs.iter().find(|e| e.class == c.potrf).unwrap();
        assert!(potrf0.start >= gen0.end - 1e-12);
        // Determinant and dot tasks all executed.
        let det = evs.iter().filter(|e| e.phase == Phase::Determinant as u32).count();
        let dot = evs.iter().filter(|e| e.phase == Phase::DotProduct as u32).count();
        assert_eq!(det, 4);
        assert_eq!(dot, 4);
    }

    #[test]
    fn more_nodes_speed_up_compute_bound_factorization() {
        // Large tiles keep the workload compute-bound; with tiny tiles,
        // communication dominates and fewer nodes win (also realistic —
        // that is exactly the paper's left-side-of-the-curve effect).
        let run_with = |n_nodes: usize| {
            let (mut rt, c, w, data) = setup_tile(8, n_nodes, 256);
            submit_generation(&mut rt, &c, w, &data);
            submit_cholesky(&mut rt, &c, w, &data);
            rt.run().duration()
        };
        let d1 = run_with(1);
        let d4 = run_with(4);
        assert!(d4 < d1, "4 nodes ({d4}) not faster than 1 ({d1})");
    }

    #[test]
    fn fact_weights_reflect_gpus() {
        let (_, classes) = GeoClasses::register();
        let cpu_node = NodeSpec {
            name: "s".into(),
            cpu_cores: 10,
            gpus: 0,
            cpu_gflops_per_core: 10.0,
            gpu_gflops: 0.0,
            nic_gbps: 10.0,
        };
        let gpu_node = NodeSpec { gpus: 2, gpu_gflops: 1000.0, ..cpu_node.clone() };
        assert!(classes.fact_gflops(&gpu_node) > 10.0 * classes.fact_gflops(&cpu_node));
        // Generation ignores GPUs entirely.
        assert_eq!(classes.gen_gflops(&gpu_node), classes.gen_gflops(&cpu_node));
    }
}
