//! Tile distributions over the selected nodes.
//!
//! The application redistributes data between phases (the paper's "flexible
//! data distribution"): generation spreads tiles across *all* nodes
//! proportionally to CPU speed, while the factorization places tiles on the
//! `n` selected nodes proportionally to their combined throughput, following
//! the heterogeneous allocation ideas of Beaumont et al. that the paper's
//! reference [4] builds on.
//!
//! Two allocation schemes are provided:
//!
//! * [`Distribution::BlockCyclic2D`] — the classic p×q grid, used when the
//!   selected nodes are homogeneous. Changing the node count reshapes the
//!   grid abruptly, which is one source of the paper's small "in-group"
//!   response-curve breaks.
//! * [`Distribution::WeightedBalance`] — deterministic greedy balancing of
//!   per-tile work proportional to node weights, used for heterogeneous
//!   node sets (slow nodes get few tiles — but the tiles they do get can
//!   still drag the Cholesky critical path, the paper's discontinuity at
//!   group boundaries).

use crate::workload::Workload;
use adaphet_runtime::NodeId;

/// Allocation scheme selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// p×q block-cyclic over the node list (homogeneous).
    BlockCyclic2D,
    /// Greedy weighted load balance (heterogeneous).
    WeightedBalance,
}

/// A concrete tile-to-node mapping for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TileDist {
    workload: Workload,
    /// Owner per lower-tile linear index.
    owners: Vec<NodeId>,
}

impl TileDist {
    /// Build a distribution of `workload`'s lower tiles over `nodes` with
    /// relative `weights` (same length as `nodes`; any positive scale).
    ///
    /// `BlockCyclic2D` ignores the weights. `WeightedBalance` assigns each
    /// tile — heaviest first, where tile `(i,j)` weighs `min(i,j)+1` update
    /// units — to the node with the smallest projected weighted load.
    ///
    /// # Panics
    /// Panics if `nodes` is empty or lengths mismatch.
    pub fn build(
        workload: Workload,
        scheme: Distribution,
        nodes: &[NodeId],
        weights: &[f64],
    ) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        assert_eq!(nodes.len(), weights.len(), "weights per node");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        match scheme {
            Distribution::BlockCyclic2D => Self::block_cyclic(workload, nodes),
            Distribution::WeightedBalance => Self::weighted(workload, nodes, weights),
        }
    }

    /// Pick [`Distribution::BlockCyclic2D`] when weights are (nearly)
    /// uniform and [`Distribution::WeightedBalance`] otherwise.
    pub fn auto(workload: Workload, nodes: &[NodeId], weights: &[f64]) -> Self {
        let max = weights.iter().copied().fold(f64::MIN, f64::max);
        let min = weights.iter().copied().fold(f64::MAX, f64::min);
        let scheme = if max / min < 1.05 {
            Distribution::BlockCyclic2D
        } else {
            Distribution::WeightedBalance
        };
        Self::build(workload, scheme, nodes, weights)
    }

    fn block_cyclic(workload: Workload, nodes: &[NodeId]) -> Self {
        let n = nodes.len();
        // Largest divisor of n that is <= sqrt(n) gives the squarest grid.
        let mut p = (n as f64).sqrt().floor() as usize;
        while p > 1 && !n.is_multiple_of(p) {
            p -= 1;
        }
        let p = p.max(1);
        let q = n / p;
        let mut owners = vec![NodeId(0); workload.n_tiles_lower()];
        for i in 0..workload.nt {
            for j in 0..=i {
                let slot = (i % p) * q + (j % q);
                owners[workload.tile_index(i, j)] = nodes[slot];
            }
        }
        TileDist { workload, owners }
    }

    fn weighted(workload: Workload, nodes: &[NodeId], weights: &[f64]) -> Self {
        // Tiles ordered heaviest-first, deterministic tie-break.
        let mut tiles: Vec<(usize, usize)> =
            (0..workload.nt).flat_map(|i| (0..=i).map(move |j| (i, j))).collect();
        let tile_work = |i: usize, j: usize| (i.min(j) + 1) as f64;
        tiles.sort_by(|&(ai, aj), &(bi, bj)| {
            tile_work(bi, bj).partial_cmp(&tile_work(ai, aj)).unwrap().then((ai, aj).cmp(&(bi, bj)))
        });
        let mut load = vec![0.0_f64; nodes.len()];
        let mut owners = vec![NodeId(0); workload.n_tiles_lower()];
        for (i, j) in tiles {
            let w = tile_work(i, j);
            // Node minimizing projected weighted finish time.
            let (best, _) = load
                .iter()
                .enumerate()
                .map(|(k, &l)| (k, (l + w) / weights[k]))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
                .expect("nodes non-empty");
            load[best] += w;
            owners[workload.tile_index(i, j)] = nodes[best];
        }
        TileDist { workload, owners }
    }

    /// Owner of lower tile `(i, j)`.
    pub fn owner(&self, i: usize, j: usize) -> NodeId {
        self.owners[self.workload.tile_index(i, j)]
    }

    /// Owner of vector block `i` (co-located with the diagonal tile).
    pub fn vec_owner(&self, i: usize) -> NodeId {
        self.owner(i, i)
    }

    /// The workload this distribution maps.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// Tiles per node (diagnostic).
    pub fn tile_counts(&self, n_nodes: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_nodes];
        for o in &self.owners {
            counts[o.0] += 1;
        }
        counts
    }

    /// Weighted work per node (min(i,j)+1 units per tile).
    pub fn work_per_node(&self, n_nodes: usize) -> Vec<f64> {
        let mut work = vec![0.0; n_nodes];
        for i in 0..self.workload.nt {
            for j in 0..=i {
                work[self.owner(i, j).0] += (i.min(j) + 1) as f64;
            }
        }
        work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn nodes(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn block_cyclic_uses_all_nodes_evenly() {
        let w = Workload::new(12, 8);
        let d = TileDist::build(w, Distribution::BlockCyclic2D, &nodes(4), &[1.0; 4]);
        let counts = d.tile_counts(4);
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 2.0, "imbalanced: {counts:?}");
    }

    #[test]
    fn weighted_balance_is_proportional() {
        let w = Workload::new(20, 8);
        // Node 0 four times faster than node 1.
        let d = TileDist::build(w, Distribution::WeightedBalance, &nodes(2), &[4.0, 1.0]);
        let work = d.work_per_node(2);
        let ratio = work[0] / work[1];
        assert!((ratio - 4.0).abs() < 1.0, "work ratio {ratio}");
    }

    #[test]
    fn single_node_owns_everything() {
        let w = Workload::new(6, 4);
        for scheme in [Distribution::BlockCyclic2D, Distribution::WeightedBalance] {
            let d = TileDist::build(w, scheme, &nodes(1), &[1.0]);
            assert_eq!(d.tile_counts(1)[0], w.n_tiles_lower());
        }
    }

    #[test]
    fn auto_picks_scheme_by_weight_spread() {
        let w = Workload::new(10, 4);
        let uniform = TileDist::auto(w, &nodes(4), &[1.0, 1.0, 1.0, 1.0]);
        let skewed = TileDist::auto(w, &nodes(4), &[4.0, 1.0, 1.0, 1.0]);
        let bc = TileDist::build(w, Distribution::BlockCyclic2D, &nodes(4), &[1.0; 4]);
        assert_eq!(uniform, bc);
        assert_ne!(skewed, bc);
    }

    #[test]
    fn vector_blocks_follow_diagonal() {
        let w = Workload::new(8, 4);
        let d = TileDist::build(w, Distribution::BlockCyclic2D, &nodes(3), &[1.0; 3]);
        for i in 0..8 {
            assert_eq!(d.vec_owner(i), d.owner(i, i));
        }
    }

    #[test]
    fn deterministic_construction() {
        let w = Workload::new(16, 4);
        let a = TileDist::build(
            w,
            Distribution::WeightedBalance,
            &nodes(5),
            &[3.0, 2.0, 1.0, 1.0, 1.0],
        );
        let b = TileDist::build(
            w,
            Distribution::WeightedBalance,
            &nodes(5),
            &[3.0, 2.0, 1.0, 1.0, 1.0],
        );
        assert_eq!(a, b);
    }

    #[test]
    fn changing_node_count_reshapes_block_cyclic() {
        // The "partition reorganization" effect: 4 -> 5 nodes changes the
        // grid shape (2x2 -> 1x5), remapping most tiles.
        let w = Workload::new(12, 4);
        let d4 = TileDist::build(w, Distribution::BlockCyclic2D, &nodes(4), &[1.0; 4]);
        let d5 = TileDist::build(w, Distribution::BlockCyclic2D, &nodes(5), &[1.0; 5]);
        let moved = (0..w.nt)
            .flat_map(|i| (0..=i).map(move |j| (i, j)))
            .filter(|&(i, j)| d4.owner(i, j) != d5.owner(i, j))
            .count();
        assert!(moved > w.n_tiles_lower() / 3, "only {moved} tiles moved");
    }

    proptest! {
        /// Every tile gets an owner within the node list, and weighted
        /// loads never leave a positive-weight node starved when there are
        /// enough tiles.
        #[test]
        fn prop_distribution_covers(nn in 1usize..9, nt in 4usize..16, seed in 0u64..50) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let w = Workload::new(nt, 4);
            let ns = nodes(nn);
            let weights: Vec<f64> = (0..nn).map(|_| rng.random_range(0.5..4.0)).collect();
            for scheme in [Distribution::BlockCyclic2D, Distribution::WeightedBalance] {
                let d = TileDist::build(w, scheme, &ns, &weights);
                let counts = d.tile_counts(nn);
                prop_assert_eq!(counts.iter().sum::<usize>(), w.n_tiles_lower());
                if w.n_tiles_lower() >= 4 * nn {
                    prop_assert!(counts.iter().all(|&c| c > 0), "starved node: {:?}", counts);
                }
            }
        }
    }
}
