//! Spatial covariance kernels (Matérn family), the θ of the application.

/// Hyper-parameters of the spatial covariance — the θ that ExaGeoStat's
/// outer loop optimizes by maximum likelihood.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CovParams {
    /// Partial sill (process variance) σ².
    pub variance: f64,
    /// Range parameter φ > 0 (correlation length).
    pub range: f64,
    /// Matérn smoothness ν ∈ {0.5, 1.5, 2.5} (half-integer forms).
    pub smoothness: f64,
}

impl CovParams {
    /// A reasonable default used by the examples.
    pub fn default_matern() -> Self {
        CovParams { variance: 1.0, range: 0.1, smoothness: 0.5 }
    }
}

/// The Matérn covariance function at half-integer smoothness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Covariance {
    /// Parameters θ.
    pub params: CovParams,
}

impl Covariance {
    /// Build from parameters.
    ///
    /// # Panics
    /// Panics if parameters are not positive or smoothness is not one of
    /// the supported half-integers.
    pub fn new(params: CovParams) -> Self {
        assert!(params.variance > 0.0, "variance must be positive");
        assert!(params.range > 0.0, "range must be positive");
        assert!(
            [0.5, 1.5, 2.5].contains(&params.smoothness),
            "supported smoothness: 0.5, 1.5, 2.5 (got {})",
            params.smoothness
        );
        Covariance { params }
    }

    /// Covariance at distance `d`.
    pub fn cov(&self, d: f64) -> f64 {
        let d = d.abs();
        let s2 = self.params.variance;
        if d == 0.0 {
            return s2;
        }
        let r = d / self.params.range;
        match self.params.smoothness {
            // ν = 1/2: exponential.
            0.5 => s2 * (-r).exp(),
            // ν = 3/2.
            1.5 => {
                let s = 3.0_f64.sqrt() * r;
                s2 * (1.0 + s) * (-s).exp()
            }
            // ν = 5/2.
            _ => {
                let s = 5.0_f64.sqrt() * r;
                s2 * (1.0 + s + s * s / 3.0) * (-s).exp()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_is_variance() {
        for nu in [0.5, 1.5, 2.5] {
            let c = Covariance::new(CovParams { variance: 2.5, range: 0.3, smoothness: nu });
            assert_eq!(c.cov(0.0), 2.5);
        }
    }

    #[test]
    fn exponential_form_at_half() {
        let c = Covariance::new(CovParams { variance: 1.0, range: 2.0, smoothness: 0.5 });
        assert!((c.cov(2.0) - (-1.0_f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn decreasing_in_distance() {
        for nu in [0.5, 1.5, 2.5] {
            let c = Covariance::new(CovParams { variance: 1.0, range: 0.5, smoothness: nu });
            let mut prev = c.cov(0.0);
            for k in 1..50 {
                let v = c.cov(k as f64 * 0.1);
                assert!(v <= prev + 1e-15, "nu={nu}");
                assert!(v > 0.0);
                prev = v;
            }
        }
    }

    #[test]
    fn smoother_kernels_flatter_near_origin() {
        let d = 0.02;
        let v: Vec<f64> = [0.5, 1.5, 2.5]
            .iter()
            .map(|&nu| {
                Covariance::new(CovParams { variance: 1.0, range: 0.5, smoothness: nu }).cov(d)
            })
            .collect();
        assert!(v[0] < v[1] && v[1] < v[2]);
    }

    #[test]
    #[should_panic(expected = "supported smoothness")]
    fn unsupported_smoothness_panics() {
        Covariance::new(CovParams { variance: 1.0, range: 1.0, smoothness: 1.0 });
    }
}
