//! The simulated multi-phase application driver.

use crate::dist::TileDist;
use crate::phases::{self, GeoClasses, GeoData};
use crate::workload::Workload;
use adaphet_lp::proportional_share_bound;
use adaphet_runtime::{NodeId, Platform, RunReport, SimConfig, SimRuntime};

/// Node-count choice of one iteration: how many (fastest-first) nodes each
/// phase uses. The paper's main search space is `n_fact` with
/// `n_gen = N` ("the application uses all the nodes in the generation step
/// ... as this phase is embarrassingly parallel"); Fig. 8 explores both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationChoice {
    /// Nodes used by the generation phase (1..=N).
    pub n_gen: usize,
    /// Nodes used by the factorization (and subsequent phases) (1..=N).
    pub n_fact: usize,
}

impl IterationChoice {
    /// All nodes for both phases — the application's default behaviour.
    pub fn all(n: usize) -> Self {
        IterationChoice { n_gen: n, n_fact: n }
    }

    /// All nodes for generation, `n_fact` for the factorization.
    pub fn fact_only(n_total: usize, n_fact: usize) -> Self {
        IterationChoice { n_gen: n_total, n_fact }
    }
}

/// The ExaGeoStat-like application bound to a simulated platform.
///
/// Each [`GeoSimApp::run_iteration`] performs the five phases under the
/// given node-count choice, including the data redistributions between the
/// generation and factorization placements (asynchronous, overlapping).
pub struct GeoSimApp {
    rt: SimRuntime,
    classes: GeoClasses,
    workload: Workload,
    data: GeoData,
    iterations: usize,
}

impl GeoSimApp {
    /// Build the application on `platform` (nodes must be sorted fastest
    /// first, as [`Platform::new_sorted`] guarantees).
    pub fn new(platform: Platform, workload: Workload, sim: SimConfig) -> Self {
        assert!(!platform.is_empty(), "platform needs nodes");
        let (table, classes) = GeoClasses::register();
        let mut rt = SimRuntime::new(platform, table, sim);
        // Initial placement: factorization layout over all nodes.
        let dist = Self::fact_dist(rt.platform(), &classes, workload, rt.platform().len());
        let data = phases::register_data(&mut rt, workload, &dist);
        GeoSimApp { rt, classes, workload, data, iterations: 0 }
    }

    /// Number of nodes of the platform.
    pub fn n_nodes(&self) -> usize {
        self.rt.platform().len()
    }

    /// The workload being solved.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// Underlying simulated runtime (trace access etc.).
    pub fn runtime(&self) -> &SimRuntime {
        &self.rt
    }

    /// Disable trace recording for long sweeps.
    pub fn set_trace_enabled(&mut self, on: bool) {
        self.rt.set_trace_enabled(on);
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    fn gen_dist(platform: &Platform, classes: &GeoClasses, w: Workload, n_gen: usize) -> TileDist {
        let nodes: Vec<NodeId> = (0..n_gen).map(NodeId).collect();
        let weights: Vec<f64> =
            (0..n_gen).map(|i| classes.gen_gflops(platform.node(NodeId(i))).max(1e-9)).collect();
        TileDist::auto(w, &nodes, &weights)
    }

    fn fact_dist(
        platform: &Platform,
        classes: &GeoClasses,
        w: Workload,
        n_fact: usize,
    ) -> TileDist {
        let nodes: Vec<NodeId> = (0..n_fact).map(NodeId).collect();
        let weights: Vec<f64> =
            (0..n_fact).map(|i| classes.fact_gflops(platform.node(NodeId(i))).max(1e-9)).collect();
        TileDist::auto(w, &nodes, &weights)
    }

    /// Run one full iteration (all five phases) with the given node
    /// choice; returns the simulated report whose duration is the
    /// iteration time the tuner observes.
    ///
    /// # Panics
    /// Panics if a phase node count is 0 or exceeds the platform size.
    pub fn run_iteration(&mut self, choice: IterationChoice) -> RunReport {
        self.run_iteration_mixed(choice, None)
    }

    /// Like [`GeoSimApp::run_iteration`], but tiles at `|i − j| >=
    /// f64_band` are factorized in single precision at half the flop cost
    /// (the paper's future-work mixed-precision trade-off; the matching
    /// accuracy impact is measured by
    /// [`crate::GeoRealApp::eval_likelihood_mixed`]).
    pub fn run_iteration_mixed(
        &mut self,
        choice: IterationChoice,
        f64_band: Option<usize>,
    ) -> RunReport {
        let n = self.n_nodes();
        assert!(
            (1..=n).contains(&choice.n_gen) && (1..=n).contains(&choice.n_fact),
            "node counts must be within 1..={n}"
        );
        let w = self.workload;
        let platform = self.rt.platform().clone();
        let gen = Self::gen_dist(&platform, &self.classes, w, choice.n_gen);
        let fact = Self::fact_dist(&platform, &self.classes, w, choice.n_fact);

        // Generation: tiles are regenerated in place (W mode), so moving
        // their placement is ownership-only (no bytes).
        for i in 0..w.nt {
            for j in 0..=i {
                self.rt.reassign(self.data.tiles[w.tile_index(i, j)], gen.owner(i, j));
            }
        }
        phases::submit_generation(&mut self.rt, &self.classes, w, &self.data);

        // Redistribution to the factorization layout: real transfers,
        // asynchronous and overlapping with the ongoing generation.
        for i in 0..w.nt {
            for j in 0..=i {
                self.rt.migrate(self.data.tiles[w.tile_index(i, j)], fact.owner(i, j));
            }
        }
        for i in 0..w.nt {
            self.rt.reassign(self.data.x[i], fact.vec_owner(i));
        }

        phases::submit_cholesky_mixed(&mut self.rt, &self.classes, w, &self.data, f64_band);
        phases::submit_solve(&mut self.rt, &self.classes, w, &self.data);
        phases::submit_determinant(&mut self.rt, &self.classes, w, &self.data);
        phases::submit_dot(&mut self.rt, &self.classes, w, &self.data);

        self.iterations += 1;
        self.rt.run()
    }

    /// Per-phase busy time (summed over all workers) within the time
    /// window of `report` — the phase breakdown that tuner telemetry
    /// attaches to each iteration. Phases with no busy time are omitted;
    /// the result is empty when trace recording is disabled.
    pub fn phase_breakdown(&self, report: &RunReport) -> Vec<(&'static str, f64)> {
        let trace = self.rt.trace();
        phases::Phase::all()
            .into_iter()
            .map(|p| {
                let busy: f64 = trace
                    .events()
                    .iter()
                    .filter(|e| e.phase == p as u32)
                    .map(|e| (e.end.min(report.end) - e.start.max(report.start)).max(0.0))
                    .sum();
                (p.name(), busy)
            })
            .filter(|&(_, busy)| busy > 0.0)
            .collect()
    }

    /// The LP lower bound `LP(n_fact)` of one iteration (paper Section II):
    /// the max over phases of the heterogeneous work bound — optimistic,
    /// ignoring communications and the critical path.
    pub fn lp_bound(&self, choice: IterationChoice) -> f64 {
        lp_bound_for(self.rt.platform(), &self.classes, self.workload, choice)
    }

    /// Ideal per-node factorization work shares from the LP (used by the
    /// heterogeneous distribution and reported in diagnostics).
    pub fn lp_shares(&self, n_fact: usize) -> Vec<f64> {
        let unit_times: Vec<f64> = (0..n_fact)
            .map(|i| 1.0 / (self.classes.fact_gflops(self.rt.platform().node(NodeId(i))) * 1e9))
            .collect();
        proportional_share_bound(self.workload.cholesky_flops(), &unit_times).shares
    }
}

/// Free-standing LP bound (also used by the evaluation harness without
/// instantiating a full app).
pub fn lp_bound_for(
    platform: &Platform,
    classes: &GeoClasses,
    w: Workload,
    choice: IterationChoice,
) -> f64 {
    let gen_times: Vec<f64> = (0..choice.n_gen)
        .map(|i| 1.0 / (classes.gen_gflops(platform.node(NodeId(i))) * 1e9))
        .collect();
    let fact_times: Vec<f64> = (0..choice.n_fact)
        .map(|i| 1.0 / (classes.fact_gflops(platform.node(NodeId(i))) * 1e9))
        .collect();
    let gen = proportional_share_bound(w.generation_flops(), &gen_times).makespan;
    let fact = proportional_share_bound(w.cholesky_flops(), &fact_times).makespan;
    gen.max(fact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaphet_runtime::{NetworkSpec, NodeSpec};

    fn hybrid_platform(n_gpu: usize, n_cpu: usize) -> Platform {
        let mut nodes = Vec::new();
        for _ in 0..n_gpu {
            nodes.push(NodeSpec {
                name: "L".into(),
                cpu_cores: 8,
                gpus: 2,
                cpu_gflops_per_core: 20.0,
                gpu_gflops: 2000.0,
                nic_gbps: 10.0,
            });
        }
        for _ in 0..n_cpu {
            nodes.push(NodeSpec {
                name: "S".into(),
                cpu_cores: 8,
                gpus: 0,
                cpu_gflops_per_core: 20.0,
                gpu_gflops: 0.0,
                nic_gbps: 10.0,
            });
        }
        Platform::new_sorted(nodes, NetworkSpec { backbone_gbps: 100.0, latency_s: 1e-5 })
    }

    fn small_app(n_gpu: usize, n_cpu: usize, nt: usize) -> GeoSimApp {
        GeoSimApp::new(hybrid_platform(n_gpu, n_cpu), Workload::new(nt, 64), SimConfig::default())
    }

    #[test]
    fn iteration_runs_and_time_advances() {
        let mut app = small_app(1, 2, 6);
        let n = app.n_nodes();
        let r1 = app.run_iteration(IterationChoice::all(n));
        assert!(r1.duration() > 0.0);
        let r2 = app.run_iteration(IterationChoice::all(n));
        assert!(r2.start >= r1.end - 1e-9, "iterations are sequential");
        assert_eq!(app.iterations(), 2);
    }

    #[test]
    fn restricting_fact_nodes_changes_duration() {
        let mut app = small_app(2, 4, 8);
        let n = app.n_nodes();
        let all = app.run_iteration(IterationChoice::all(n)).duration();
        let few = app.run_iteration(IterationChoice::fact_only(n, 2)).duration();
        assert!(all > 0.0 && few > 0.0);
        assert!((all - few).abs() > 1e-12, "choice must matter");
    }

    #[test]
    fn lp_bound_decreases_with_fact_nodes_and_floors_at_generation() {
        let app = small_app(2, 4, 8);
        let n = app.n_nodes();
        let mut prev = f64::INFINITY;
        for k in 1..=n {
            let b = app.lp_bound(IterationChoice::fact_only(n, k));
            assert!(b > 0.0 && b <= prev + 1e-12, "bound must be non-increasing");
            prev = b;
        }
        // Bound can never drop below the generation-phase bound.
        let gen_floor = app.lp_bound(IterationChoice { n_gen: n, n_fact: n });
        assert!(gen_floor > 0.0);
    }

    #[test]
    fn lp_bound_is_a_true_lower_bound() {
        let mut app = small_app(1, 2, 6);
        let n = app.n_nodes();
        for k in [1, 2, 3] {
            let choice = IterationChoice::fact_only(n, k);
            let bound = app.lp_bound(choice);
            let measured = app.run_iteration(choice).duration();
            assert!(bound <= measured + 1e-9, "LP({k}) = {bound} exceeds measured {measured}");
        }
    }

    #[test]
    fn lp_shares_sum_to_total_work() {
        let app = small_app(2, 2, 6);
        let shares = app.lp_shares(3);
        let total: f64 = shares.iter().sum();
        assert!((total - app.workload().cholesky_flops()).abs() < 1e-3 * total);
        // The GPU nodes (fastest) get the lion's share.
        assert!(shares[0] > shares[2]);
    }

    #[test]
    #[should_panic(expected = "node counts")]
    fn zero_fact_nodes_rejected() {
        let mut app = small_app(1, 1, 4);
        app.run_iteration(IterationChoice { n_gen: 2, n_fact: 0 });
    }

    #[test]
    fn mixed_precision_speeds_up_the_iteration() {
        let mut app = small_app(0, 2, 8); // CPU-only: duration ∝ flops
        let n = app.n_nodes();
        let full = app.run_iteration_mixed(IterationChoice::all(n), None).duration();
        let mixed = app.run_iteration_mixed(IterationChoice::all(n), Some(2)).duration();
        assert!(mixed < full, "single-precision off-band tiles must be faster: {mixed} vs {full}");
        // Band >= nt is plain double precision.
        let same = app.run_iteration_mixed(IterationChoice::all(n), Some(8)).duration();
        assert!((same - full).abs() < 0.05 * full, "{same} vs {full}");
    }

    #[test]
    fn phase_breakdown_covers_the_iteration_window() {
        let mut app = small_app(1, 2, 6);
        let n = app.n_nodes();
        let r1 = app.run_iteration(IterationChoice::all(n));
        let r2 = app.run_iteration(IterationChoice::fact_only(n, 2));
        for r in [&r1, &r2] {
            let breakdown = app.phase_breakdown(r);
            assert!(!breakdown.is_empty(), "tracing is on by default");
            let names: Vec<&str> = breakdown.iter().map(|&(p, _)| p).collect();
            assert!(names.contains(&"generation"), "{names:?}");
            assert!(names.contains(&"factorization"), "{names:?}");
            for &(name, busy) in &breakdown {
                assert!(busy > 0.0, "{name} has zero busy time");
            }
        }
        // The two windows select disjoint work: total busy time within
        // each report stays within that report's window bounds.
        let b1: f64 = app.phase_breakdown(&r1).iter().map(|&(_, b)| b).sum();
        let b2: f64 = app.phase_breakdown(&r2).iter().map(|&(_, b)| b).sum();
        assert!(b1 > 0.0 && b2 > 0.0);
    }

    #[test]
    fn deterministic_iterations() {
        let run = || {
            let mut app = small_app(1, 3, 6);
            let n = app.n_nodes();
            let a = app.run_iteration(IterationChoice::fact_only(n, 2)).duration();
            let b = app.run_iteration(IterationChoice::fact_only(n, 4)).duration();
            (a, b)
        };
        assert_eq!(run(), run());
    }
}
