//! The simulated multi-phase application driver.

use crate::dist::TileDist;
use crate::phases::{self, GeoClasses, GeoData};
use crate::workload::Workload;
use adaphet_lp::proportional_share_bound;
use adaphet_metrics::{NoopRecorder, Recorder};
use adaphet_runtime::{NodeId, Platform, RunReport, SimConfig, SimRuntime};
use std::sync::Arc;

/// Node-count choice of one iteration: how many (fastest-first) nodes each
/// phase uses. The paper's main search space is `n_fact` with
/// `n_gen = N` ("the application uses all the nodes in the generation step
/// ... as this phase is embarrassingly parallel"); Fig. 8 explores both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationChoice {
    /// Nodes used by the generation phase (1..=N).
    pub n_gen: usize,
    /// Nodes used by the factorization (and subsequent phases) (1..=N).
    pub n_fact: usize,
}

impl IterationChoice {
    /// All nodes for both phases — the application's default behaviour.
    pub fn all(n: usize) -> Self {
        IterationChoice { n_gen: n, n_fact: n }
    }

    /// All nodes for generation, `n_fact` for the factorization.
    pub fn fact_only(n_total: usize, n_fact: usize) -> Self {
        IterationChoice { n_gen: n_total, n_fact }
    }
}

/// The ExaGeoStat-like application bound to a simulated platform.
///
/// Each [`GeoSimApp::run_iteration`] performs the five phases under the
/// given node-count choice, including the data redistributions between the
/// generation and factorization placements (asynchronous, overlapping).
pub struct GeoSimApp {
    rt: SimRuntime,
    classes: GeoClasses,
    workload: Workload,
    data: GeoData,
    iterations: usize,
    recorder: Arc<dyn Recorder>,
}

/// Per-iteration profile produced by [`GeoSimApp::run_iteration_profiled`].
///
/// `phases` holds *disjoint wall-clock slices* that tile the iteration
/// window (they sum to `makespan_s` when tracing is on), unlike
/// [`GeoSimApp::phase_breakdown`], whose per-phase busy times overlap.
#[derive(Debug, Clone)]
pub struct IterationMetrics {
    /// Simulated iteration duration in seconds.
    pub makespan_s: f64,
    /// Disjoint wall-clock phase slices `(phase name, seconds)` in
    /// completion order; empty when trace recording is disabled.
    pub phases: Vec<(&'static str, f64)>,
    /// Tasks executed per phase `(phase name, count)` this iteration.
    pub phase_tasks: Vec<(&'static str, u64)>,
    /// Useful flops per phase `(phase name, flops)` this iteration.
    pub phase_flops: Vec<(&'static str, f64)>,
    /// Per homogeneous node group: `(label, busy seconds, idle seconds)`
    /// over the iteration window, counting every CPU core and GPU as one
    /// worker. Busy time needs the trace; with tracing off it reads 0.
    pub groups: Vec<(String, f64, f64)>,
}

impl GeoSimApp {
    /// Build the application on `platform` (nodes must be sorted fastest
    /// first, as [`Platform::new_sorted`] guarantees).
    pub fn new(platform: Platform, workload: Workload, sim: SimConfig) -> Self {
        assert!(!platform.is_empty(), "platform needs nodes");
        let (table, classes) = GeoClasses::register();
        let mut rt = SimRuntime::new(platform, table, sim);
        // Initial placement: factorization layout over all nodes.
        let dist = Self::fact_dist(rt.platform(), &classes, workload, rt.platform().len());
        let data = phases::register_data(&mut rt, workload, &dist);
        GeoSimApp { rt, classes, workload, data, iterations: 0, recorder: Arc::new(NoopRecorder) }
    }

    /// Install a metrics recorder; a clone is forwarded to the underlying
    /// runtime so simulator counters flush to the same registry.
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.rt.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// Number of nodes of the platform.
    pub fn n_nodes(&self) -> usize {
        self.rt.platform().len()
    }

    /// The workload being solved.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// Underlying simulated runtime (trace access etc.).
    pub fn runtime(&self) -> &SimRuntime {
        &self.rt
    }

    /// Disable trace recording for long sweeps.
    pub fn set_trace_enabled(&mut self, on: bool) {
        self.rt.set_trace_enabled(on);
    }

    /// Slow the node at fastest-first `rank` (1-based) down by `factor`
    /// (>= 1) — the straggler hook of the fault-injection harness; see
    /// [`SimRuntime::set_speed_factor`].
    pub fn set_rank_slowdown(&mut self, rank: usize, factor: f64) {
        assert!((1..=self.n_nodes()).contains(&rank), "rank out of range");
        self.rt.set_speed_factor(NodeId(rank - 1), factor);
    }

    /// Restore every node to nominal speed.
    pub fn clear_slowdowns(&mut self) {
        self.rt.clear_speed_factors();
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    fn gen_dist(platform: &Platform, classes: &GeoClasses, w: Workload, n_gen: usize) -> TileDist {
        let nodes: Vec<NodeId> = (0..n_gen).map(NodeId).collect();
        let weights: Vec<f64> =
            (0..n_gen).map(|i| classes.gen_gflops(platform.node(NodeId(i))).max(1e-9)).collect();
        TileDist::auto(w, &nodes, &weights)
    }

    fn fact_dist(
        platform: &Platform,
        classes: &GeoClasses,
        w: Workload,
        n_fact: usize,
    ) -> TileDist {
        let nodes: Vec<NodeId> = (0..n_fact).map(NodeId).collect();
        let weights: Vec<f64> =
            (0..n_fact).map(|i| classes.fact_gflops(platform.node(NodeId(i))).max(1e-9)).collect();
        TileDist::auto(w, &nodes, &weights)
    }

    /// Run one full iteration (all five phases) with the given node
    /// choice; returns the simulated report whose duration is the
    /// iteration time the tuner observes.
    ///
    /// # Panics
    /// Panics if a phase node count is 0 or exceeds the platform size.
    pub fn run_iteration(&mut self, choice: IterationChoice) -> RunReport {
        self.run_iteration_mixed(choice, None)
    }

    /// Like [`GeoSimApp::run_iteration`], but tiles at `|i − j| >=
    /// f64_band` are factorized in single precision at half the flop cost
    /// (the paper's future-work mixed-precision trade-off; the matching
    /// accuracy impact is measured by
    /// [`crate::GeoRealApp::eval_likelihood_mixed`]).
    pub fn run_iteration_mixed(
        &mut self,
        choice: IterationChoice,
        f64_band: Option<usize>,
    ) -> RunReport {
        let n = self.n_nodes();
        assert!(
            (1..=n).contains(&choice.n_gen) && (1..=n).contains(&choice.n_fact),
            "node counts must be within 1..={n}"
        );
        let w = self.workload;
        let gen = Self::gen_dist(self.rt.platform(), &self.classes, w, choice.n_gen);
        let fact = Self::fact_dist(self.rt.platform(), &self.classes, w, choice.n_fact);

        // Generation: tiles are regenerated in place (W mode), so moving
        // their placement is ownership-only (no bytes).
        for i in 0..w.nt {
            for j in 0..=i {
                self.rt.reassign(self.data.tiles[w.tile_index(i, j)], gen.owner(i, j));
            }
        }
        phases::submit_generation(&mut self.rt, &self.classes, w, &self.data);

        // Redistribution to the factorization layout: real transfers,
        // asynchronous and overlapping with the ongoing generation.
        for i in 0..w.nt {
            for j in 0..=i {
                self.rt.migrate(self.data.tiles[w.tile_index(i, j)], fact.owner(i, j));
            }
        }
        for i in 0..w.nt {
            self.rt.reassign(self.data.x[i], fact.vec_owner(i));
        }

        phases::submit_cholesky_mixed(&mut self.rt, &self.classes, w, &self.data, f64_band);
        phases::submit_solve(&mut self.rt, &self.classes, w, &self.data);
        phases::submit_determinant(&mut self.rt, &self.classes, w, &self.data);
        phases::submit_dot(&mut self.rt, &self.classes, w, &self.data);

        self.iterations += 1;
        self.rt.run()
    }

    /// Per-phase busy time (summed over all workers) within the time
    /// window of `report` — the phase breakdown that tuner telemetry
    /// attaches to each iteration. Phases with no busy time are omitted;
    /// the result is empty when trace recording is disabled.
    pub fn phase_breakdown(&self, report: &RunReport) -> Vec<(&'static str, f64)> {
        let trace = self.rt.trace();
        phases::Phase::all()
            .into_iter()
            .map(|p| {
                let busy: f64 = trace
                    .events()
                    .iter()
                    .filter(|e| e.phase == p as u32)
                    .map(|e| (e.end.min(report.end) - e.start.max(report.start)).max(0.0))
                    .sum();
                (p.name(), busy)
            })
            .filter(|&(_, busy)| busy > 0.0)
            .collect()
    }

    /// Run one iteration and return, alongside the report, an
    /// [`IterationMetrics`] profile: disjoint wall-clock phase slices,
    /// per-phase task/flop counts, and per-node-group utilization. When a
    /// recorder is installed (see [`GeoSimApp::set_recorder`]) the profile
    /// is also emitted as `app.*` metrics.
    ///
    /// Wall slices are derived from the trace: each phase contributes the
    /// wall-clock interval up to the completion of its last task, so the
    /// slices tile the window exactly and sum to the makespan. Tracing
    /// must be enabled for `phases`/group busy time to be populated.
    pub fn run_iteration_profiled(
        &mut self,
        choice: IterationChoice,
    ) -> (RunReport, IterationMetrics) {
        let all = phases::Phase::all();
        let before: Vec<(u64, f64)> = all.iter().map(|&p| self.rt.phase_totals(p as u32)).collect();
        let report = self.run_iteration(choice);
        let mut phase_tasks = Vec::with_capacity(all.len());
        let mut phase_flops = Vec::with_capacity(all.len());
        for (i, p) in all.into_iter().enumerate() {
            let (tasks, flops) = self.rt.phase_totals(p as u32);
            phase_tasks.push((p.name(), tasks - before[i].0));
            phase_flops.push((p.name(), flops - before[i].1));
        }
        let metrics = IterationMetrics {
            makespan_s: report.duration(),
            phases: self.phase_wall_slices(&report),
            phase_tasks,
            phase_flops,
            groups: self.group_utilization(&report),
        };
        if self.recorder.enabled() {
            let r = &*self.recorder;
            r.add("app.iterations", 1.0);
            r.observe("app.iteration.makespan_s", metrics.makespan_s);
            for &(name, s) in &metrics.phases {
                r.observe(&format!("app.phase.{name}.wall_s"), s);
            }
            for &(name, tasks) in &metrics.phase_tasks {
                r.add(&format!("app.phase.{name}.tasks"), tasks as f64);
            }
            for &(name, flops) in &metrics.phase_flops {
                r.add(&format!("app.phase.{name}.flops"), flops);
            }
        }
        (report, metrics)
    }

    /// Disjoint wall-clock slices per phase within `report`'s window: each
    /// phase extends from where the previous phase's last task completed
    /// to where its own last task completes (completion order). Anchored
    /// at `report.start`, so the slices sum to the makespan exactly.
    fn phase_wall_slices(&self, report: &RunReport) -> Vec<(&'static str, f64)> {
        let all = phases::Phase::all();
        let mut last_end = vec![f64::NEG_INFINITY; all.len()];
        for e in self.rt.trace().events() {
            if e.end <= report.start || e.start >= report.end {
                continue;
            }
            let p = e.phase as usize;
            if p < all.len() {
                last_end[p] = last_end[p].max(e.end.min(report.end));
            }
        }
        let mut order: Vec<usize> =
            (0..all.len()).filter(|&i| last_end[i] > report.start).collect();
        order.sort_by(|&a, &b| last_end[a].total_cmp(&last_end[b]));
        let mut prev = report.start;
        order
            .into_iter()
            .map(|i| {
                let slice = (all[i].name(), last_end[i] - prev);
                prev = last_end[i];
                slice
            })
            .collect()
    }

    /// Busy/idle seconds per homogeneous node group over `report`'s window.
    /// Each CPU core and GPU counts as one worker; group capacity is
    /// `workers x makespan`. Labels read `"<node name>:<first>-<last>"`
    /// with 1-based inclusive node ranges, matching
    /// [`Platform::homogeneous_groups`].
    fn group_utilization(&self, report: &RunReport) -> Vec<(String, f64, f64)> {
        let platform = self.rt.platform();
        let groups = platform.homogeneous_groups();
        let mut node_group = vec![usize::MAX; platform.len()];
        for (gi, &(a, b)) in groups.iter().enumerate() {
            for slot in &mut node_group[a - 1..b] {
                *slot = gi;
            }
        }
        let mut busy = vec![0.0f64; groups.len()];
        for e in self.rt.trace().events() {
            let overlap = (e.end.min(report.end) - e.start.max(report.start)).max(0.0);
            let gi = node_group[e.node.0];
            if overlap > 0.0 && gi != usize::MAX {
                busy[gi] += overlap;
            }
        }
        let dur = report.duration();
        groups
            .iter()
            .enumerate()
            .map(|(gi, &(a, b))| {
                let workers: usize = (a - 1..b)
                    .map(|n| {
                        let spec = platform.node(NodeId(n));
                        spec.cpu_cores + spec.gpus
                    })
                    .sum();
                let label = format!("{}:{}-{}", platform.node(NodeId(a - 1)).name, a, b);
                let idle = (workers as f64 * dur - busy[gi]).max(0.0);
                (label, busy[gi], idle)
            })
            .collect()
    }

    /// The LP lower bound `LP(n_fact)` of one iteration (paper Section II):
    /// the max over phases of the heterogeneous work bound — optimistic,
    /// ignoring communications and the critical path.
    pub fn lp_bound(&self, choice: IterationChoice) -> f64 {
        lp_bound_for(self.rt.platform(), &self.classes, self.workload, choice)
    }

    /// Ideal per-node factorization work shares from the LP (used by the
    /// heterogeneous distribution and reported in diagnostics).
    pub fn lp_shares(&self, n_fact: usize) -> Vec<f64> {
        let unit_times: Vec<f64> = (0..n_fact)
            .map(|i| 1.0 / (self.classes.fact_gflops(self.rt.platform().node(NodeId(i))) * 1e9))
            .collect();
        proportional_share_bound(self.workload.cholesky_flops(), &unit_times).shares
    }
}

/// Free-standing LP bound (also used by the evaluation harness without
/// instantiating a full app).
pub fn lp_bound_for(
    platform: &Platform,
    classes: &GeoClasses,
    w: Workload,
    choice: IterationChoice,
) -> f64 {
    let gen_times: Vec<f64> = (0..choice.n_gen)
        .map(|i| 1.0 / (classes.gen_gflops(platform.node(NodeId(i))) * 1e9))
        .collect();
    let fact_times: Vec<f64> = (0..choice.n_fact)
        .map(|i| 1.0 / (classes.fact_gflops(platform.node(NodeId(i))) * 1e9))
        .collect();
    let gen = proportional_share_bound(w.generation_flops(), &gen_times).makespan;
    let fact = proportional_share_bound(w.cholesky_flops(), &fact_times).makespan;
    gen.max(fact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaphet_runtime::{NetworkSpec, NodeSpec};

    fn hybrid_platform(n_gpu: usize, n_cpu: usize) -> Platform {
        let mut nodes = Vec::new();
        for _ in 0..n_gpu {
            nodes.push(NodeSpec {
                name: "L".into(),
                cpu_cores: 8,
                gpus: 2,
                cpu_gflops_per_core: 20.0,
                gpu_gflops: 2000.0,
                nic_gbps: 10.0,
            });
        }
        for _ in 0..n_cpu {
            nodes.push(NodeSpec {
                name: "S".into(),
                cpu_cores: 8,
                gpus: 0,
                cpu_gflops_per_core: 20.0,
                gpu_gflops: 0.0,
                nic_gbps: 10.0,
            });
        }
        Platform::new_sorted(nodes, NetworkSpec { backbone_gbps: 100.0, latency_s: 1e-5 })
    }

    fn small_app(n_gpu: usize, n_cpu: usize, nt: usize) -> GeoSimApp {
        GeoSimApp::new(hybrid_platform(n_gpu, n_cpu), Workload::new(nt, 64), SimConfig::default())
    }

    #[test]
    fn iteration_runs_and_time_advances() {
        let mut app = small_app(1, 2, 6);
        let n = app.n_nodes();
        let r1 = app.run_iteration(IterationChoice::all(n));
        assert!(r1.duration() > 0.0);
        let r2 = app.run_iteration(IterationChoice::all(n));
        assert!(r2.start >= r1.end - 1e-9, "iterations are sequential");
        assert_eq!(app.iterations(), 2);
    }

    #[test]
    fn restricting_fact_nodes_changes_duration() {
        let mut app = small_app(2, 4, 8);
        let n = app.n_nodes();
        let all = app.run_iteration(IterationChoice::all(n)).duration();
        let few = app.run_iteration(IterationChoice::fact_only(n, 2)).duration();
        assert!(all > 0.0 && few > 0.0);
        assert!((all - few).abs() > 1e-12, "choice must matter");
    }

    #[test]
    fn lp_bound_decreases_with_fact_nodes_and_floors_at_generation() {
        let app = small_app(2, 4, 8);
        let n = app.n_nodes();
        let mut prev = f64::INFINITY;
        for k in 1..=n {
            let b = app.lp_bound(IterationChoice::fact_only(n, k));
            assert!(b > 0.0 && b <= prev + 1e-12, "bound must be non-increasing");
            prev = b;
        }
        // Bound can never drop below the generation-phase bound.
        let gen_floor = app.lp_bound(IterationChoice { n_gen: n, n_fact: n });
        assert!(gen_floor > 0.0);
    }

    #[test]
    fn lp_bound_is_a_true_lower_bound() {
        let mut app = small_app(1, 2, 6);
        let n = app.n_nodes();
        for k in [1, 2, 3] {
            let choice = IterationChoice::fact_only(n, k);
            let bound = app.lp_bound(choice);
            let measured = app.run_iteration(choice).duration();
            assert!(bound <= measured + 1e-9, "LP({k}) = {bound} exceeds measured {measured}");
        }
    }

    #[test]
    fn lp_shares_sum_to_total_work() {
        let app = small_app(2, 2, 6);
        let shares = app.lp_shares(3);
        let total: f64 = shares.iter().sum();
        assert!((total - app.workload().cholesky_flops()).abs() < 1e-3 * total);
        // The GPU nodes (fastest) get the lion's share.
        assert!(shares[0] > shares[2]);
    }

    #[test]
    #[should_panic(expected = "node counts")]
    fn zero_fact_nodes_rejected() {
        let mut app = small_app(1, 1, 4);
        app.run_iteration(IterationChoice { n_gen: 2, n_fact: 0 });
    }

    #[test]
    fn mixed_precision_speeds_up_the_iteration() {
        let mut app = small_app(0, 2, 8); // CPU-only: duration ∝ flops
        let n = app.n_nodes();
        let full = app.run_iteration_mixed(IterationChoice::all(n), None).duration();
        let mixed = app.run_iteration_mixed(IterationChoice::all(n), Some(2)).duration();
        assert!(mixed < full, "single-precision off-band tiles must be faster: {mixed} vs {full}");
        // Band >= nt is plain double precision.
        let same = app.run_iteration_mixed(IterationChoice::all(n), Some(8)).duration();
        assert!((same - full).abs() < 0.05 * full, "{same} vs {full}");
    }

    #[test]
    fn phase_breakdown_covers_the_iteration_window() {
        let mut app = small_app(1, 2, 6);
        let n = app.n_nodes();
        let r1 = app.run_iteration(IterationChoice::all(n));
        let r2 = app.run_iteration(IterationChoice::fact_only(n, 2));
        for r in [&r1, &r2] {
            let breakdown = app.phase_breakdown(r);
            assert!(!breakdown.is_empty(), "tracing is on by default");
            let names: Vec<&str> = breakdown.iter().map(|&(p, _)| p).collect();
            assert!(names.contains(&"generation"), "{names:?}");
            assert!(names.contains(&"factorization"), "{names:?}");
            for &(name, busy) in &breakdown {
                assert!(busy > 0.0, "{name} has zero busy time");
            }
        }
        // The two windows select disjoint work: total busy time within
        // each report stays within that report's window bounds.
        let b1: f64 = app.phase_breakdown(&r1).iter().map(|&(_, b)| b).sum();
        let b2: f64 = app.phase_breakdown(&r2).iter().map(|&(_, b)| b).sum();
        assert!(b1 > 0.0 && b2 > 0.0);
    }

    #[test]
    fn profiled_wall_slices_tile_the_iteration_window() {
        let mut app = small_app(1, 2, 6);
        let n = app.n_nodes();
        for choice in [IterationChoice::all(n), IterationChoice::fact_only(n, 2)] {
            let (report, m) = app.run_iteration_profiled(choice);
            assert!((m.makespan_s - report.duration()).abs() < 1e-12);
            assert!(!m.phases.is_empty(), "tracing is on by default");
            let sum: f64 = m.phases.iter().map(|&(_, s)| s).sum();
            assert!(
                (sum - m.makespan_s).abs() <= 0.05 * m.makespan_s,
                "slices must tile the window: {sum} vs {}",
                m.makespan_s
            );
            for &(name, s) in &m.phases {
                assert!(s >= 0.0, "{name} slice negative: {s}");
            }
            // Every phase executed its tasks and burned flops.
            assert_eq!(m.phase_tasks.len(), 5);
            for &(name, tasks) in &m.phase_tasks {
                assert!(tasks > 0, "{name} ran no tasks");
            }
            for &(name, flops) in &m.phase_flops {
                assert!(flops > 0.0, "{name} burned no flops");
            }
        }
    }

    #[test]
    fn group_utilization_respects_capacity_and_recorder_sees_profile() {
        use adaphet_metrics::Registry;
        let mut app = small_app(1, 2, 6);
        let reg = Registry::new();
        app.set_recorder(Arc::new(reg.clone()));
        let n = app.n_nodes();
        let (_, m) = app.run_iteration_profiled(IterationChoice::all(n));
        // One GPU group ("L" nodes 1-1) and one CPU group ("S" nodes 2-3).
        assert_eq!(m.groups.len(), 2, "{:?}", m.groups);
        assert_eq!(m.groups[0].0, "L:1-1");
        assert_eq!(m.groups[1].0, "S:2-3");
        for (label, busy, idle) in &m.groups {
            assert!(*busy > 0.0, "{label} never busy");
            assert!(*idle >= 0.0, "{label} busy exceeds capacity");
        }
        // Profile metrics land in the registry, and the forwarded
        // recorder makes the simulator flush its own counters too.
        assert_eq!(reg.counter_value("app.iterations"), 1.0);
        assert!(reg.counter_value("app.phase.generation.tasks") > 0.0);
        assert!(reg.histogram("app.iteration.makespan_s").is_some());
        assert!(reg.counter_value("sim.tasks_executed") > 0.0);
    }

    #[test]
    fn deterministic_iterations() {
        let run = || {
            let mut app = small_app(1, 3, 6);
            let n = app.n_nodes();
            let a = app.run_iteration(IterationChoice::fact_only(n, 2)).duration();
            let b = app.run_iteration(IterationChoice::fact_only(n, 4)).duration();
            (a, b)
        };
        assert_eq!(run(), run());
    }
}
