#![warn(missing_docs)]

//! ExaGeoStat-like multi-phase geostatistics application.
//!
//! The paper's driving application models spatial data `(X, Z)` — locations
//! and observations — by maximizing the Gaussian log-likelihood over the
//! covariance hyper-parameters θ. Every evaluation of the likelihood (one
//! *iteration* of the outer optimization) runs five task phases:
//!
//! 1. **Generation** of the covariance matrix Σ_θ (tile by tile, CPU-only);
//! 2. **Cholesky factorization** of Σ_θ (POTRF/TRSM/SYRK/GEMM tile DAG);
//! 3. **Solve** `L y = Z`, `Lᵀ x = y`;
//! 4. **Determinant** `log|Σ| = 2 Σ log L_kk`;
//! 5. **Dot product** `Zᵀ Σ⁻¹ Z = xᵀ Z` (with `x = Σ⁻¹ Z`).
//!
//! Two execution paths exist, mirroring the paper's methodology:
//!
//! * [`GeoSimApp`] submits the phase DAGs to the *simulated* distributed
//!   runtime ([`adaphet_runtime::SimRuntime`]) — this is what the 16
//!   evaluation scenarios use, with per-phase node subsets and data
//!   redistribution between phases;
//! * [`GeoRealApp`] executes the same DAGs *numerically* on the real
//!   threaded executor over in-memory tiles, validated against a dense
//!   reference likelihood; it provides genuine wall-clock iterations for
//!   the overhead study (paper Fig. 7).

mod covariance;
mod dense;
mod dist;
mod mle;
mod phases;
mod real_app;
mod sim_app;
mod workload;

pub use covariance::{CovParams, Covariance};
pub use dense::{dense_covariance, dense_log_likelihood, sample_field, Locations};
pub use dist::{Distribution, TileDist};
pub use mle::{golden_section_max, NelderMead};
pub use phases::{
    register_data, submit_cholesky, submit_cholesky_mixed, submit_determinant, submit_dot,
    submit_generation, submit_solve, GeoClasses, GeoData, Phase,
};
pub use real_app::GeoRealApp;
pub use sim_app::{lp_bound_for, GeoSimApp, IterationChoice, IterationMetrics};
pub use workload::Workload;
