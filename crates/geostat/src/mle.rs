//! Outer-loop optimizers for the likelihood: the application's own
//! hyper-parameter search (every evaluation = one multi-phase iteration).

/// Golden-section search for the maximum of a unimodal function on
/// `[lo, hi]`; returns `(argmax, max)` after `iters` shrink steps.
pub fn golden_section_max(
    mut f: impl FnMut(f64) -> f64,
    mut lo: f64,
    mut hi: f64,
    iters: usize,
) -> (f64, f64) {
    assert!(hi > lo, "invalid bracket");
    let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let mut x1 = hi - phi * (hi - lo);
    let mut x2 = lo + phi * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    for _ in 0..iters {
        if f1 >= f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = f(x2);
        }
    }
    if f1 >= f2 {
        (x1, f1)
    } else {
        (x2, f2)
    }
}

/// Nelder–Mead simplex *minimizer* over `R^d` — the derivative-free
/// optimizer ExaGeoStat's outer MLE loop uses (and one of the generic
/// alternatives the paper dismisses for the node-count problem).
#[derive(Debug, Clone)]
pub struct NelderMead {
    /// Reflection coefficient (default 1).
    pub alpha: f64,
    /// Expansion coefficient (default 2).
    pub gamma: f64,
    /// Contraction coefficient (default 0.5).
    pub rho: f64,
    /// Shrink coefficient (default 0.5).
    pub sigma: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead { alpha: 1.0, gamma: 2.0, rho: 0.5, sigma: 0.5 }
    }
}

impl NelderMead {
    /// Minimize `f` starting from `x0` with initial per-coordinate simplex
    /// `step`s, for at most `max_evals` function evaluations. Returns the
    /// best point and value found.
    pub fn minimize(
        &self,
        mut f: impl FnMut(&[f64]) -> f64,
        x0: &[f64],
        step: f64,
        max_evals: usize,
    ) -> (Vec<f64>, f64) {
        let d = x0.len();
        assert!(d > 0, "need at least one dimension");
        let mut evals = 0usize;
        let mut eval = |x: &[f64], evals: &mut usize| {
            *evals += 1;
            f(x)
        };
        // Initial simplex: x0 plus a step along each axis.
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(d + 1);
        let v0 = eval(x0, &mut evals);
        simplex.push((x0.to_vec(), v0));
        for i in 0..d {
            let mut x = x0.to_vec();
            x[i] += step;
            let v = eval(&x, &mut evals);
            simplex.push((x, v));
        }
        while evals < max_evals {
            simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let best = simplex[0].1;
            let worst = simplex[d].1;
            // Converged only when both the value spread and the simplex
            // diameter are tiny (symmetric vertices can have equal values
            // while straddling the optimum).
            let diameter = simplex[1..]
                .iter()
                .flat_map(|(x, _)| x.iter().zip(&simplex[0].0).map(|(a, b)| (a - b).abs()))
                .fold(0.0_f64, f64::max);
            if (worst - best).abs() < 1e-12 * (1.0 + best.abs()) && diameter < 1e-9 {
                break;
            }
            // Centroid of all but worst.
            let mut c = vec![0.0; d];
            for (x, _) in &simplex[..d] {
                for (ci, xi) in c.iter_mut().zip(x) {
                    *ci += xi / d as f64;
                }
            }
            let worst_x = simplex[d].0.clone();
            let refl: Vec<f64> =
                c.iter().zip(&worst_x).map(|(ci, wi)| ci + self.alpha * (ci - wi)).collect();
            let fr = eval(&refl, &mut evals);
            if fr < simplex[0].1 {
                // Try expansion.
                let exp: Vec<f64> =
                    c.iter().zip(&worst_x).map(|(ci, wi)| ci + self.gamma * (ci - wi)).collect();
                let fe = eval(&exp, &mut evals);
                simplex[d] = if fe < fr { (exp, fe) } else { (refl, fr) };
            } else if fr < simplex[d - 1].1 {
                simplex[d] = (refl, fr);
            } else {
                // Contraction.
                let con: Vec<f64> =
                    c.iter().zip(&worst_x).map(|(ci, wi)| ci + self.rho * (wi - ci)).collect();
                let fc = eval(&con, &mut evals);
                if fc < simplex[d].1 {
                    simplex[d] = (con, fc);
                } else {
                    // Shrink toward the best vertex.
                    let best_x = simplex[0].0.clone();
                    for entry in simplex.iter_mut().skip(1) {
                        let x: Vec<f64> = best_x
                            .iter()
                            .zip(&entry.0)
                            .map(|(b, xi)| b + self.sigma * (xi - b))
                            .collect();
                        let v = eval(&x, &mut evals);
                        *entry = (x, v);
                    }
                }
            }
        }
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        simplex.swap_remove(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_finds_parabola_peak() {
        let (x, v) = golden_section_max(|x| -(x - 2.5).powi(2) + 7.0, 0.0, 10.0, 40);
        assert!((x - 2.5).abs() < 1e-6);
        assert!((v - 7.0).abs() < 1e-10);
    }

    #[test]
    fn golden_section_handles_boundary_max() {
        let (x, _) = golden_section_max(|x| x, 0.0, 1.0, 40);
        assert!(x > 0.99);
    }

    #[test]
    fn nelder_mead_minimizes_quadratic_bowl() {
        let nm = NelderMead::default();
        let (x, v) = nm.minimize(
            |p| (p[0] - 1.0).powi(2) + 2.0 * (p[1] + 0.5).powi(2),
            &[5.0, 5.0],
            1.0,
            400,
        );
        assert!((x[0] - 1.0).abs() < 1e-3, "x0 = {}", x[0]);
        assert!((x[1] + 0.5).abs() < 1e-3, "x1 = {}", x[1]);
        assert!(v < 1e-5);
    }

    #[test]
    fn nelder_mead_rosenbrock_progress() {
        // Full convergence is slow; verify substantial descent.
        let rosen = |p: &[f64]| (1.0 - p[0]).powi(2) + 100.0 * (p[1] - p[0] * p[0]).powi(2);
        let nm = NelderMead::default();
        let start = [-1.2, 1.0];
        let f0 = rosen(&start);
        let (_, v) = nm.minimize(rosen, &start, 0.5, 600);
        assert!(v < f0 / 100.0, "insufficient descent: {v} from {f0}");
    }

    #[test]
    fn nelder_mead_respects_eval_budget() {
        let mut count = 0usize;
        let nm = NelderMead::default();
        let _ = nm.minimize(
            |p| {
                count += 1;
                p[0] * p[0]
            },
            &[3.0],
            1.0,
            50,
        );
        // Budget plus at most one in-flight simplex operation's evals.
        assert!(count <= 56, "used {count} evals");
    }

    #[test]
    fn nelder_mead_one_dimension() {
        let nm = NelderMead::default();
        let (x, _) = nm.minimize(|p| (p[0] + 3.0).powi(2), &[10.0], 1.0, 200);
        assert!((x[0] + 3.0).abs() < 1e-2, "x = {}", x[0]);
    }
}
