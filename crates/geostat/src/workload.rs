//! Workload description: matrix size and tiling.

/// A tiled symmetric matrix workload, like the paper's `96100 (101x101
/// blocks)` and `122880 (128x128 blocks)` ExaGeoStat samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Number of tiles per dimension (`nt`).
    pub nt: usize,
    /// Tile side length (`b`), so the matrix order is `nt * b`.
    pub tile: usize,
}

impl Workload {
    /// Build a workload with `nt x nt` tiles of side `tile`.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(nt: usize, tile: usize) -> Self {
        assert!(nt > 0 && tile > 0, "workload dimensions must be positive");
        Workload { nt, tile }
    }

    /// The paper's `96100` matrix: 101x101 tiles (tile ≈ 951).
    pub fn paper_101() -> Self {
        Workload { nt: 101, tile: 951 }
    }

    /// The paper's `122880` matrix: 128x128 tiles of 960.
    pub fn paper_128() -> Self {
        Workload { nt: 128, tile: 960 }
    }

    /// Matrix order `n = nt * tile`.
    pub fn n(&self) -> usize {
        self.nt * self.tile
    }

    /// Bytes of one full tile (f64).
    pub fn tile_bytes(&self) -> usize {
        self.tile * self.tile * 8
    }

    /// Bytes of one vector block (f64).
    pub fn vec_block_bytes(&self) -> usize {
        self.tile * 8
    }

    /// Number of stored tiles (lower triangle incl. diagonal).
    pub fn n_tiles_lower(&self) -> usize {
        self.nt * (self.nt + 1) / 2
    }

    /// Linear index of lower tile `(i, j)`, `i >= j`.
    pub fn tile_index(&self, i: usize, j: usize) -> usize {
        assert!(i >= j && i < self.nt, "not a lower tile: ({i},{j})");
        i * (i + 1) / 2 + j
    }

    /// Total Cholesky flops for this workload (≈ n³/3).
    pub fn cholesky_flops(&self) -> f64 {
        use adaphet_linalg::{flops, TileKernel};
        let nt = self.nt;
        let b = self.tile;
        let mut total = 0.0;
        // potrf per step; trsm per sub-diagonal; syrk per trailing diag;
        // gemm per trailing off-diagonal.
        for k in 0..nt {
            total += flops(TileKernel::Potrf, b);
            let below = nt - k - 1;
            total += below as f64 * flops(TileKernel::Trsm, b);
            total += below as f64 * flops(TileKernel::Syrk, b);
            let gemms = below * below.saturating_sub(1) / 2;
            total += gemms as f64 * flops(TileKernel::Gemm, b);
        }
        total
    }

    /// Total generation flops (one `Generate` task per stored tile).
    pub fn generation_flops(&self) -> f64 {
        use adaphet_linalg::{flops, TileKernel};
        self.n_tiles_lower() as f64 * flops(TileKernel::Generate, self.tile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workloads_match_sizes() {
        assert_eq!(Workload::paper_128().n(), 122880);
        assert_eq!(Workload::paper_101().nt, 101);
    }

    #[test]
    fn tile_indexing_is_dense_and_unique() {
        let w = Workload::new(5, 4);
        let mut seen = vec![false; w.n_tiles_lower()];
        for i in 0..5 {
            for j in 0..=i {
                let idx = w.tile_index(i, j);
                assert!(!seen[idx], "duplicate index {idx}");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "not a lower tile")]
    fn upper_tile_index_panics() {
        Workload::new(4, 2).tile_index(1, 2);
    }

    #[test]
    fn cholesky_flops_asymptotics() {
        // For large nt the task-sum approaches n³/3.
        let w = Workload::new(64, 32);
        let n = w.n() as f64;
        let ratio = w.cholesky_flops() / (n * n * n / 3.0);
        assert!((ratio - 1.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn generation_flops_counts_lower_tiles() {
        let w = Workload::new(4, 10);
        // 10 tiles x 40*b² flops.
        assert_eq!(w.generation_flops(), 10.0 * 40.0 * 100.0);
    }
}
