//! Offline drop-in replacement for the subset of `proptest` this workspace
//! uses: the `proptest!` macro over `name in strategy` arguments, integer /
//! float range strategies, `collection::vec`, `ProptestConfig::with_cases`,
//! and the `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Case generation is fully deterministic: case `i` of every test derives
//! its RNG from a fixed SplitMix64 stream, so failures reproduce across
//! runs and machines without persistence files. On failure the generated
//! inputs are printed before the panic is propagated.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of cases run per property when no config is given.
pub const DEFAULT_CASES: u32 = 32;

/// Subset of proptest's run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: DEFAULT_CASES }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies (deterministic per test + case index).
pub type TestRng = StdRng;

/// Build the case RNG for `(test name, case index)`.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A value generator (tiny analogue of proptest's `Strategy`).
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Generate one value for the current case.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_int_strategy!(usize, u64, u32, i64, i32, f64, f32);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification accepted by [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of `elem` values with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng as _;
            assert!(self.size.lo < self.size.hi, "empty size range");
            let n = rng.random_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Assert a condition inside a property (panics with the formatted message,
/// which the harness prefixes with the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define deterministic property tests over `name in strategy` arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(e) = __result {
                    eprintln!(
                        "proptest {} failed at case {}/{} with inputs: {}",
                        stringify!($name), __case + 1, __cfg.cases, __inputs
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Generated values respect their range strategies.
        #[test]
        fn ranges_respected(a in 3usize..10, b in -2.0f64..2.0, s in 1u64..=5) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!((1..=5).contains(&s), "s = {s}");
        }

        /// collection::vec honours element and size strategies.
        #[test]
        fn vectors_respected(v in collection::vec(0.5f64..1.5, 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for x in &v {
                prop_assert!((0.5..1.5).contains(x));
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let draw = |case| {
            let mut rng = crate::case_rng("t", case);
            (0usize..8).generate(&mut rng)
        };
        assert_eq!(draw(3), draw(3));
    }

    #[test]
    fn failing_property_panics() {
        let r = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn always_fails(x in 0usize..10) {
                    prop_assert!(x > 100, "x = {x}");
                }
            }
            always_fails();
        });
        assert!(r.is_err());
    }
}
