//! Golden test pinning the `MetricsReport` JSON schema.
//!
//! The report is consumed by external tooling (CI artifacts, plotting
//! scripts); field names, nesting and ordering are a contract. Change this
//! string only together with a `METRICS_SCHEMA_VERSION` bump.

use adaphet_metrics::{
    GroupProfile, HistogramSnapshot, IterationProfile, MetricsReport, METRICS_SCHEMA_VERSION,
};

#[test]
fn golden_metrics_report_json() {
    assert_eq!(METRICS_SCHEMA_VERSION, 2, "bump the golden string with the schema version");
    let report = MetricsReport {
        monotonic_s: 12.25,
        counters: vec![("eval.cache.hits".into(), 3.0), ("sim.tasks_executed".into(), 42.0)],
        gauges: vec![("app.nt".into(), 10.0)],
        histograms: vec![(
            "gp.model.fit_s".into(),
            HistogramSnapshot {
                bounds: vec![0.001, 1.0],
                counts: vec![2, 1, 0],
                count: 3,
                sum: 0.5,
            },
        )],
        iterations: vec![IterationProfile {
            iteration: 1,
            action: 4,
            makespan_s: 2.5,
            phases: vec![("generation".into(), 1.0), ("factorization".into(), 1.5)],
            groups: vec![GroupProfile { name: "chifflot:1-2".into(), busy_s: 3.0, idle_s: 1.0 }],
        }],
    };
    assert_eq!(
        report.to_json(),
        "{\"version\":2,\
         \"monotonic_s\":12.25,\
         \"counters\":{\"eval.cache.hits\":3,\"sim.tasks_executed\":42},\
         \"gauges\":{\"app.nt\":10},\
         \"histograms\":{\"gp.model.fit_s\":{\"bounds\":[0.001,1],\"counts\":[2,1,0],\"count\":3,\"sum\":0.5}},\
         \"iterations\":[{\"iteration\":1,\"action\":4,\"makespan_s\":2.5,\
         \"phases\":[{\"name\":\"generation\",\"seconds\":1},{\"name\":\"factorization\",\"seconds\":1.5}],\
         \"groups\":[{\"name\":\"chifflot:1-2\",\"busy_s\":3,\"idle_s\":1,\"utilization\":0.75}]}]}"
    );
}

#[test]
fn golden_empty_report_json() {
    assert_eq!(
        MetricsReport::default().to_json(),
        "{\"version\":2,\"monotonic_s\":0,\"counters\":{},\"gauges\":{},\"histograms\":{},\"iterations\":[]}"
    );
}
