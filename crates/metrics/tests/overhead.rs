//! The disabled-path overhead guard.
//!
//! Claim under test: instrumented code pointed at the [`NoopRecorder`]
//! (through `&dyn Recorder`, as real call sites do) costs within noise of
//! the same code without any instrumentation. CI runs this in release mode
//! (`cargo test --release -p adaphet-metrics`), where the `enabled()` check
//! folds to a branch on a constant; the bound below is loose enough to hold
//! in debug builds too.

use adaphet_metrics::{NoopRecorder, Recorder, Timer};
use std::hint::black_box;
use std::time::Instant;

/// A work quantum heavy enough to dominate any per-call dispatch cost:
/// ~400 dependent float ops.
fn work(seed: f64) -> f64 {
    let mut acc = seed;
    for i in 0..400 {
        acc = acc.mul_add(1.000000001, (i as f64) * 1e-9);
    }
    acc
}

fn run_bare(tasks: usize) -> f64 {
    let mut acc = 0.0;
    for t in 0..tasks {
        acc += work(black_box(t as f64));
    }
    acc
}

fn run_instrumented(tasks: usize, r: &dyn Recorder) -> f64 {
    let mut acc = 0.0;
    for t in 0..tasks {
        let _timer = Timer::start(r, "overhead.task_s");
        acc += work(black_box(t as f64));
        r.add("overhead.tasks", 1.0);
        r.observe("overhead.acc_s", 0.0);
    }
    if r.enabled() {
        r.gauge("overhead.final", acc);
    }
    acc
}

fn min_time<F: FnMut() -> f64>(mut f: F, runs: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

#[test]
fn noop_recorder_costs_within_noise_of_uninstrumented() {
    const TASKS: usize = 20_000;
    const RUNS: usize = 7;
    // Warm up both paths so neither pays first-touch costs.
    black_box(run_bare(TASKS));
    black_box(run_instrumented(TASKS, &NoopRecorder));

    // Interleave the measurements so drift (frequency scaling, a noisy
    // neighbor) hits both sides equally; compare minima, the estimator
    // least sensitive to one-sided interference.
    let mut bare = f64::INFINITY;
    let mut inst = f64::INFINITY;
    for _ in 0..RUNS {
        bare = bare.min(min_time(|| run_bare(TASKS), 1));
        inst = inst.min(min_time(|| run_instrumented(TASKS, &NoopRecorder), 1));
    }
    assert!(
        inst <= bare * 1.5 + 1e-4,
        "noop-instrumented path too slow: {inst:.6}s vs bare {bare:.6}s"
    );
}

#[test]
fn both_paths_compute_the_same_result() {
    assert_eq!(run_bare(512), run_instrumented(512, &NoopRecorder));
}

fn run_spanned(tasks: usize, spans: &adaphet_metrics::Spans) -> f64 {
    let mut acc = 0.0;
    let root = spans.enter("overhead.batch", None);
    for t in 0..tasks {
        let _span = spans.enter("overhead.task", root.id());
        acc += work(black_box(t as f64));
    }
    acc
}

#[test]
fn disabled_spans_cost_within_noise_of_uninstrumented() {
    const TASKS: usize = 20_000;
    const RUNS: usize = 7;
    let off = adaphet_metrics::Spans::disabled();
    black_box(run_bare(TASKS));
    black_box(run_spanned(TASKS, &off));
    let mut bare = f64::INFINITY;
    let mut spanned = f64::INFINITY;
    for _ in 0..RUNS {
        bare = bare.min(min_time(|| run_bare(TASKS), 1));
        spanned = spanned.min(min_time(|| run_spanned(TASKS, &off), 1));
    }
    assert!(
        spanned <= bare * 1.5 + 1e-4,
        "disabled-span path too slow: {spanned:.6}s vs bare {bare:.6}s"
    );
}

#[test]
fn spanned_path_computes_the_same_result() {
    assert_eq!(run_bare(512), run_spanned(512, &adaphet_metrics::Spans::disabled()));
    assert_eq!(run_bare(512), run_spanned(512, &adaphet_metrics::Spans::with_capacity(8)));
}
