//! Golden test pinning the Prometheus text exposition format.
//!
//! `GET /metrics` on a live `adaphet-serve` returns exactly this layout;
//! scrapers parse it, so `# HELP`/`# TYPE` lines, name mangling, label
//! spelling and float formatting are a contract. Floats use Rust's
//! shortest round-trip `Display` form, which makes the exposition
//! deterministic for given inputs.

use adaphet_metrics::{HistogramSnapshot, MetricsReport, Recorder};

#[test]
fn golden_prometheus_exposition() {
    let report = MetricsReport {
        monotonic_s: 3.5,
        counters: vec![("service.request".into(), 120.0), ("service.session.created".into(), 8.0)],
        gauges: vec![("service.in_flight".into(), 2.0), ("service.sessions.live".into(), 3.0)],
        histograms: vec![(
            "service.verb.get_proposal_s".into(),
            HistogramSnapshot {
                bounds: vec![0.001, 0.01, 0.1],
                counts: vec![5, 3, 0, 1],
                count: 9,
                sum: 0.25,
            },
        )],
        iterations: Vec::new(),
    };
    assert_eq!(
        report.to_prometheus(),
        "\
# HELP adaphet_snapshot_monotonic_seconds adaphet gauge 'monotonic_s'
# TYPE adaphet_snapshot_monotonic_seconds gauge
adaphet_snapshot_monotonic_seconds 3.5
# HELP adaphet_service_request_total adaphet counter 'service.request'
# TYPE adaphet_service_request_total counter
adaphet_service_request_total 120
# HELP adaphet_service_session_created_total adaphet counter 'service.session.created'
# TYPE adaphet_service_session_created_total counter
adaphet_service_session_created_total 8
# HELP adaphet_service_in_flight adaphet gauge 'service.in_flight'
# TYPE adaphet_service_in_flight gauge
adaphet_service_in_flight 2
# HELP adaphet_service_sessions_live adaphet gauge 'service.sessions.live'
# TYPE adaphet_service_sessions_live gauge
adaphet_service_sessions_live 3
# HELP adaphet_service_verb_get_proposal_seconds adaphet histogram 'service.verb.get_proposal_s'
# TYPE adaphet_service_verb_get_proposal_seconds histogram
adaphet_service_verb_get_proposal_seconds_bucket{le=\"0.001\"} 5
adaphet_service_verb_get_proposal_seconds_bucket{le=\"0.01\"} 8
adaphet_service_verb_get_proposal_seconds_bucket{le=\"0.1\"} 8
adaphet_service_verb_get_proposal_seconds_bucket{le=\"+Inf\"} 9
adaphet_service_verb_get_proposal_seconds_sum 0.25
adaphet_service_verb_get_proposal_seconds_count 9
"
    );
}

#[test]
fn registry_snapshot_round_trips_through_the_exposition() {
    let r = adaphet_metrics::Registry::new();
    r.add("service.request", 3.0);
    r.observe("service.verb.ping_s", 0.0005);
    r.observe("service.verb.ping_s", 0.05);
    let p = r.snapshot().to_prometheus();
    assert!(p.contains("adaphet_service_request_total 3\n"), "{p}");
    assert!(p.contains("adaphet_service_verb_ping_seconds_count 2\n"), "{p}");
    // The log-spaced registry buckets surface as cumulative `le` series.
    assert!(p.contains("adaphet_service_verb_ping_seconds_bucket{le=\"0.001\"} 1\n"), "{p}");
    assert!(p.contains("adaphet_service_verb_ping_seconds_bucket{le=\"+Inf\"} 2\n"), "{p}");
    // Non-finite sample sums would still be valid exposition (`NaN`).
    assert!(p.contains("# TYPE adaphet_service_verb_ping_seconds histogram"), "{p}");
}
