#![warn(missing_docs)]

//! Lightweight runtime metrics: counters, gauges, fixed-bucket histograms.
//!
//! The crate is built around one trait, [`Recorder`], with two concrete
//! implementations:
//!
//! * [`NoopRecorder`] — the default everywhere. Every method is an inlined
//!   no-op behind an `enabled() == false` check, so instrumented code paths
//!   cost nothing measurable when metrics are off (pinned by the release-mode
//!   overhead test in `tests/overhead.rs`).
//! * [`Registry`] — a cheaply clonable (`Arc`-backed), thread-safe store of
//!   named counters, gauges and log-spaced-bucket histograms. Snapshots
//!   export as a [`MetricsReport`] (JSON or aligned text).
//!
//! Durations are captured with the scoped [`Timer`] guard, which only reads
//! the clock when the recorder is enabled and observes into a histogram on
//! drop.
//!
//! For *where time goes inside one operation* (rather than aggregate
//! counts), the [`Spans`] collector records enter/exit events with parent
//! ids into a bounded ring of recent [`SpanRecord`]s; a disabled handle
//! makes every guard a clock-free no-op, mirroring [`NoopRecorder`].
//!
//! Components that cannot thread a recorder handle through their call sites
//! (solver internals, the response cache) use the process-wide recorder:
//! [`global()`] is a no-op until [`install_global`] activates a registry.
//! Installation is *first-wins*: concurrent callers (e.g. parallel tests)
//! all share the registry returned by the call, so assertions must be made
//! on monotone deltas rather than absolute counter values.

mod recorder;
mod registry;
mod report;
mod span;

pub use recorder::{NoopRecorder, Recorder, Timer};
pub use registry::{HistogramSnapshot, Registry, SECONDS_BUCKETS};
pub use report::{
    json_escape, prometheus_name, GroupProfile, IterationProfile, MetricsReport,
    METRICS_SCHEMA_VERSION,
};
pub use span::{Span, SpanRecord, Spans};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// Install `registry` as the process-wide recorder and enable it.
///
/// First caller wins: if a global registry is already installed, `registry`
/// is dropped and the previously installed one is (re-)enabled. The active
/// registry is returned either way, so callers can snapshot the one that is
/// actually collecting.
pub fn install_global(registry: Registry) -> Registry {
    let active = GLOBAL.get_or_init(|| registry).clone();
    GLOBAL_ENABLED.store(true, Ordering::Release);
    active
}

/// The registry installed by [`install_global`], if any.
pub fn global_registry() -> Option<Registry> {
    GLOBAL.get().cloned()
}

/// The process-wide recorder handle.
///
/// Disabled (a branch on one atomic load per call) until [`install_global`]
/// runs; afterwards it forwards to the installed [`Registry`].
pub fn global() -> &'static dyn Recorder {
    static HANDLE: GlobalRecorder = GlobalRecorder;
    &HANDLE
}

/// Zero-sized forwarder to the installed global registry.
struct GlobalRecorder;

impl Recorder for GlobalRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        GLOBAL_ENABLED.load(Ordering::Acquire)
    }

    #[inline]
    fn add(&self, name: &str, delta: f64) {
        if self.enabled() {
            if let Some(r) = GLOBAL.get() {
                r.add(name, delta);
            }
        }
    }

    #[inline]
    fn gauge(&self, name: &str, value: f64) {
        if self.enabled() {
            if let Some(r) = GLOBAL.get() {
                r.gauge(name, value);
            }
        }
    }

    #[inline]
    fn observe(&self, name: &str, seconds: f64) {
        if self.enabled() {
            if let Some(r) = GLOBAL.get() {
                r.observe(name, seconds);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_silent_before_install_and_first_wins_after() {
        // Before installation the handle reports disabled... unless another
        // test in this binary raced us to install; both orders are valid, so
        // only assert the *monotone* part of the contract here.
        let first = Registry::new();
        let active = install_global(first.clone());
        assert!(global().enabled());
        let before = active.counter_value("lib.test.counter");
        global().add("lib.test.counter", 2.0);
        assert_eq!(active.counter_value("lib.test.counter"), before + 2.0);

        // Second install is ignored; the original registry keeps collecting.
        let second = Registry::new();
        let still = install_global(second.clone());
        global().add("lib.test.counter", 1.0);
        assert_eq!(still.counter_value("lib.test.counter"), before + 3.0);
        assert_eq!(second.counter_value("lib.test.counter"), 0.0);
    }
}
