//! The [`Recorder`] trait, its no-op default and the scoped [`Timer`] guard.

use std::time::Instant;

/// Destination for metric updates.
///
/// All methods take `&self` so recorders can be shared freely (`Arc<dyn
/// Recorder>`); implementations are responsible for their own interior
/// mutability. Metric names are plain strings, conventionally dotted paths
/// (`"sim.tasks_executed"`, `"gp.model.fit_s"`); names ending in `_s` hold
/// seconds.
pub trait Recorder: Send + Sync {
    /// Whether updates are being collected. Instrumentation that must do
    /// extra work to *produce* a value (read a clock, format a name) should
    /// gate that work on this; plain `add`/`observe` calls need no guard.
    fn enabled(&self) -> bool;

    /// Add `delta` to the counter `name` (created at zero on first use).
    fn add(&self, name: &str, delta: f64);

    /// Set the gauge `name` to `value` (last write wins).
    fn gauge(&self, name: &str, value: f64);

    /// Record one `seconds` sample into the histogram `name`.
    fn observe(&self, name: &str, seconds: f64);
}

/// A [`Recorder`] that drops everything. The default wherever a recorder is
/// injectable; the overhead test pins that instrumentation pointed at this
/// recorder costs within noise of un-instrumented code.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
    #[inline]
    fn add(&self, _name: &str, _delta: f64) {}
    #[inline]
    fn gauge(&self, _name: &str, _value: f64) {}
    #[inline]
    fn observe(&self, _name: &str, _seconds: f64) {}
}

/// Scoped wall-clock timer: reads the clock on construction and observes the
/// elapsed seconds into histogram `name` when dropped — but only if the
/// recorder is enabled; otherwise both ends are no-ops (no `Instant::now`).
///
/// ```
/// use adaphet_metrics::{Registry, Recorder, Timer};
/// let r = Registry::new();
/// {
///     let _t = Timer::start(&r, "example.work_s");
///     // ... timed section ...
/// }
/// assert_eq!(r.histogram("example.work_s").unwrap().count, 1);
/// ```
#[must_use = "a Timer observes on drop; binding it to `_` drops it immediately"]
pub struct Timer<'a> {
    recorder: &'a dyn Recorder,
    name: &'a str,
    start: Option<Instant>,
}

impl<'a> Timer<'a> {
    /// Start timing the enclosing scope, reporting to `recorder`.
    #[inline]
    pub fn start(recorder: &'a dyn Recorder, name: &'a str) -> Self {
        let start = recorder.enabled().then(Instant::now);
        Timer { recorder, name, start }
    }

    /// Stop early and record, instead of waiting for scope end.
    #[inline]
    pub fn stop(self) {
        drop(self);
    }
}

impl Drop for Timer<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.recorder.observe(self.name, start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn noop_recorder_is_disabled_and_silent() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        r.add("x", 1.0);
        r.gauge("x", 1.0);
        r.observe("x", 1.0);
        let _t = Timer::start(&r, "x");
    }

    #[test]
    fn timer_skips_the_clock_when_disabled() {
        let t = Timer::start(&NoopRecorder, "x");
        assert!(t.start.is_none());
    }

    #[test]
    fn timer_observes_once_on_drop() {
        let r = Registry::new();
        {
            let _t = Timer::start(&r, "t.scope_s");
        }
        let h = r.histogram("t.scope_s").expect("recorded");
        assert_eq!(h.count, 1);
        assert!(h.sum >= 0.0);
    }

    #[test]
    fn timer_stop_records_early() {
        let r = Registry::new();
        let t = Timer::start(&r, "t.early_s");
        t.stop();
        assert_eq!(r.histogram("t.early_s").unwrap().count, 1);
    }
}
