//! The thread-safe [`Registry`] store backing enabled recording.

use crate::recorder::Recorder;
use crate::report::MetricsReport;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Upper bounds (seconds) of the fixed histogram buckets, log-spaced from
/// 1 µs to 1000 s; samples above the last bound land in an overflow bucket,
/// so a histogram has `SECONDS_BUCKETS.len() + 1` counts.
pub const SECONDS_BUCKETS: [f64; 10] =
    [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0];

/// A thread-safe, cheaply clonable metrics store. Clones share state; the
/// whole registry sits behind one mutex, which is fine at the granularity
/// recorded here (per phase / per solver call / per simulator run, not per
/// task).
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
    /// Monotonic zero point: snapshots are stamped with the elapsed time
    /// since the registry was created, so successive snapshots of one
    /// registry carry strictly increasing `monotonic_s` values.
    birth: Instant,
}

impl Default for Registry {
    fn default() -> Self {
        Registry { inner: Arc::default(), birth: Instant::now() }
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    fn new() -> Self {
        Histogram { counts: vec![0; SECONDS_BUCKETS.len() + 1], count: 0, sum: 0.0 }
    }

    fn observe(&mut self, v: f64) {
        let idx = SECONDS_BUCKETS.iter().position(|&b| v <= b).unwrap_or(SECONDS_BUCKETS.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
    }
}

/// Frozen view of one histogram, as exported into a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the buckets ([`SECONDS_BUCKETS`]); the
    /// final entry of `counts` is the overflow bucket above the last bound.
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples (seconds).
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) from the bucket counts.
    ///
    /// The sample's rank is located in the cumulative counts, then
    /// interpolated linearly inside its bucket (lower edge 0 for the first
    /// bucket). Samples in the overflow bucket pin to the last bound —
    /// the histogram cannot resolve anything above it. Empty histograms
    /// report 0.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut below = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (below + c) as f64 >= rank {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let Some(&hi) = self.bounds.get(i) else {
                    return *self.bounds.last().unwrap_or(&0.0);
                };
                let frac = ((rank - below as f64) / c as f64).clamp(0.0, 1.0);
                return lo + frac * (hi - lo);
            }
            below += c;
        }
        *self.bounds.last().unwrap_or(&0.0)
    }

    /// Median estimate ([`quantile`](Self::quantile) at 0.5).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // Metric updates can't leave the maps inconsistent; keep collecting
        // even if some other holder panicked mid-update.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current value of counter `name` (0 if never written).
    pub fn counter_value(&self, name: &str) -> f64 {
        self.lock().counters.get(name).copied().unwrap_or(0.0)
    }

    /// Current value of gauge `name`, if ever set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Snapshot of histogram `name`, if any samples were observed.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.lock().histograms.get(name).map(|h| HistogramSnapshot {
            bounds: SECONDS_BUCKETS.to_vec(),
            counts: h.counts.clone(),
            count: h.count,
            sum: h.sum,
        })
    }

    /// Seconds elapsed since this registry was created (monotonic).
    pub fn uptime_s(&self) -> f64 {
        self.birth.elapsed().as_secs_f64()
    }

    /// Freeze everything collected so far into a report (name-sorted; the
    /// report's `iterations` section is left empty for the caller to fill).
    pub fn snapshot(&self) -> MetricsReport {
        let inner = self.lock();
        MetricsReport {
            monotonic_s: self.birth.elapsed().as_secs_f64(),
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            bounds: SECONDS_BUCKETS.to_vec(),
                            counts: h.counts.clone(),
                            count: h.count,
                            sum: h.sum,
                        },
                    )
                })
                .collect(),
            iterations: Vec::new(),
        }
    }

    /// Drop every metric (mainly for tests).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
    }
}

impl Recorder for Registry {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, name: &str, delta: f64) {
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    fn gauge(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    fn observe(&self, name: &str, seconds: f64) {
        let mut inner = self.lock();
        match inner.histograms.get_mut(name) {
            Some(h) => h.observe(seconds),
            None => {
                let mut h = Histogram::new();
                h.observe(seconds);
                inner.histograms.insert(name.to_string(), h);
            }
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_clones_share_state() {
        let r = Registry::new();
        let r2 = r.clone();
        r.add("c", 1.0);
        r2.add("c", 2.5);
        assert_eq!(r.counter_value("c"), 3.5);
        assert_eq!(r.counter_value("absent"), 0.0);
    }

    #[test]
    fn gauges_keep_the_last_write() {
        let r = Registry::new();
        assert_eq!(r.gauge_value("g"), None);
        r.gauge("g", 1.0);
        r.gauge("g", -4.0);
        assert_eq!(r.gauge_value("g"), Some(-4.0));
    }

    #[test]
    fn histogram_buckets_are_log_spaced_with_overflow() {
        let r = Registry::new();
        r.observe("h", 5e-7); // bucket 0 (≤ 1e-6)
        r.observe("h", 0.05); // ≤ 1e-1
        r.observe("h", 0.05);
        r.observe("h", 5000.0); // overflow
        let h = r.histogram("h").unwrap();
        assert_eq!(h.counts.len(), SECONDS_BUCKETS.len() + 1);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[5], 2);
        assert_eq!(h.counts[SECONDS_BUCKETS.len()], 1);
        assert_eq!(h.count, 4);
        assert!((h.sum - 5000.1000005).abs() < 1e-6);
        assert!((h.mean() - h.sum / 4.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate_inside_buckets() {
        let h = HistogramSnapshot {
            bounds: vec![1.0, 10.0, 100.0],
            // 10 samples ≤ 1, 10 in (1, 10], none above.
            counts: vec![10, 10, 0, 0],
            count: 20,
            sum: 60.0,
        };
        // Rank 10 is exactly the last sample of bucket 0: its upper edge.
        assert!((h.p50() - 1.0).abs() < 1e-12, "p50 = {}", h.p50());
        // Rank 19 sits 9/10 of the way through bucket (1, 10].
        assert!((h.p95() - (1.0 + 0.9 * 9.0)).abs() < 1e-12, "p95 = {}", h.p95());
        assert!(h.p99() <= 10.0);
        // q=0 pins to the lower edge of the first occupied bucket.
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 10.0);
    }

    #[test]
    fn quantile_overflow_bucket_pins_to_last_bound() {
        let h = HistogramSnapshot {
            bounds: vec![1.0, 10.0],
            counts: vec![0, 0, 5],
            count: 5,
            sum: 500.0,
        };
        assert_eq!(h.p50(), 10.0);
        assert_eq!(h.p99(), 10.0);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = HistogramSnapshot { bounds: vec![1.0], counts: vec![0, 0], count: 0, sum: 0.0 };
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p99(), 0.0);
    }

    #[test]
    fn snapshots_carry_increasing_monotonic_stamps() {
        let r = Registry::new();
        let a = r.snapshot();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = r.snapshot();
        assert!(a.monotonic_s >= 0.0);
        assert!(b.monotonic_s > a.monotonic_s, "{} !> {}", b.monotonic_s, a.monotonic_s);
        assert!(r.uptime_s() >= b.monotonic_s);
    }

    #[test]
    fn snapshot_is_name_sorted_and_complete() {
        let r = Registry::new();
        r.add("z.last", 1.0);
        r.add("a.first", 2.0);
        r.gauge("mid", 0.5);
        r.observe("t", 0.25);
        let s = r.snapshot();
        assert_eq!(s.counters, vec![("a.first".to_string(), 2.0), ("z.last".to_string(), 1.0)]);
        assert_eq!(s.gauges, vec![("mid".to_string(), 0.5)]);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].0, "t");
        assert!(s.iterations.is_empty());
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let r = Registry::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.add("par", 1.0);
                        r.observe("par_s", 1e-3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter_value("par"), 4000.0);
        assert_eq!(r.histogram("par_s").unwrap().count, 4000);
    }

    #[test]
    fn clear_resets_everything() {
        let r = Registry::new();
        r.add("c", 1.0);
        r.observe("h", 1.0);
        r.clear();
        assert_eq!(r.counter_value("c"), 0.0);
        assert!(r.histogram("h").is_none());
    }
}
