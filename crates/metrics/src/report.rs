//! [`MetricsReport`]: a frozen, serializable view of a metrics run.

use crate::registry::HistogramSnapshot;

/// Version stamped into every report; bump on any schema change (the golden
/// test in `tests/report_schema.rs` pins the serialized layout).
///
/// v2 added `monotonic_s`, the registry-relative monotonic snapshot
/// timestamp.
pub const METRICS_SCHEMA_VERSION: u32 = 2;

/// Busy/idle seconds of one homogeneous node group over one iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupProfile {
    /// Group label, e.g. `"chifflot:1-2"`.
    pub name: String,
    /// Seconds of worker (CPU core or GPU) busy time, summed over workers.
    pub busy_s: f64,
    /// Seconds of worker idle time within the iteration window.
    pub idle_s: f64,
}

impl GroupProfile {
    /// Busy fraction in `[0, 1]` (0 for an empty window).
    pub fn utilization(&self) -> f64 {
        let cap = self.busy_s + self.idle_s;
        if cap <= 0.0 {
            0.0
        } else {
            self.busy_s / cap
        }
    }
}

/// Phase-resolved profile of one tuner iteration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IterationProfile {
    /// 0-based iteration index.
    pub iteration: usize,
    /// The action (node count) executed.
    pub action: usize,
    /// Simulated makespan of the iteration (seconds).
    pub makespan_s: f64,
    /// Disjoint per-phase wall-clock slices `(phase name, seconds)`, in
    /// completion order; they sum to `makespan_s`.
    pub phases: Vec<(String, f64)>,
    /// Busy vs. idle time per homogeneous node group.
    pub groups: Vec<GroupProfile>,
}

/// Everything a metrics run produced: registry totals plus the per-iteration
/// phase/utilization profiles. Serializes to a single JSON object (schema
/// pinned by a golden test) or an aligned text table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// Monotonic seconds since the source [`Registry`](crate::Registry)
    /// was created, read at snapshot time. Successive snapshots of one
    /// registry carry strictly increasing values, so consumers can order
    /// and rate-compute scrapes without a wall clock (0 for reports built
    /// by hand).
    pub monotonic_s: f64,
    /// Counter totals, name-sorted.
    pub counters: Vec<(String, f64)>,
    /// Gauge values, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Per-iteration profiles, in iteration order (empty when the run had
    /// no per-iteration executor, e.g. a bare registry snapshot).
    pub iterations: Vec<IterationProfile>,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escape a string for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters). The workspace's hand-rolled JSON
/// codecs (metrics reports, telemetry events, Chrome traces) share this
/// single implementation so no emitter can produce invalid JSON from a
/// user-supplied name.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Map a dotted adaphet metric name onto a Prometheus series name:
/// `adaphet_` namespace, non-`[a-zA-Z0-9_]` characters replaced by `_`,
/// and a trailing `_s` (the workspace convention for seconds) spelled out
/// as `_seconds`.
pub fn prometheus_name(name: &str) -> String {
    let spelled = match name.strip_suffix("_s") {
        Some(base) => format!("{base}_seconds"),
        None => name.to_string(),
    };
    let mut out = String::with_capacity(spelled.len() + 8);
    out.push_str("adaphet_");
    for c in spelled.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
    }
    out
}

fn json_map(entries: &[(String, f64)]) -> String {
    let body: Vec<String> =
        entries.iter().map(|(k, v)| format!("\"{}\":{}", json_escape(k), json_f64(*v))).collect();
    format!("{{{}}}", body.join(","))
}

impl MetricsReport {
    /// Serialize as one JSON object with pinned key order: `version`,
    /// `monotonic_s`, `counters`, `gauges`, `histograms`, `iterations`.
    pub fn to_json(&self) -> String {
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                format!(
                    "\"{}\":{{\"bounds\":[{}],\"counts\":[{}],\"count\":{},\"sum\":{}}}",
                    json_escape(k),
                    h.bounds.iter().map(|b| json_f64(*b)).collect::<Vec<_>>().join(","),
                    h.counts.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(","),
                    h.count,
                    json_f64(h.sum),
                )
            })
            .collect();
        let iters: Vec<String> = self
            .iterations
            .iter()
            .map(|it| {
                let phases: Vec<String> = it
                    .phases
                    .iter()
                    .map(|(n, s)| {
                        format!("{{\"name\":\"{}\",\"seconds\":{}}}", json_escape(n), json_f64(*s))
                    })
                    .collect();
                let groups: Vec<String> = it
                    .groups
                    .iter()
                    .map(|g| {
                        format!(
                            "{{\"name\":\"{}\",\"busy_s\":{},\"idle_s\":{},\"utilization\":{}}}",
                            json_escape(&g.name),
                            json_f64(g.busy_s),
                            json_f64(g.idle_s),
                            json_f64(g.utilization()),
                        )
                    })
                    .collect();
                format!(
                    "{{\"iteration\":{},\"action\":{},\"makespan_s\":{},\"phases\":[{}],\"groups\":[{}]}}",
                    it.iteration,
                    it.action,
                    json_f64(it.makespan_s),
                    phases.join(","),
                    groups.join(","),
                )
            })
            .collect();
        format!(
            "{{\"version\":{},\"monotonic_s\":{},\"counters\":{},\"gauges\":{},\"histograms\":{{{}}},\"iterations\":[{}]}}",
            METRICS_SCHEMA_VERSION,
            json_f64(self.monotonic_s),
            json_map(&self.counters),
            json_map(&self.gauges),
            hists.join(","),
            iters.join(","),
        )
    }

    /// Render in the Prometheus text exposition format (version 0.0.4).
    ///
    /// Dotted metric names become underscore-joined names under the
    /// `adaphet_` namespace; counters gain the conventional `_total`
    /// suffix and histogram names ending in `_s` are spelled out as
    /// `_seconds`. Histograms expose cumulative `_bucket{le="…"}` series
    /// plus `_sum`/`_count`; the snapshot timestamp travels as the
    /// `adaphet_snapshot_monotonic_seconds` gauge. Floats are formatted
    /// with Rust's shortest round-trip form, so the output is
    /// deterministic for given inputs (pinned by the golden test in
    /// `tests/prometheus_golden.rs`). The `iterations` section has no
    /// exposition equivalent and is skipped.
    pub fn to_prometheus(&self) -> String {
        fn fmt(v: f64) -> String {
            if v.is_nan() {
                "NaN".into()
            } else if v == f64::INFINITY {
                "+Inf".into()
            } else if v == f64::NEG_INFINITY {
                "-Inf".into()
            } else {
                format!("{v}")
            }
        }
        let mut out = String::with_capacity(4096);
        let mut series = |name: &str, kind: &str, orig: &str, body: &dyn Fn(&mut String)| {
            out.push_str(&format!("# HELP {name} adaphet {kind} '{orig}'\n"));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            body(&mut out);
        };
        series(
            "adaphet_snapshot_monotonic_seconds",
            "gauge",
            "monotonic_s",
            &|out: &mut String| {
                out.push_str(&format!(
                    "adaphet_snapshot_monotonic_seconds {}\n",
                    fmt(self.monotonic_s)
                ));
            },
        );
        for (k, v) in &self.counters {
            let name = format!("{}_total", prometheus_name(k));
            series(&name, "counter", k, &|out: &mut String| {
                out.push_str(&format!("{name} {}\n", fmt(*v)));
            });
        }
        for (k, v) in &self.gauges {
            let name = prometheus_name(k);
            series(&name, "gauge", k, &|out: &mut String| {
                out.push_str(&format!("{name} {}\n", fmt(*v)));
            });
        }
        for (k, h) in &self.histograms {
            let name = prometheus_name(k);
            series(&name, "histogram", k, &|out: &mut String| {
                let mut cum = 0u64;
                for (i, bound) in h.bounds.iter().enumerate() {
                    cum += h.counts.get(i).copied().unwrap_or(0);
                    out.push_str(&format!("{name}_bucket{{le=\"{}\"}} {cum}\n", fmt(*bound)));
                }
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                out.push_str(&format!("{name}_sum {}\n", fmt(h.sum)));
                out.push_str(&format!("{name}_count {}\n", h.count));
            });
        }
        out
    }

    /// Render as a human-readable aligned text table: counters, gauges,
    /// histogram summaries, then one row per iteration with its phase
    /// breakdown and per-group utilization.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let name_w = self
            .counters
            .iter()
            .map(|(k, _)| k.len())
            .chain(self.gauges.iter().map(|(k, _)| k.len()))
            .chain(self.histograms.iter().map(|(k, _)| k.len()))
            .max()
            .unwrap_or(4)
            .max(4);
        if !self.counters.is_empty() {
            out.push_str("== counters ==\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<name_w$}  {v:>16.6}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("== gauges ==\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<name_w$}  {v:>16.6}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("== histograms ==\n");
            out.push_str(&format!(
                "  {:<name_w$}  {:>10}  {:>14}  {:>14}\n",
                "name", "count", "sum_s", "mean_s"
            ));
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "  {k:<name_w$}  {:>10}  {:>14.6}  {:>14.6}\n",
                    h.count,
                    h.sum,
                    h.mean()
                ));
            }
        }
        if !self.iterations.is_empty() {
            // Column per phase name (first-seen order), then one per group.
            let mut phase_names: Vec<&str> = Vec::new();
            let mut group_names: Vec<&str> = Vec::new();
            for it in &self.iterations {
                for (n, _) in &it.phases {
                    if !phase_names.contains(&n.as_str()) {
                        phase_names.push(n);
                    }
                }
                for g in &it.groups {
                    if !group_names.contains(&g.name.as_str()) {
                        group_names.push(&g.name);
                    }
                }
            }
            out.push_str("== iterations (phase wall s | group utilization) ==\n");
            out.push_str(&format!("  {:>4}  {:>6}  {:>12}", "iter", "action", "makespan_s"));
            for p in &phase_names {
                out.push_str(&format!("  {:>13}", p));
            }
            for g in &group_names {
                out.push_str(&format!("  {:>13}", format!("util[{g}]")));
            }
            out.push('\n');
            for it in &self.iterations {
                out.push_str(&format!(
                    "  {:>4}  {:>6}  {:>12.4}",
                    it.iteration, it.action, it.makespan_s
                ));
                for p in &phase_names {
                    match it.phases.iter().find(|(n, _)| n == p) {
                        Some((_, s)) => out.push_str(&format!("  {s:>13.4}")),
                        None => out.push_str(&format!("  {:>13}", "-")),
                    }
                }
                for gname in &group_names {
                    match it.groups.iter().find(|g| g.name == *gname) {
                        Some(g) => out.push_str(&format!("  {:>13.3}", g.utilization())),
                        None => out.push_str(&format!("  {:>13}", "-")),
                    }
                }
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsReport {
        MetricsReport {
            monotonic_s: 1.5,
            counters: vec![("sim.tasks_executed".into(), 42.0)],
            gauges: vec![("app.nt".into(), 10.0)],
            histograms: vec![(
                "gp.model.fit_s".into(),
                HistogramSnapshot {
                    bounds: vec![0.001, 1.0],
                    counts: vec![2, 1, 0],
                    count: 3,
                    sum: 0.5,
                },
            )],
            iterations: vec![IterationProfile {
                iteration: 0,
                action: 4,
                makespan_s: 2.5,
                phases: vec![("generation".into(), 1.0), ("factorization".into(), 1.5)],
                groups: vec![GroupProfile {
                    name: "chifflot:1-2".into(),
                    busy_s: 3.0,
                    idle_s: 1.0,
                }],
            }],
        }
    }

    #[test]
    fn utilization_is_busy_over_capacity() {
        let g = GroupProfile { name: "g".into(), busy_s: 3.0, idle_s: 1.0 };
        assert!((g.utilization() - 0.75).abs() < 1e-12);
        let empty = GroupProfile { name: "g".into(), busy_s: 0.0, idle_s: 0.0 };
        assert_eq!(empty.utilization(), 0.0);
    }

    #[test]
    fn json_has_pinned_top_level_order() {
        let j = sample().to_json();
        let keys = [
            "\"version\":",
            "\"monotonic_s\":",
            "\"counters\":",
            "\"gauges\":",
            "\"histograms\":",
            "\"iterations\":",
        ];
        let mut from = 0;
        for k in keys {
            let at = j[from..].find(k).unwrap_or_else(|| panic!("missing {k} in {j}"));
            from += at + k.len();
        }
    }

    #[test]
    fn non_finite_values_serialize_as_null() {
        let mut r = sample();
        r.counters[0].1 = f64::NAN;
        assert!(r.to_json().contains("\"sim.tasks_executed\":null"));
    }

    #[test]
    fn table_lists_every_section() {
        let t = sample().to_table();
        assert!(t.contains("== counters =="), "{t}");
        assert!(t.contains("sim.tasks_executed"), "{t}");
        assert!(t.contains("== histograms =="), "{t}");
        assert!(t.contains("== iterations"), "{t}");
        assert!(t.contains("util[chifflot:1-2]"), "{t}");
        // Rows align: every line in the iterations block has the same column count.
        assert!(t.lines().any(|l| l.contains("0.750")), "utilization column:\n{t}");
    }

    #[test]
    fn empty_report_serializes_cleanly() {
        let r = MetricsReport::default();
        assert_eq!(
            r.to_json(),
            format!(
                "{{\"version\":{METRICS_SCHEMA_VERSION},\"monotonic_s\":0,\"counters\":{{}},\"gauges\":{{}},\"histograms\":{{}},\"iterations\":[]}}"
            )
        );
        assert_eq!(r.to_table(), "");
    }

    #[test]
    fn prometheus_names_are_sanitized_and_suffixed() {
        assert_eq!(prometheus_name("sim.tasks_executed"), "adaphet_sim_tasks_executed");
        assert_eq!(prometheus_name("gp.model.fit_s"), "adaphet_gp_model_fit_seconds");
        assert_eq!(prometheus_name("shard-0/depth"), "adaphet_shard_0_depth");
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let p = sample().to_prometheus();
        assert!(p.contains("# TYPE adaphet_sim_tasks_executed_total counter"), "{p}");
        assert!(p.contains("adaphet_sim_tasks_executed_total 42\n"), "{p}");
        assert!(p.contains("# TYPE adaphet_gp_model_fit_seconds histogram"), "{p}");
        assert!(p.contains("adaphet_gp_model_fit_seconds_bucket{le=\"0.001\"} 2\n"), "{p}");
        assert!(p.contains("adaphet_gp_model_fit_seconds_bucket{le=\"1\"} 3\n"), "{p}");
        assert!(p.contains("adaphet_gp_model_fit_seconds_bucket{le=\"+Inf\"} 3\n"), "{p}");
        assert!(p.contains("adaphet_gp_model_fit_seconds_count 3\n"), "{p}");
        assert!(p.contains("adaphet_snapshot_monotonic_seconds 1.5\n"), "{p}");
    }
}
