//! A lightweight span layer: enter/exit guards with parent ids feeding a
//! bounded in-memory ring of recent [`SpanRecord`]s.
//!
//! Spans follow the same philosophy as [`Recorder`](crate::Recorder):
//! instrumented code holds a [`Spans`] handle and calls
//! [`enter`](Spans::enter) unconditionally; when the handle is
//! [`disabled`](Spans::disabled) the guard is a zero-field no-op that
//! never reads the clock, so always-on instrumentation costs nothing
//! measurable (covered by the release-mode overhead test).
//!
//! Unlike counters, spans are *events*: each records a name, an optional
//! parent span id, and a start/duration pair on the collector's own
//! monotonic clock. The collector keeps only the most recent `capacity`
//! records — observability of a live process, not a full trace (the
//! Chrome-trace telemetry sink remains the tool for that).
//!
//! ```
//! use adaphet_metrics::Spans;
//! let spans = Spans::with_capacity(16);
//! {
//!     let request = spans.enter("request", None);
//!     let _decode = spans.enter("decode", request.id());
//!     // ... both guards record on drop ...
//! }
//! assert_eq!(spans.recent().len(), 2);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One completed span, as exported by [`Spans::recent`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Collector-unique span id (issue order).
    pub id: u64,
    /// The enclosing span, if any.
    pub parent: Option<u64>,
    /// Static span name, e.g. `"request"`, `"shard.queue_wait"`.
    pub name: &'static str,
    /// Seconds from the collector's creation to span entry (monotonic).
    pub start_s: f64,
    /// Span duration in seconds.
    pub dur_s: f64,
}

struct Ring {
    zero: Instant,
    next_id: AtomicU64,
    capacity: usize,
    buf: Mutex<VecDeque<SpanRecord>>,
}

/// A cheaply clonable span collector handle; clones share the ring.
///
/// The [`disabled`](Spans::disabled) handle (also the `Default`) makes
/// every operation a no-op without reading the clock.
#[derive(Clone, Default)]
pub struct Spans {
    ring: Option<Arc<Ring>>,
}

impl Spans {
    /// A collector keeping the most recent `capacity` spans (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Spans {
            ring: Some(Arc::new(Ring {
                zero: Instant::now(),
                next_id: AtomicU64::new(0),
                capacity: capacity.max(1),
                buf: Mutex::new(VecDeque::new()),
            })),
        }
    }

    /// The no-op handle: guards carry no state and never read the clock.
    pub fn disabled() -> Self {
        Spans::default()
    }

    /// Whether spans are being collected.
    pub fn enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// Open a span; it records itself into the ring when dropped (or via
    /// [`Span::exit`]). `parent` is usually the enclosing guard's
    /// [`Span::id`].
    pub fn enter(&self, name: &'static str, parent: Option<u64>) -> Span {
        match &self.ring {
            None => Span { ring: None, id: 0, parent: None, name, start: None },
            Some(ring) => {
                let id = ring.next_id.fetch_add(1, Ordering::Relaxed);
                Span { ring: Some(Arc::clone(ring)), id, parent, name, start: Some(Instant::now()) }
            }
        }
    }

    /// The most recent spans, oldest first (at most `capacity`).
    pub fn recent(&self) -> Vec<SpanRecord> {
        match &self.ring {
            None => Vec::new(),
            Some(ring) => {
                let buf = ring.buf.lock().unwrap_or_else(|e| e.into_inner());
                buf.iter().cloned().collect()
            }
        }
    }

    /// Total spans entered since creation (including evicted ones).
    pub fn entered(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.next_id.load(Ordering::Relaxed))
    }

    /// Monotonic seconds since the collector was created (0 if disabled).
    pub fn uptime_s(&self) -> f64 {
        self.ring.as_ref().map_or(0.0, |r| r.zero.elapsed().as_secs_f64())
    }
}

impl std::fmt::Debug for Spans {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.ring {
            None => f.write_str("Spans(disabled)"),
            Some(r) => f
                .debug_struct("Spans")
                .field("capacity", &r.capacity)
                .field("entered", &self.entered())
                .finish(),
        }
    }
}

/// An open span. Records on drop; hold it across the spanned work. The
/// guard is `Send`, so a span may be opened on one thread and closed on
/// another (e.g. a queue-wait span travelling with a job).
#[must_use = "a Span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    ring: Option<Arc<Ring>>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// This span's id, for parenting children (`None` when disabled).
    pub fn id(&self) -> Option<u64> {
        self.ring.as_ref().map(|_| self.id)
    }

    /// Close the span now instead of at scope end.
    pub fn exit(self) {
        drop(self);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let (Some(ring), Some(start)) = (&self.ring, self.start) else { return };
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_s: start.duration_since(ring.zero).as_secs_f64(),
            dur_s: start.elapsed().as_secs_f64(),
        };
        let mut buf = ring.buf.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() == ring.capacity {
            buf.pop_front();
        }
        buf.push_back(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_parent_links_and_timing() {
        let spans = Spans::with_capacity(8);
        let root = spans.enter("request", None);
        let root_id = root.id().unwrap();
        {
            let child = spans.enter("decode", root.id());
            assert_eq!(child.parent, Some(root_id));
        }
        root.exit();
        let recent = spans.recent();
        assert_eq!(recent.len(), 2);
        // Children drop first, so the child record precedes the root's.
        assert_eq!(recent[0].name, "decode");
        assert_eq!(recent[0].parent, Some(root_id));
        assert_eq!(recent[1].name, "request");
        assert!(recent[1].dur_s >= recent[0].dur_s);
        assert!(recent.iter().all(|r| r.start_s >= 0.0 && r.dur_s >= 0.0));
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let spans = Spans::with_capacity(3);
        for _ in 0..10 {
            spans.enter("tick", None).exit();
        }
        let recent = spans.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(spans.entered(), 10);
        // Ids are issued in order; the survivors are the last three.
        assert_eq!(recent.iter().map(|r| r.id).collect::<Vec<_>>(), vec![7, 8, 9]);
    }

    #[test]
    fn disabled_spans_do_nothing_and_skip_the_clock() {
        let spans = Spans::disabled();
        assert!(!spans.enabled());
        let guard = spans.enter("request", None);
        assert!(guard.id().is_none());
        assert!(guard.start.is_none(), "disabled guard must not read the clock");
        drop(guard);
        assert!(spans.recent().is_empty());
        assert_eq!(spans.entered(), 0);
    }

    #[test]
    fn span_can_cross_threads() {
        let spans = Spans::with_capacity(4);
        let guard = spans.enter("queue_wait", None);
        std::thread::spawn(move || drop(guard)).join().unwrap();
        assert_eq!(spans.recent().len(), 1);
        assert_eq!(spans.recent()[0].name, "queue_wait");
    }
}
