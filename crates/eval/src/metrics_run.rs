//! Shared `--metrics` capture session for the figure binaries.
//!
//! Runs one instrumented GP-discontinuous tuning session against the
//! *simulated* application of a scenario, with the global metrics
//! recorder installed, and assembles a [`MetricsReport`] combining the
//! registry snapshot (counters from the simulator, solvers, and cache)
//! with per-iteration phase/utilization profiles taken from the driver's
//! telemetry stream. Binaries write the report's JSON form next to their
//! regular outputs and print its aligned-text table.

use adaphet_core::{
    ActionSpace, GroupUtilization, MemorySink, Observation, PhaseBreakdown, PhaseSlice,
    StrategyKind, TunerDriver,
};
use adaphet_geostat::IterationChoice;
use adaphet_metrics::{install_global, GroupProfile, IterationProfile, MetricsReport, Registry};
use adaphet_scenarios::{Scale, Scenario};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// Run `iters` tuning iterations of the GP-discontinuous strategy on
/// `scenario`'s simulated application and return the collected metrics.
///
/// The session installs the global recorder (first caller wins — in a
/// binary this is the fresh registry, so the snapshot is scoped to the
/// run), forwards it to the simulator, and profiles every iteration with
/// [`adaphet_geostat::GeoSimApp::run_iteration_profiled`], so each
/// [`IterationProfile`] carries disjoint wall-clock phase slices that sum
/// to that iteration's simulated makespan plus per-node-group busy/idle
/// time.
pub fn run_metrics_session(
    scenario: &Scenario,
    scale: Scale,
    iters: usize,
    seed: u64,
) -> MetricsReport {
    let registry = install_global(Registry::new());
    let mut app = scenario.app(scale, seed);
    app.set_recorder(Arc::new(registry.clone()));
    let n = app.n_nodes();
    let space = ActionSpace::new(n, scenario.groups(), Some(scenario.lp_curve(scale)));
    let strat = StrategyKind::GpDiscontinuous
        .build(&space, seed, None)
        .expect("GP-discontinuous needs no oracle");
    let sink = MemorySink::new();
    let mut driver = TunerDriver::builder(&space)
        .strategy(strat)
        .sink(Box::new(sink.clone()))
        .build()
        .expect("a strategy was provided");
    driver.run(iters, |n_fact| {
        let (report, m) = app.run_iteration_profiled(IterationChoice::fact_only(n, n_fact));
        let breakdown = PhaseBreakdown {
            phases: m.phases.iter().map(|&(p, s)| PhaseSlice::new(p, s)).collect(),
            groups: m
                .groups
                .iter()
                .map(|(name, busy_s, idle_s)| GroupUtilization {
                    name: name.clone(),
                    busy_s: *busy_s,
                    idle_s: *idle_s,
                })
                .collect(),
        };
        Observation::with_breakdown(report.duration(), breakdown.phases.clone(), breakdown)
    });
    let _ = driver.into_history();

    let mut report = registry.snapshot();
    report.iterations = sink
        .events()
        .iter()
        .map(|e| {
            let b = e.phase_breakdown.as_ref();
            IterationProfile {
                iteration: e.iteration,
                action: e.action,
                makespan_s: e.duration,
                phases: b
                    .map(|b| b.phases.iter().map(|p| (p.name.clone(), p.seconds)).collect())
                    .unwrap_or_default(),
                groups: b
                    .map(|b| {
                        b.groups
                            .iter()
                            .map(|g| GroupProfile {
                                name: g.name.clone(),
                                busy_s: g.busy_s,
                                idle_s: g.idle_s,
                            })
                            .collect()
                    })
                    .unwrap_or_default(),
            }
        })
        .collect();
    report
}

/// Write `report` as JSON to `path` and print its table form, mirroring
/// what `--telemetry` does for JSONL event streams.
pub fn write_metrics_report(report: &MetricsReport, path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(report.to_json().as_bytes())?;
    f.write_all(b"\n")?;
    println!("{}", report.to_table());
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_profiles_every_iteration_and_slices_sum_to_makespan() {
        let scen = Scenario::by_id('a').unwrap();
        let report = run_metrics_session(&scen, Scale::Test, 8, 7);
        assert_eq!(report.iterations.len(), 8);
        for it in &report.iterations {
            assert!(!it.phases.is_empty(), "iteration {} lost its phases", it.iteration);
            let sum: f64 = it.phases.iter().map(|(_, s)| s).sum();
            assert!(
                (sum - it.makespan_s).abs() <= 0.05 * it.makespan_s,
                "iteration {}: phase slices sum to {sum}, makespan {}",
                it.iteration,
                it.makespan_s
            );
            assert!(!it.groups.is_empty());
            for g in &it.groups {
                let u = g.utilization();
                assert!((0.0..=1.0).contains(&u), "{}: utilization {u}", g.name);
            }
        }
        // The forwarded recorder captured simulator and app counters.
        let counter = |name: &str| {
            report.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0.0)
        };
        assert!(counter("app.iterations") >= 8.0);
        assert!(counter("sim.tasks_executed") > 0.0);
    }
}
