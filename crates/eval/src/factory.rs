//! Strategy construction by name (the x-axis of the paper's Fig. 6).

use adaphet_core::{
    ActionSpace, AllNodes, BrentSearch, DivideConquer, GpDiscontinuous, GpUcb, NelderMead1d,
    Oracle, RandomSearch, RightLeft, SimulatedAnnealing, StochasticApproximation, Strategy, Ucb,
    UcbStruct,
};

/// The seven strategies of the paper's comparison, in figure order.
pub const PAPER_STRATEGIES: [&str; 7] =
    ["DC", "Right-Left", "Brent", "UCB", "UCB-struc", "GP-UCB", "GP-discontin"];

/// Build a strategy by (figure) name. `seed` feeds the stochastic ones;
/// `oracle_best` is required only for `"oracle"`.
///
/// # Panics
/// Panics on an unknown name.
pub fn make_strategy(
    name: &str,
    space: &ActionSpace,
    seed: u64,
    oracle_best: Option<usize>,
) -> Box<dyn Strategy> {
    match name {
        "DC" => Box::new(DivideConquer::new(space)),
        "Right-Left" => Box::new(RightLeft::new(space)),
        "Brent" => Box::new(BrentSearch::new(space)),
        "UCB" => Box::new(Ucb::new(space)),
        "UCB-struc" | "UCB-struct" => Box::new(UcbStruct::new(space)),
        "GP-UCB" => Box::new(GpUcb::new(space)),
        "GP-discontin" | "GP-discontinuous" => Box::new(GpDiscontinuous::new(space)),
        "all-nodes" => Box::new(AllNodes::new(space.max_nodes)),
        "oracle" => Box::new(Oracle::new(oracle_best.expect("oracle needs the best action"))),
        "Random" => Box::new(RandomSearch::new(space, seed)),
        "SANN" => Box::new(SimulatedAnnealing::new(space, seed)),
        "SPSA" => Box::new(StochasticApproximation::new(space)),
        "Nelder-Mead" => Box::new(NelderMead1d::new(space)),
        other => panic!("unknown strategy {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_strategies_construct() {
        let space = ActionSpace::new(10, vec![(1, 5), (6, 10)], Some(vec![1.0; 10]));
        for name in PAPER_STRATEGIES {
            let mut s = make_strategy(name, &space, 1, None);
            let a = s.propose(&adaphet_core::History::new());
            assert!((1..=10).contains(&a), "{name} proposed {a}");
        }
    }

    #[test]
    fn baselines_construct() {
        let space = ActionSpace::unstructured(5);
        for name in ["all-nodes", "Random", "SANN", "SPSA", "Nelder-Mead"] {
            let _ = make_strategy(name, &space, 2, None);
        }
        let mut o = make_strategy("oracle", &space, 0, Some(3));
        assert_eq!(o.propose(&adaphet_core::History::new()), 3);
    }

    #[test]
    #[should_panic(expected = "unknown strategy")]
    fn unknown_name_panics() {
        let space = ActionSpace::unstructured(2);
        let _ = make_strategy("nope", &space, 0, None);
    }
}
