//! Typed command-line handling shared by the figure binaries.
//!
//! Every `fig*`/`ablation`/`resilience` binary parses the same flag
//! vocabulary through [`parse_args`] and reports bad input as
//! [`AdaphetError::Usage`] from a `main() -> Result<(), AdaphetError>` —
//! one-line errors and exit status 1, never a panic or a scattered
//! `process::exit`.

use crate::error::AdaphetError;
use adaphet_scenarios::Scale;
use std::path::PathBuf;

/// Options common to every figure binary.
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Simulation scale (`--test`, default reduced, `--full` = paper).
    pub scale: Scale,
    /// Repetitions for noise augmentation / strategy replays.
    pub reps: usize,
    /// Iterations per strategy replay (the paper uses 127).
    pub iters: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// When set, binaries that run tuning loops write one JSONL
    /// [`IterationEvent`](adaphet_core::IterationEvent) per iteration to
    /// this path.
    pub telemetry: Option<PathBuf>,
    /// When set, binaries that support metrics capture write a
    /// [`MetricsReport`](adaphet_metrics::MetricsReport) JSON snapshot to
    /// this path and print its table form.
    pub metrics: Option<PathBuf>,
    /// Fault plan (JSON, see
    /// [`FaultPlan::from_json`](adaphet_runtime::FaultPlan::from_json))
    /// for binaries that support fault injection.
    pub faults: Option<PathBuf>,
    /// Run scenario sweeps on the calling thread instead of fanning
    /// across cores (see [`sweep`](crate::sweep)). Output must be
    /// byte-identical either way; CI diffs the two fig6 runs.
    pub sequential: bool,
    /// Scenario letters to restrict a multi-scenario binary to (e.g.
    /// `--scenarios aip`); empty means all 16.
    pub scenarios: Vec<char>,
    /// Directory for the persistent surrogate store used by warm-start
    /// binaries (`transfer`); `None` keeps everything in memory.
    pub store_dir: Option<PathBuf>,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            scale: Scale::Reduced,
            reps: 30,
            iters: 127,
            seed: 42,
            telemetry: None,
            metrics: None,
            faults: None,
            sequential: false,
            scenarios: Vec::new(),
            store_dir: None,
        }
    }
}

const USAGE: &str = "try --full/--reduced/--test, --reps N, --iters N, --seed N, \
                     --telemetry PATH, --metrics PATH, --faults PLAN.json, --sequential, \
                     --scenarios LETTERS, --store-dir DIR";

/// Parse `std::env::args`: `--full | --reduced | --test`,
/// `--reps <k>`, `--iters <k>`, `--seed <k>`, `--telemetry <path>`,
/// `--metrics <path>`, `--faults <plan.json>`, `--sequential`.
pub fn parse_args() -> Result<RunArgs, AdaphetError> {
    parse_argv(std::env::args().skip(1).collect())
}

fn parse_argv(argv: Vec<String>) -> Result<RunArgs, AdaphetError> {
    let mut out = RunArgs::default();
    let mut i = 0;
    // A value-taking flag must be followed by a parseable value.
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, AdaphetError> {
        argv.get(i)
            .cloned()
            .ok_or_else(|| AdaphetError::usage(format!("{flag} needs a value ({USAGE})")))
    };
    let number = |argv: &[String], i: usize, flag: &str| -> Result<u64, AdaphetError> {
        let v = value(argv, i, flag)?;
        v.parse().map_err(|_| AdaphetError::usage(format!("{flag} needs a number, got {v:?}")))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--full" => out.scale = Scale::Full,
            "--reduced" => out.scale = Scale::Reduced,
            "--test" => out.scale = Scale::Test,
            "--reps" => {
                i += 1;
                out.reps = number(&argv, i, "--reps")? as usize;
            }
            "--iters" => {
                i += 1;
                out.iters = number(&argv, i, "--iters")? as usize;
            }
            "--seed" => {
                i += 1;
                out.seed = number(&argv, i, "--seed")?;
            }
            "--telemetry" => {
                i += 1;
                out.telemetry = Some(PathBuf::from(value(&argv, i, "--telemetry")?));
            }
            "--metrics" => {
                i += 1;
                out.metrics = Some(PathBuf::from(value(&argv, i, "--metrics")?));
            }
            "--faults" => {
                i += 1;
                out.faults = Some(PathBuf::from(value(&argv, i, "--faults")?));
            }
            "--sequential" => out.sequential = true,
            "--scenarios" => {
                i += 1;
                let letters = value(&argv, i, "--scenarios")?;
                out.scenarios = letters.chars().collect();
                if out.scenarios.is_empty()
                    || out.scenarios.iter().any(|c| !('a'..='p').contains(c))
                {
                    return Err(AdaphetError::usage(format!(
                        "--scenarios needs letters from a..p, got {letters:?}"
                    )));
                }
            }
            "--store-dir" => {
                i += 1;
                out.store_dir = Some(PathBuf::from(value(&argv, i, "--store-dir")?));
            }
            other => {
                return Err(AdaphetError::usage(format!("unknown argument {other:?} ({USAGE})")));
            }
        }
        i += 1;
    }
    Ok(out)
}

/// Load and parse the fault plan named by `--faults`, if any.
pub fn load_fault_plan(args: &RunArgs) -> Result<Option<adaphet_runtime::FaultPlan>, AdaphetError> {
    match &args.faults {
        None => Ok(None),
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| AdaphetError::io(path, e))?;
            Ok(Some(adaphet_runtime::FaultPlan::from_json(&text)?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_match_paper() {
        let d = parse_argv(Vec::new()).unwrap();
        assert_eq!(d.reps, 30);
        assert_eq!(d.iters, 127);
        assert!(d.telemetry.is_none());
        assert!(d.metrics.is_none());
        assert!(d.faults.is_none());
        assert!(!d.sequential, "sweeps fan out by default");
    }

    #[test]
    fn sequential_flag_parses() {
        let d = parse_argv(argv(&["--sequential"])).unwrap();
        assert!(d.sequential);
    }

    #[test]
    fn flags_parse() {
        let d = parse_argv(argv(&[
            "--test",
            "--reps",
            "5",
            "--iters",
            "50",
            "--seed",
            "9",
            "--faults",
            "plan.json",
        ]))
        .unwrap();
        assert_eq!(d.scale, Scale::Test);
        assert_eq!(d.reps, 5);
        assert_eq!(d.iters, 50);
        assert_eq!(d.seed, 9);
        assert_eq!(d.faults.as_deref(), Some(std::path::Path::new("plan.json")));
    }

    #[test]
    fn bad_input_is_a_usage_error_not_a_panic() {
        assert!(matches!(parse_argv(argv(&["--bogus"])), Err(AdaphetError::Usage(_))));
        assert!(matches!(parse_argv(argv(&["--reps"])), Err(AdaphetError::Usage(_))));
        assert!(matches!(parse_argv(argv(&["--reps", "many"])), Err(AdaphetError::Usage(_))));
        assert!(matches!(parse_argv(argv(&["--scenarios", "xyz"])), Err(AdaphetError::Usage(_))));
        assert!(matches!(parse_argv(argv(&["--scenarios", ""])), Err(AdaphetError::Usage(_))));
    }

    #[test]
    fn scenario_subsets_and_store_dir_parse() {
        let d = parse_argv(argv(&["--scenarios", "aip", "--store-dir", "/tmp/s"])).unwrap();
        assert_eq!(d.scenarios, vec!['a', 'i', 'p']);
        assert_eq!(d.store_dir.as_deref(), Some(std::path::Path::new("/tmp/s")));
        assert!(parse_argv(Vec::new()).unwrap().scenarios.is_empty());
    }

    #[test]
    fn missing_fault_plan_file_is_an_io_error() {
        let args =
            RunArgs { faults: Some(PathBuf::from("/nonexistent/plan.json")), ..Default::default() };
        assert!(matches!(load_fault_plan(&args), Err(AdaphetError::Io { .. })));
        assert!(load_fault_plan(&RunArgs::default()).unwrap().is_none());
    }
}
